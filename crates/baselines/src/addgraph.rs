//! AddGraph baseline (Zheng et al., IJCAI 2019).
//!
//! AddGraph combines a per-snapshot temporal GCN with an attention-based GRU
//! over the snapshot sequence. This reimplementation keeps that two-stage
//! shape — snapshot GCN encoder → GRU over snapshot embeddings, with a
//! short-window attention mix of previous hidden states — and replaces the
//! original's margin-based semi-supervised objective with the shared BCE
//! graph-classification head (Sec. V-D adapts every baseline this way).

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{snapshots, Ctdn, SnapshotSpec};
use tpgnn_nn::{GruCell, Linear};
use tpgnn_tensor::linalg::gcn_norm;
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN};

/// Attention window over previous snapshot states (the paper's short-term
/// window `w`).
const WINDOW: usize = 3;

/// AddGraph-style discrete DGNN graph classifier.
pub struct AddGraph {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    gcn: Linear,
    gru: GruCell,
    /// Attention scores over the previous-window hidden states.
    att: Linear,
    head: Linear,
    snapshot_size: usize,
}

impl AddGraph {
    /// Build the model; `snapshot_size` follows Sec. V-D (5 or 20 edges).
    pub fn new(feature_dim: usize, snapshot_size: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let gcn = Linear::new(&mut store, "addg.gcn", feature_dim, HIDDEN, &mut rng);
        let gru = GruCell::new(&mut store, "addg.gru", HIDDEN, HIDDEN, &mut rng);
        let att = Linear::new(&mut store, "addg.att", HIDDEN, 1, &mut rng);
        let head = Linear::new(&mut store, "addg.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), gcn, gru, att, head, snapshot_size, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let snaps = snapshots(g, SnapshotSpec::EdgesPerSnapshot(self.snapshot_size));
        let x = feature_matrix(tape, g);
        let n = g.num_nodes();

        let mut state = self.gru.zero_state(tape);
        let mut history: Vec<Var> = Vec::new();
        for snap in &snaps {
            // Per-snapshot GCN encoding pooled to a snapshot embedding.
            let adj = Tensor::from_vec(n, n, snap.view.adjacency_dense_undirected());
            let a_hat = tape.input(gcn_norm(&adj));
            let ax = tape.matmul(a_hat, x);
            let enc_pre = self.gcn.forward(tape, &self.store, ax);
            let enc = tape.relu(enc_pre);
            let snap_embed = tape.mean_rows(enc); // (1, HIDDEN)

            // Attention over the recent window of hidden states gives the
            // short-term state mixed into the GRU input.
            let input = if history.is_empty() {
                snap_embed
            } else {
                let start = history.len().saturating_sub(WINDOW);
                let window = &history[start..];
                let stacked = tape.stack_rows(window); // (w, HIDDEN)
                let scores_pre = self.att.forward(tape, &self.store, stacked); // (w, 1)
                let scores = tape.softmax(scores_pre);
                let s_row = tape.transpose(scores);
                let short = tape.matmul(s_row, stacked); // (1, HIDDEN)
                tape.average(snap_embed, short)
            };
            state = self.gru.forward(tape, &self.store, state, input);
            history.push(state);
        }
        self.head.forward(tape, &self.store, state)
    }
}

crate::impl_graph_classifier!(AddGraph, "AddGraph");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn snapshot_granularity_limits_temporal_sensitivity() {
        // Two graphs whose edges differ in order only *within* one snapshot
        // window are indistinguishable — the discrete DGNN failure mode the
        // paper describes (Sec. V-E).
        let mut model = AddGraph::new(3, 5, 1);
        let feats = NodeFeatures::zeros(4, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        g1.try_add_edge(2, 3, 3.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(1, 2, 2.0).unwrap();
        g2.try_add_edge(0, 1, 3.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() < 1e-6, "within-snapshot order must be invisible");
    }

    #[test]
    fn cross_snapshot_order_is_visible() {
        let mut model = AddGraph::new(3, 2, 2);
        let mut feats = NodeFeatures::zeros(5, 3);
        feats.row_mut(0).copy_from_slice(&[0.9, 0.1, 0.4]);
        feats.row_mut(3).copy_from_slice(&[0.2, 0.8, 0.3]);
        let mut g1 = Ctdn::new(feats.clone());
        for (i, (s, d)) in [(0, 1), (1, 2), (2, 3), (3, 4)].iter().enumerate() {
            g1.try_add_edge(*s, *d, (i + 1) as f64).unwrap();
        }
        let mut g2 = Ctdn::new(feats);
        for (i, (s, d)) in [(2, 3), (3, 4), (0, 1), (1, 2)].iter().enumerate() {
            g2.try_add_edge(*s, *d, (i + 1) as f64).unwrap();
        }
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-7, "cross-snapshot order should matter");
    }

    #[test]
    fn learns_toy_task() {
        let mut model = AddGraph::new(3, 2, 3);
        testkit::assert_model_learns(&mut model, 20);
    }
}
