//! Shared plumbing for the twelve baselines.
//!
//! Every neural baseline follows the same outer protocol as TP-GNN: a
//! `ParamStore` + Adam pair, a private `forward_logit`, and the
//! [`GraphClassifier`](tpgnn_core::GraphClassifier) implementation generated
//! by [`impl_graph_classifier!`]. Per Sec. V-D, node/edge-level models are
//! adapted to graph classification with *Mean* graph pooling.

use tpgnn_graph::Ctdn;
use tpgnn_tensor::{Tape, Tensor, Var};

/// Hidden width shared by all baselines (Sec. V-D: "the hidden layer size of
/// all static models is set to 32, corresponding to our model").
pub const HIDDEN: usize = 32;

/// Time-encoding dimension for continuous baselines (Sec. V-D: 6).
pub const TIME_DIM: usize = 6;

/// Neighbors sampled by recent-neighbor models (TGAT/TGN/GraphMixer).
pub const NUM_NEIGHBORS: usize = 5;

/// Load a graph's raw feature matrix onto the tape as an `(n, q)` constant.
pub fn feature_matrix(tape: &mut Tape, g: &Ctdn) -> Var {
    let n = g.num_nodes();
    let q = g.feature_dim();
    tape.input(Tensor::from_vec(n, q, g.features().data().to_vec()))
}

/// Load a dense matrix stored as a row-major buffer onto the tape.
pub fn dense_input(tape: &mut Tape, n: usize, data: Vec<f32>) -> Var {
    tape.input(Tensor::from_vec(n, n, data))
}

/// Implements [`tpgnn_core::GraphClassifier`] for a model with fields
/// `store: ParamStore`, `opt: Adam`, and `tape: Tape` plus a method
/// `fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var`.
///
/// The `tape` field is reused across every forward pass (leased out with
/// `mem::take` around `forward_logit`, which needs `&mut self`), so steady
/// state training and inference allocate no fresh tape buffers.
#[macro_export]
macro_rules! impl_graph_classifier {
    ($ty:ty, $name:expr) => {
        impl tpgnn_core::GraphClassifier for $ty {
            fn name(&self) -> String {
                $name.to_string()
            }

            fn fit_epoch(&mut self, train: &mut [(tpgnn_graph::Ctdn, f32)]) -> f32 {
                use tpgnn_tensor::Optimizer as _;
                if train.is_empty() {
                    return 0.0;
                }
                let mut total = 0.0;
                let mut tape = std::mem::take(&mut self.tape);
                for (g, target) in train.iter_mut() {
                    tape.reset();
                    let logit = self.forward_logit(&mut tape, g);
                    let loss = tape.bce_with_logits(logit, *target);
                    total += tape.value(loss).item();
                    // When the tape's non-finite guard is active
                    // (`GuardConfig::scan_tapes`), report the poisoned op and
                    // skip the optimizer step so the blow-up cannot corrupt
                    // the parameters.
                    if let Some(e) = tape.non_finite() {
                        tpgnn_core::guard::record_fault(format!("{}: {e}", $name));
                        continue;
                    }
                    let grads = tape.backward(loss);
                    if let Some(e) = grads.non_finite() {
                        tpgnn_core::guard::record_fault(format!("{}: backward: {e}", $name));
                        tape.absorb(grads);
                        continue;
                    }
                    tape.flush_grads(&grads, &mut self.store);
                    tape.absorb(grads);
                    self.store.clip_grad_norm(tpgnn_core::GRAD_CLIP);
                    self.opt.step(&mut self.store);
                }
                self.tape = tape;
                total / train.len() as f32
            }

            fn predict_proba(&mut self, g: &mut tpgnn_graph::Ctdn) -> f32 {
                let mut tape = std::mem::take(&mut self.tape);
                tape.reset();
                let logit = self.forward_logit(&mut tape, g);
                let z = tape.value(logit).item();
                self.tape = tape;
                1.0 / (1.0 + (-z).exp())
            }

            fn set_learning_rate(&mut self, lr: f32) {
                self.opt.lr = lr;
            }

            fn learning_rate(&self) -> Option<f32> {
                Some(self.opt.lr)
            }

            fn save_state(&self) -> Option<String> {
                Some(tpgnn_tensor::optim::save_training_state(&self.opt, &self.store))
            }

            fn load_state(&mut self, state: &str) -> Result<(), String> {
                tpgnn_tensor::optim::load_training_state(&mut self.opt, &mut self.store, state)
                    .map_err(|e| e.to_string())
            }

            fn check_finite(&self) -> Result<(), String> {
                self.store.check_finite().map_err(|e| format!("{}: {e}", $name))
            }

            fn param_norm(&self) -> Option<f32> {
                Some(self.store.param_norm())
            }
        }
    };
}

/// Smoke-test helper shared by the baseline test modules: a tiny two-class
/// problem where positives are forward chains and negatives are the same
/// chains with shuffled edge order plus one rewired edge.
#[cfg(test)]
pub mod testkit {
    use tpgnn_rng::rngs::StdRng;
    use tpgnn_rng::SeedableRng;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::{Ctdn, NodeFeatures};

    /// A forward chain (positive) or an order-scrambled variant (negative).
    pub fn sample_graph(negative: bool, seed: u64) -> Ctdn {
        use tpgnn_rng::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6;
        let mut feats = NodeFeatures::zeros(n, 3);
        for v in 0..n {
            feats.row_mut(v).copy_from_slice(&[
                v as f32 / n as f32,
                0.5 + 0.1 * rng.random_range(-1.0f32..1.0),
                0.3,
            ]);
        }
        let mut g = Ctdn::new(feats);
        if negative {
            // Reversed information flow + a cross edge.
            for i in (1..n).rev() {
                g.try_add_edge(i, i - 1, (n - i) as f64).unwrap();
            }
            g.try_add_edge(0, n - 1, n as f64).unwrap();
        } else {
            for i in 0..n - 1 {
                g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
            }
            g.try_add_edge(0, n - 1, n as f64).unwrap();
        }
        g
    }

    /// Train briefly and assert the model at least learns the toy task
    /// direction (final loss < initial loss and predictions in range).
    pub fn assert_model_learns(model: &mut dyn GraphClassifier, epochs: usize) {
        let mut train: Vec<(Ctdn, f32)> = (0..12)
            .map(|i| {
                let neg = i % 2 == 1;
                (sample_graph(neg, i as u64), if neg { 0.0 } else { 1.0 })
            })
            .collect();
        let first = model.fit_epoch(&mut train);
        assert!(first.is_finite(), "{}: initial loss not finite", model.name());
        let mut last = first;
        for _ in 1..epochs {
            last = model.fit_epoch(&mut train);
        }
        assert!(
            last.is_finite() && last <= first * 1.05 + 0.05,
            "{}: loss diverged {first} -> {last}",
            model.name()
        );
        let p = model.predict_proba(&mut sample_graph(false, 99));
        assert!((0.0..=1.0).contains(&p), "{}: probability out of range", model.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn feature_matrix_roundtrip() {
        let mut feats = NodeFeatures::zeros(2, 3);
        feats.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        let g = Ctdn::new(feats);
        let mut tape = Tape::new();
        let x = feature_matrix(&mut tape, &g);
        assert_eq!(x.shape(), (2, 3));
        assert_eq!(tape.value(x).row(1), &[1.0, 2.0, 3.0]);
    }
}
