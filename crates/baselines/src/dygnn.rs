//! DyGNN baseline (Ma et al., SIGIR 2020) — "Streaming graph neural
//! networks".
//!
//! DyGNN processes interactions as a stream: an *update component* refreshes
//! the two interacting nodes' states with LSTM-style units, and a
//! *propagation component* pushes decayed information to the recently
//! interacting neighbors of both endpoints. This reimplementation keeps
//! both components (source/target LSTM update units, exponential time-decay
//! propagation to recent neighbors); its two LSTM passes plus propagation
//! per edge also make it the slowest continuous baseline, matching Fig. 6.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::Ctdn;
use tpgnn_nn::{Linear, LstmCell, LstmState, Time2Vec};
use tpgnn_tensor::{Adam, ParamStore, Tape, Var};

use crate::common::{feature_matrix, HIDDEN, TIME_DIM};

/// Number of recent neighbors each endpoint propagates to per interaction.
const PROPAGATE_TO: usize = 2;

/// The DyGNN encoder (shared with the Table III `+G` variant).
pub struct DyGnnCore {
    proj: Linear,
    t2v: Time2Vec,
    src_update: LstmCell,
    dst_update: LstmCell,
    propagate: Linear,
}

impl DyGnnCore {
    /// Register the encoder's parameters under `prefix`.
    pub fn build(store: &mut ParamStore, prefix: &str, feature_dim: usize, rng: &mut StdRng) -> Self {
        let in_dim = HIDDEN + TIME_DIM;
        Self {
            proj: Linear::new(store, &format!("{prefix}.proj"), feature_dim, HIDDEN, rng),
            t2v: Time2Vec::new(store, &format!("{prefix}.t2v"), TIME_DIM, rng),
            src_update: LstmCell::new(store, &format!("{prefix}.src"), in_dim, HIDDEN, rng),
            dst_update: LstmCell::new(store, &format!("{prefix}.dst"), in_dim, HIDDEN, rng),
            propagate: Linear::new(store, &format!("{prefix}.prop"), HIDDEN, HIDDEN, rng),
        }
    }

    /// Embedding width of the output node representations.
    pub fn out_dim(&self) -> usize {
        HIDDEN
    }

    /// Stream every interaction through the update + propagation components
    /// and return the final node states.
    pub fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let n = g.num_nodes();
        let x = feature_matrix(tape, g);
        let h0_mat = self.proj.forward(tape, store, x);
        let h0 = tape.tanh(h0_mat);
        let mut states: Vec<LstmState> = (0..n)
            .map(|v| {
                let h = tape.row(h0, v);
                let c = tape.input(tpgnn_tensor::Tensor::zeros(1, HIDDEN));
                LstmState { h, c }
            })
            .collect();
        let mut last_time = vec![0.0_f64; n];
        // Recent interaction partners per node, most recent last.
        let mut recent: Vec<Vec<usize>> = vec![Vec::new(); n];

        let edges = g.edges_chronological().to_vec();
        for e in &edges {
            let dt_u = e.time - last_time[e.src];
            let dt_v = e.time - last_time[e.dst];
            // Update component: each endpoint consumes the other's state
            // plus the time encoding of its own inactivity gap.
            let ft_u = self.t2v.encode(tape, store, dt_u);
            let msg_u = tape.concat_cols(states[e.dst].h, ft_u);
            states[e.src] = self.src_update.forward(tape, store, states[e.src], msg_u);

            let ft_v = self.t2v.encode(tape, store, dt_v);
            let msg_v = tape.concat_cols(states[e.src].h, ft_v);
            states[e.dst] = self.dst_update.forward(tape, store, states[e.dst], msg_v);

            // Propagation component: decayed influence to recent neighbors.
            for &endpoint in &[e.src, e.dst] {
                let take = recent[endpoint].len().min(PROPAGATE_TO);
                let targets: Vec<usize> =
                    recent[endpoint][recent[endpoint].len() - take..].to_vec();
                for w in targets {
                    if w == e.src || w == e.dst {
                        continue;
                    }
                    let decay = (-(e.time - last_time[w]).max(0.0) as f32).exp();
                    let prop_pre = self.propagate.forward(tape, store, states[endpoint].h);
                    let prop = tape.tanh(prop_pre);
                    let scaled = tape.scale(prop, decay);
                    let h_new = tape.add(states[w].h, scaled);
                    states[w] = LstmState { h: h_new, c: states[w].c };
                }
            }

            last_time[e.src] = e.time;
            last_time[e.dst] = e.time;
            recent[e.src].push(e.dst);
            recent[e.dst].push(e.src);
        }
        states.into_iter().map(|s| s.h).collect()
    }
}

/// Standalone DyGNN graph classifier (Mean pooling head per Sec. V-D).
pub struct DyGnn {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    core: DyGnnCore,
    head: Linear,
}

impl DyGnn {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = DyGnnCore::build(&mut store, "dygnn", feature_dim, &mut rng);
        let head = Linear::new(&mut store, "dygnn.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), core, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let embeds = self.core.node_embeddings(tape, &self.store, g);
        let pooled = tpgnn_nn::mean_pool(tape, &embeds);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(DyGnn, "DyGNN");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn streaming_update_is_order_sensitive() {
        let mut model = DyGnn::new(3, 1);
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(0).copy_from_slice(&[0.7, 0.2, 0.1]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        g1.try_add_edge(2, 3, 3.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(1, 2, 2.0).unwrap();
        g2.try_add_edge(0, 1, 3.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8, "DyGNN streams interactions in order");
    }

    #[test]
    fn propagation_reaches_recent_neighbors() {
        // Node 0 interacts with 1; later 1 interacts with 2. Propagation
        // should push information about the second interaction back to 0.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let core = DyGnnCore::build(&mut store, "d", 3, &mut rng);
        let feats = NodeFeatures::zeros(3, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(0, 1, 1.0).unwrap();
        // No second interaction in g2.
        let mut tape = Tape::new();
        let h1 = core.node_embeddings(&mut tape, &store, &mut g1);
        let h2 = core.node_embeddings(&mut tape, &store, &mut g2);
        let d0 = tape.value(h1[0]).sub(tape.value(h2[0])).max_abs();
        assert!(d0 > 1e-7, "propagation must update node 0's state");
    }

    #[test]
    fn learns_toy_task() {
        let mut model = DyGnn::new(3, 3);
        testkit::assert_model_learns(&mut model, 20);
    }
}
