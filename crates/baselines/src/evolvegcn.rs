//! EvolveGCN baseline (Pareja et al., AAAI 2020), variant H.
//!
//! EvolveGCN-H treats the GCN weight matrix as the hidden state of a
//! recurrent cell: at every snapshot the weights are evolved by a GRU whose
//! input is a summary of the current node embeddings, then used for the
//! snapshot's graph convolution. This reimplementation evolves each row of
//! `W ∈ R^{in × HIDDEN}` with a shared GRU cell (input = pooled node
//! embedding), which is the row-parallel form of the original's
//! weight-evolution trick.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{snapshots, Ctdn, SnapshotSpec};
use tpgnn_nn::{GruCell, Linear};
use tpgnn_tensor::linalg::gcn_norm;
use tpgnn_tensor::{init, Adam, ParamId, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN};

/// EvolveGCN-H graph classifier.
pub struct EvolveGcn {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    /// Initial GCN weight `W_0` (the evolved state's starting value).
    w0: ParamId,
    evolve: GruCell,
    head: Linear,
    feature_dim: usize,
    snapshot_size: usize,
}

impl EvolveGcn {
    /// Build the model; `snapshot_size` follows Sec. V-D.
    pub fn new(feature_dim: usize, snapshot_size: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let w0 = store.register("egcn.w0", init::xavier_uniform(feature_dim, HIDDEN, &mut rng));
        let evolve = GruCell::new(&mut store, "egcn.evolve", HIDDEN, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "egcn.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), w0, evolve, head, feature_dim, snapshot_size, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let snaps = snapshots(g, SnapshotSpec::EdgesPerSnapshot(self.snapshot_size));
        let x = feature_matrix(tape, g);
        let n = g.num_nodes();

        // The evolving weight matrix, maintained as per-row Vars.
        let w_full = tape.param(&self.store, self.w0);
        let mut w_rows: Vec<Var> = (0..self.feature_dim).map(|r| tape.row(w_full, r)).collect();

        let mut last_pooled: Option<Var> = None;
        for snap in &snaps {
            // Current weights as a matrix.
            let w = tape.stack_rows(&w_rows); // (in, HIDDEN)
            let adj = Tensor::from_vec(n, n, snap.view.adjacency_dense_undirected());
            let a_hat = tape.input(gcn_norm(&adj));
            let ax = tape.matmul(a_hat, x);
            let h_pre = tape.matmul(ax, w);
            let h = tape.relu(h_pre);
            let pooled = tape.mean_rows(h); // (1, HIDDEN) — embedding summary
            last_pooled = Some(pooled);

            // Evolve every weight row with the shared GRU, input = summary.
            for row in w_rows.iter_mut() {
                *row = self.evolve.forward(tape, &self.store, *row, pooled);
            }
        }
        let pooled = last_pooled.unwrap_or_else(|| tape.input(Tensor::zeros(1, HIDDEN)));
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(EvolveGcn, "EvolveGCN");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn runs_over_multiple_snapshots() {
        let mut model = EvolveGcn::new(3, 2, 1);
        let mut g = Ctdn::new(NodeFeatures::zeros(5, 3));
        for i in 0..4 {
            g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
        }
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn weight_evolution_sees_snapshot_order() {
        let mut model = EvolveGcn::new(3, 1, 2);
        // All nodes need distinct features: ReLU's positive homogeneity makes
        // the degree-normalized pooled GCN embedding invariant to an edge
        // whose endpoints' features are parallel (2·relu(x/2) = relu(x)), so
        // sparser fixtures cannot distinguish the snapshot orders.
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(0).copy_from_slice(&[0.9, 0.2, 0.4]);
        feats.row_mut(1).copy_from_slice(&[0.3, -0.7, 0.6]);
        feats.row_mut(2).copy_from_slice(&[0.1, 0.8, 0.3]);
        feats.row_mut(3).copy_from_slice(&[-0.5, 0.4, 0.9]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 3, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(0, 1, 2.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8, "snapshot order should evolve different weights");
    }

    #[test]
    fn learns_toy_task() {
        let mut model = EvolveGcn::new(3, 2, 3);
        testkit::assert_model_learns(&mut model, 20);
    }
}
