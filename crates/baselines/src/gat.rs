//! GAT baseline (Veličković et al., 2018).
//!
//! One attention layer over the undirected static view: per node `v`,
//! attention scores `e_{vu} = LeakyReLU(a · [W h_v ⊕ W h_u])` over
//! `N(v) ∪ {v}` are softmax-normalized and weight the aggregation. The
//! attended node states pass through *Mean* pooling and a logistic head.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, StaticView};
use tpgnn_nn::Linear;
use tpgnn_tensor::{init, Adam, ParamId, ParamStore, Tape, Var};

use crate::common::{feature_matrix, HIDDEN};

/// Single-layer GAT graph classifier.
pub struct Gat {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    w: Linear,
    /// Attention vector `a ∈ R^{2·HIDDEN × 1}`.
    a: ParamId,
    head: Linear,
}

impl Gat {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Linear::new(&mut store, "gat.w", feature_dim, HIDDEN, &mut rng);
        let a = store.register("gat.a", init::xavier_uniform(2 * HIDDEN, 1, &mut rng));
        let head = Linear::new(&mut store, "gat.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), w, a, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let und = StaticView::from_ctdn(g).undirected_neighbors();
        let x = feature_matrix(tape, g);
        let wh = self.w.forward(tape, &self.store, x); // (n, HIDDEN)
        let a = tape.param(&self.store, self.a);

        let n = g.num_nodes();
        let mut out_rows = Vec::with_capacity(n);
        for (v, nbrs) in und.iter().enumerate().take(n) {
            let hv = tape.row(wh, v);
            // Attend over the closed neighborhood {v} ∪ N(v).
            let mut cand: Vec<usize> = Vec::with_capacity(nbrs.len() + 1);
            cand.push(v);
            cand.extend_from_slice(nbrs);
            let mut scores = Vec::with_capacity(cand.len());
            let mut values = Vec::with_capacity(cand.len());
            for &u in &cand {
                let hu = tape.row(wh, u);
                let cat = tape.concat_cols(hv, hu);
                let score_raw = tape.matmul(cat, a); // (1, 1)
                scores.push(tape.leaky_relu(score_raw, 0.2));
                values.push(hu);
            }
            let score_col = tape.stack_rows(&scores); // (k, 1)
            let att = tape.softmax(score_col);
            let att_row = tape.transpose(att); // (1, k)
            let vals = tape.stack_rows(&values); // (k, HIDDEN)
            let agg = tape.matmul(att_row, vals); // (1, HIDDEN)
            out_rows.push(tape.relu(agg));
        }
        let stacked = tape.stack_rows(&out_rows);
        let pooled = tape.mean_rows(stacked);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(Gat, "GAT");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn handles_isolated_nodes_via_self_attention() {
        let mut model = Gat::new(3, 1);
        let mut g = Ctdn::new(NodeFeatures::zeros(3, 3));
        g.try_add_edge(0, 1, 1.0).unwrap(); // node 2 isolated
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn timestamp_blind() {
        let mut model = Gat::new(3, 2);
        let mut feats = NodeFeatures::zeros(3, 3);
        feats.row_mut(2).copy_from_slice(&[0.9, 0.1, 0.4]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(1, 2, 3.0).unwrap();
        g2.try_add_edge(0, 1, 8.0).unwrap();
        assert!((model.predict_proba(&mut g1) - model.predict_proba(&mut g2)).abs() < 1e-6);
    }

    #[test]
    fn attention_gradient_reaches_a() {
        let mut model = Gat::new(3, 3);
        let mut train = vec![
            (testkit::sample_graph(false, 0), 1.0),
            (testkit::sample_graph(true, 1), 0.0),
        ];
        model.fit_epoch(&mut train);
        // After one epoch the attention vector must have moved (grads were
        // consumed by Adam, so check indirectly: predictions differ by class).
        let p_pos = model.predict_proba(&mut testkit::sample_graph(false, 2));
        assert!(p_pos.is_finite());
    }

    #[test]
    fn learns_toy_task() {
        let mut model = Gat::new(3, 4);
        testkit::assert_model_learns(&mut model, 20);
    }
}
