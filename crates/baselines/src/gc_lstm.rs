//! GC-LSTM baseline (Chen et al., Applied Intelligence 2022).
//!
//! GC-LSTM embeds a graph convolution inside the LSTM that tracks snapshot
//! structure: each snapshot's adjacency is convolved with the node features
//! and fed into an LSTM as the step input. The final hidden state passes
//! through the shared BCE head (Sec. V-D).

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{snapshots, Ctdn, SnapshotSpec};
use tpgnn_nn::{Linear, LstmCell};
use tpgnn_tensor::linalg::gcn_norm;
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN};

/// GC-LSTM graph classifier.
pub struct GcLstm {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    conv: Linear,
    lstm: LstmCell,
    head: Linear,
    snapshot_size: usize,
}

impl GcLstm {
    /// Build the model; `snapshot_size` follows Sec. V-D.
    pub fn new(feature_dim: usize, snapshot_size: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Linear::new(&mut store, "gclstm.conv", feature_dim, HIDDEN, &mut rng);
        let lstm = LstmCell::new(&mut store, "gclstm.lstm", HIDDEN, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "gclstm.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), conv, lstm, head, snapshot_size, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let snaps = snapshots(g, SnapshotSpec::EdgesPerSnapshot(self.snapshot_size));
        let x = feature_matrix(tape, g);
        let n = g.num_nodes();

        let mut state = self.lstm.zero_state(tape);
        for snap in &snaps {
            let adj = Tensor::from_vec(n, n, snap.view.adjacency_dense_undirected());
            let a_hat = tape.input(gcn_norm(&adj));
            let ax = tape.matmul(a_hat, x);
            let conv_pre = self.conv.forward(tape, &self.store, ax);
            let conv = tape.relu(conv_pre);
            let snap_embed = tape.mean_rows(conv);
            state = self.lstm.forward(tape, &self.store, state, snap_embed);
        }
        self.head.forward(tape, &self.store, state.h)
    }
}

crate::impl_graph_classifier!(GcLstm, "GC-LSTM");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn forward_probability_in_range() {
        let mut model = GcLstm::new(3, 2, 1);
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        g.try_add_edge(2, 3, 3.0).unwrap();
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn snapshot_order_matters() {
        let mut model = GcLstm::new(3, 1, 2);
        // All-distinct feature rows (see evolvegcn.rs: ReLU homogeneity makes
        // sparser fixtures degenerate under degree normalization).
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(0).copy_from_slice(&[0.6, -0.2, 0.8]);
        feats.row_mut(1).copy_from_slice(&[0.8, 0.1, 0.5]);
        feats.row_mut(2).copy_from_slice(&[-0.4, 0.7, 0.2]);
        feats.row_mut(3).copy_from_slice(&[0.2, 0.9, 0.1]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 3, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(0, 1, 2.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8);
    }

    #[test]
    fn within_snapshot_order_invisible() {
        let mut model = GcLstm::new(3, 5, 3);
        let feats = NodeFeatures::zeros(4, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(1, 2, 1.0).unwrap();
        g2.try_add_edge(0, 1, 2.0).unwrap();
        assert!((model.predict_proba(&mut g1) - model.predict_proba(&mut g2)).abs() < 1e-6);
    }

    #[test]
    fn learns_toy_task() {
        let mut model = GcLstm::new(3, 2, 4);
        testkit::assert_model_learns(&mut model, 20);
    }
}
