//! GCN baseline (Kipf & Welling, 2017).
//!
//! Two graph-convolution layers over the timestamp-discarded static view:
//! `H' = ReLU(Â H W)` with `Â = D̃^{-1/2}(A + I)D̃^{-1/2}`, followed by
//! *Mean* graph pooling and a logistic head (Sec. V-D adaptation).

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, StaticView};
use tpgnn_nn::Linear;
use tpgnn_tensor::linalg::gcn_norm;
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN};

/// Two-layer GCN graph classifier.
pub struct Gcn {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    l1: Linear,
    l2: Linear,
    head: Linear,
}

impl Gcn {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let l1 = Linear::new(&mut store, "gcn.l1", feature_dim, HIDDEN, &mut rng);
        let l2 = Linear::new(&mut store, "gcn.l2", HIDDEN, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "gcn.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), l1, l2, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let n = g.num_nodes();
        let view = StaticView::from_ctdn(g);
        let adj = Tensor::from_vec(n, n, view.adjacency_dense_undirected());
        let a_hat = tape.input(gcn_norm(&adj));
        let x = feature_matrix(tape, g);

        let ax = tape.matmul(a_hat, x);
        let h1_pre = self.l1.forward(tape, &self.store, ax);
        let h1 = tape.relu(h1_pre);

        let ah1 = tape.matmul(a_hat, h1);
        let h2_pre = self.l2.forward(tape, &self.store, ah1);
        let h2 = tape.relu(h2_pre);

        let pooled = tape.mean_rows(h2);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(Gcn, "GCN");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn forward_shape_and_range() {
        let mut model = Gcn::new(3, 1);
        let mut g = Ctdn::new(NodeFeatures::zeros(5, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn order_invariance() {
        // GCN discards timestamps: permuting edge times must not change the
        // prediction.
        let mut model = Gcn::new(3, 2);
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(1).copy_from_slice(&[0.3, 0.6, 0.9]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 3, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(0, 1, 9.0).unwrap();
        assert!((model.predict_proba(&mut g1) - model.predict_proba(&mut g2)).abs() < 1e-6);
    }

    #[test]
    fn uses_node_features() {
        let mut model = Gcn::new(3, 3);
        let mut f1 = NodeFeatures::zeros(3, 3);
        f1.row_mut(0).copy_from_slice(&[1.0, 0.0, 0.0]);
        let mut f2 = NodeFeatures::zeros(3, 3);
        f2.row_mut(0).copy_from_slice(&[0.0, 1.0, 0.0]);
        let mut g1 = Ctdn::new(f1);
        g1.try_add_edge(0, 1, 1.0).unwrap();
        let mut g2 = Ctdn::new(f2);
        g2.try_add_edge(0, 1, 1.0).unwrap();
        assert!((model.predict_proba(&mut g1) - model.predict_proba(&mut g2)).abs() > 1e-7);
    }

    #[test]
    fn learns_toy_task() {
        let mut model = Gcn::new(3, 4);
        testkit::assert_model_learns(&mut model, 20);
    }
}
