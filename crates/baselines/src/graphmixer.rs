//! GraphMixer baseline (Cong et al., ICLR 2023).
//!
//! GraphMixer deliberately avoids attention and RNNs: a *link encoder*
//! applies an MLP-Mixer to each node's most recent 1-hop links (with a
//! **fixed**, non-learnable cosine time encoding), and a *node encoder*
//! mean-pools neighbor features. Per Sec. V-D the mixer depth is 2 and the
//! time dimension 6.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, TemporalNeighborIndex};
use tpgnn_nn::{Linear, Mlp};
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN, NUM_NEIGHBORS, TIME_DIM};

/// One token-mixing + channel-mixing block of an MLP-Mixer.
struct MixerBlock {
    token_mix: Mlp,
    channel_mix: Mlp,
}

impl MixerBlock {
    fn build(store: &mut ParamStore, prefix: &str, tokens: usize, channels: usize, rng: &mut StdRng) -> Self {
        Self {
            token_mix: Mlp::new(
                store,
                &format!("{prefix}.tok"),
                &[tokens, tokens * 2, tokens],
                tpgnn_nn::Activation::Relu,
                rng,
            ),
            channel_mix: Mlp::new(
                store,
                &format!("{prefix}.ch"),
                &[channels, channels * 2, channels],
                tpgnn_nn::Activation::Relu,
                rng,
            ),
        }
    }

    /// `x` is `(tokens, channels)`; both mixes are residual.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let xt = tape.transpose(x); // (channels, tokens)
        let mixed_t = self.token_mix.forward(tape, store, xt);
        let mixed = tape.transpose(mixed_t);
        let x1 = tape.add(x, mixed);
        let mixed_c = self.channel_mix.forward(tape, store, x1);
        tape.add(x1, mixed_c)
    }
}

/// The GraphMixer encoder (shared with the Table III `+G` variant).
pub struct GraphMixerCore {
    link_proj: Linear,
    blocks: Vec<MixerBlock>,
    node_enc: Linear,
    out: Linear,
    feature_dim: usize,
}

impl GraphMixerCore {
    /// Register the encoder's parameters under `prefix`.
    pub fn build(store: &mut ParamStore, prefix: &str, feature_dim: usize, rng: &mut StdRng) -> Self {
        let token_width = feature_dim + TIME_DIM;
        let blocks = (0..2)
            .map(|i| MixerBlock::build(store, &format!("{prefix}.mix{i}"), NUM_NEIGHBORS, HIDDEN, rng))
            .collect();
        Self {
            link_proj: Linear::new(store, &format!("{prefix}.linkproj"), token_width, HIDDEN, rng),
            blocks,
            node_enc: Linear::new(store, &format!("{prefix}.nodeenc"), 2 * feature_dim, HIDDEN, rng),
            out: Linear::new(store, &format!("{prefix}.out"), 2 * HIDDEN, HIDDEN, rng),
            feature_dim,
        }
    }

    /// Embedding width of the output node representations.
    pub fn out_dim(&self) -> usize {
        HIDDEN
    }

    /// GraphMixer's fixed (non-learnable) cosine time encoding:
    /// `cos(t · α^{-k})` for `k = 0..d_t`.
    fn fixed_time_encoding(dt: f64) -> [f32; TIME_DIM] {
        let mut out = [0.0f32; TIME_DIM];
        for (k, o) in out.iter_mut().enumerate() {
            let freq = 2.0_f64.powi(-(k as i32));
            *o = (dt * freq).cos() as f32;
        }
        out
    }

    /// Per-node embeddings from the link encoder ⊕ node encoder.
    pub fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let n = g.num_nodes();
        let q = self.feature_dim;
        let x = feature_matrix(tape, g);
        let idx = TemporalNeighborIndex::new(g);
        let t_end = g.edges().iter().map(|e| e.time).fold(0.0_f64, f64::max) + 1.0;

        (0..n)
            .map(|v| {
                let events = idx.recent_before(v, t_end, NUM_NEIGHBORS);
                // Link encoder: token matrix of the K most recent links,
                // zero-padded to exactly K tokens (the Mixer needs a fixed
                // token count).
                let mut token_data = vec![0.0f32; NUM_NEIGHBORS * (q + TIME_DIM)];
                let t_v = idx.last_interaction_before(v, t_end).unwrap_or(0.0);
                for (slot, ev) in events.iter().enumerate() {
                    let row = &mut token_data[slot * (q + TIME_DIM)..(slot + 1) * (q + TIME_DIM)];
                    row[..q].copy_from_slice(g.features().row(ev.neighbor));
                    row[q..].copy_from_slice(&Self::fixed_time_encoding((t_v - ev.time).max(0.0)));
                }
                let tokens_raw = tape.input(Tensor::from_vec(NUM_NEIGHBORS, q + TIME_DIM, token_data));
                let tokens = self.link_proj.forward(tape, store, tokens_raw); // (K, HIDDEN)
                let mut mixed = tokens;
                for block in &self.blocks {
                    mixed = block.forward(tape, store, mixed);
                }
                let link_embed = tape.mean_rows(mixed); // (1, HIDDEN)

                // Node encoder: own features ⊕ mean neighbor features.
                let own = tape.row(x, v);
                let neigh_mean = if events.is_empty() {
                    tape.input(Tensor::zeros(1, q))
                } else {
                    let rows: Vec<Var> = events.iter().map(|ev| tape.row(x, ev.neighbor)).collect();
                    let stacked = tape.stack_rows(&rows);
                    tape.mean_rows(stacked)
                };
                let node_cat = tape.concat_cols(own, neigh_mean);
                let node_pre = self.node_enc.forward(tape, store, node_cat);
                let node_embed = tape.relu(node_pre);

                let cat = tape.concat_cols(link_embed, node_embed);
                let out_pre = self.out.forward(tape, store, cat);
                tape.relu(out_pre)
            })
            .collect()
    }
}

/// Standalone GraphMixer graph classifier (Mean pooling head per Sec. V-D).
pub struct GraphMixer {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    core: GraphMixerCore,
    head: Linear,
}

impl GraphMixer {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = GraphMixerCore::build(&mut store, "gmix", feature_dim, &mut rng);
        let head = Linear::new(&mut store, "gmix.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), core, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let embeds = self.core.node_embeddings(tape, &self.store, g);
        let pooled = tpgnn_nn::mean_pool(tape, &embeds);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(GraphMixer, "GraphMixer");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn fixed_time_encoding_is_deterministic_and_bounded() {
        let a = GraphMixerCore::fixed_time_encoding(3.5);
        let b = GraphMixerCore::fixed_time_encoding(3.5);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.abs() <= 1.0));
        assert_eq!(GraphMixerCore::fixed_time_encoding(0.0), [1.0; TIME_DIM]);
    }

    #[test]
    fn recent_link_times_affect_prediction() {
        let mut model = GraphMixer::new(3, 1);
        let feats = NodeFeatures::zeros(3, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 1, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(0, 1, 1.0).unwrap();
        g2.try_add_edge(2, 1, 40.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8);
    }

    #[test]
    fn handles_nodes_with_no_links() {
        let mut model = GraphMixer::new(3, 2);
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap(); // nodes 2, 3 isolated
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn learns_toy_task() {
        let mut model = GraphMixer::new(3, 3);
        testkit::assert_model_learns(&mut model, 20);
    }
}
