//! GraphSage baseline (Hamilton et al., 2017) with the MEAN aggregator
//! (Sec. V-D: "we choose the MEAN aggregator function").
//!
//! Two layers of `h_v' = ReLU(W · [h_v ⊕ mean_{u ∈ N(v)} h_u])` over the
//! undirected static view, then *Mean* pooling and a logistic head.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, StaticView};
use tpgnn_nn::Linear;
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN};

/// Two-layer GraphSage-MEAN graph classifier.
pub struct GraphSage {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    l1: Linear,
    l2: Linear,
    head: Linear,
}

impl GraphSage {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        // Each layer consumes [self ⊕ mean-neighbors]: double width in.
        let l1 = Linear::new(&mut store, "sage.l1", 2 * feature_dim, HIDDEN, &mut rng);
        let l2 = Linear::new(&mut store, "sage.l2", 2 * HIDDEN, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "sage.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), l1, l2, head, tape: Tape::new() }
    }

    /// Row-normalized undirected adjacency (mean aggregation operator);
    /// isolated nodes aggregate a zero vector.
    fn mean_operator(g: &Ctdn) -> Tensor {
        let n = g.num_nodes();
        let view = StaticView::from_ctdn(g);
        let und = view.undirected_neighbors();
        Tensor::from_fn(n, n, |i, j| {
            if und[i].contains(&j) {
                1.0 / und[i].len() as f32
            } else {
                0.0
            }
        })
    }

    fn layer(
        tape: &mut Tape,
        store: &ParamStore,
        lin: &Linear,
        m: Var,
        h: Var,
    ) -> Var {
        let neigh = tape.matmul(m, h);
        let cat = tape.concat_cols(h, neigh);
        let pre = lin.forward(tape, store, cat);
        tape.relu(pre)
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let m = tape.input(Self::mean_operator(g));
        let x = feature_matrix(tape, g);
        let h1 = Self::layer(tape, &self.store, &self.l1, m, x);
        let h2 = Self::layer(tape, &self.store, &self.l2, m, h1);
        let pooled = tape.mean_rows(h2);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(GraphSage, "GraphSage");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn mean_operator_rows_sum_to_one_or_zero() {
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(0, 2, 2.0).unwrap();
        let m = GraphSage::mean_operator(&g);
        let row0: f32 = m.row(0).iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        let row3: f32 = m.row(3).iter().sum();
        assert_eq!(row3, 0.0); // isolated node
    }

    #[test]
    fn timestamp_blind() {
        let mut model = GraphSage::new(3, 1);
        let feats = NodeFeatures::zeros(3, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(1, 2, 5.0).unwrap();
        g2.try_add_edge(0, 1, 6.0).unwrap();
        assert!((model.predict_proba(&mut g1) - model.predict_proba(&mut g2)).abs() < 1e-6);
    }

    #[test]
    fn learns_toy_task() {
        let mut model = GraphSage::new(3, 2);
        testkit::assert_model_learns(&mut model, 20);
    }
}
