//! # tpgnn-baselines
//!
//! The twelve baseline models of Table II, re-implemented on the
//! `tpgnn-tensor` autodiff engine and adapted for dynamic-graph
//! classification exactly as Sec. V-D prescribes (*Mean* graph pooling over
//! node/edge representations plus a logistic head; static models discard
//! timestamps; discrete models see edge-count snapshots of size 5 or 20).
//!
//! | Family | Models |
//! |---|---|
//! | Static | [`SpectralClustering`], [`Gcn`], [`GraphSage`], [`Gat`] |
//! | Discrete DGNN | [`AddGraph`], [`Taddy`], [`EvolveGcn`], [`GcLstm`] |
//! | Continuous DGNN | [`Tgat`], [`DyGnn`], [`Tgn`], [`GraphMixer`] |
//!
//! Each module's doc comment states the simplifications made relative to
//! the original paper. The [`with_extractor`] module provides the Table III
//! `+G` variants (continuous encoders + TP-GNN's global temporal embedding
//! extractor), and [`zoo`] builds any model by table name.

#![warn(missing_docs)]

pub mod addgraph;
pub mod common;
pub mod dygnn;
pub mod evolvegcn;
pub mod gat;
pub mod gc_lstm;
pub mod gcn;
pub mod graphmixer;
pub mod graphsage;
pub mod spectral;
pub mod taddy;
pub mod tgat;
pub mod tgn;
pub mod with_extractor;

pub use addgraph::AddGraph;
pub use dygnn::DyGnn;
pub use evolvegcn::EvolveGcn;
pub use gat::Gat;
pub use gc_lstm::GcLstm;
pub use gcn::Gcn;
pub use graphmixer::GraphMixer;
pub use graphsage::GraphSage;
pub use spectral::SpectralClustering;
pub use taddy::Taddy;
pub use tgat::Tgat;
pub use tgn::Tgn;
pub use with_extractor::{NodeEmbedder, WithExtractor};

/// Build baselines by the names used in the paper's tables.
pub mod zoo {
    use tpgnn_core::{GraphClassifier, TpGnn, TpGnnConfig};

    use super::*;

    /// All Table II model names in row order (baselines then TP-GNN).
    pub const TABLE2_MODELS: [&str; 14] = [
        "Spectral Clustering",
        "GCN",
        "GraphSage",
        "GAT",
        "AddGraph",
        "TADDY",
        "EvolveGCN",
        "GC-LSTM",
        "TGN",
        "DyGNN",
        "TGAT",
        "GraphMixer",
        "TP-GNN-GRU",
        "TP-GNN-SUM",
    ];

    /// The continuous DGNNs compared in Fig. 6 and extended in Table III.
    pub const CONTINUOUS_MODELS: [&str; 4] = ["TGN", "DyGNN", "TGAT", "GraphMixer"];

    /// Table III `+G` variant names.
    pub const TABLE3_MODELS: [&str; 6] =
        ["TGAT+G", "DyGNN+G", "TGN+G", "GraphMixer+G", "TP-GNN-SUM", "TP-GNN-GRU"];

    /// Instantiate a model by its table name.
    ///
    /// `snapshot_size` only affects the discrete DGNNs (Sec. V-D: 5 for the
    /// log datasets, 20 for the trajectory datasets).
    ///
    /// # Panics
    /// Panics on an unknown model name.
    pub fn build(
        name: &str,
        feature_dim: usize,
        snapshot_size: usize,
        seed: u64,
    ) -> Box<dyn GraphClassifier> {
        match name {
            "Spectral Clustering" => Box::new(SpectralClustering::new(seed)),
            "GCN" => Box::new(Gcn::new(feature_dim, seed)),
            "GraphSage" => Box::new(GraphSage::new(feature_dim, seed)),
            "GAT" => Box::new(Gat::new(feature_dim, seed)),
            "AddGraph" => Box::new(AddGraph::new(feature_dim, snapshot_size, seed)),
            "TADDY" => Box::new(Taddy::new(feature_dim, snapshot_size, seed)),
            "EvolveGCN" => Box::new(EvolveGcn::new(feature_dim, snapshot_size, seed)),
            "GC-LSTM" => Box::new(GcLstm::new(feature_dim, snapshot_size, seed)),
            "TGAT" => Box::new(Tgat::new(feature_dim, seed)),
            "DyGNN" => Box::new(DyGnn::new(feature_dim, seed)),
            "TGN" => Box::new(Tgn::new(feature_dim, seed)),
            "GraphMixer" => Box::new(GraphMixer::new(feature_dim, seed)),
            "TGAT+G" => Box::new(with_extractor::factory::tgat_g(feature_dim, seed)),
            "DyGNN+G" => Box::new(with_extractor::factory::dygnn_g(feature_dim, seed)),
            "TGN+G" => Box::new(with_extractor::factory::tgn_g(feature_dim, seed)),
            "GraphMixer+G" => Box::new(with_extractor::factory::graphmixer_g(feature_dim, seed)),
            "TP-GNN-SUM" => Box::new(TpGnn::new(TpGnnConfig::sum(feature_dim).with_seed(seed))),
            "TP-GNN-GRU" => Box::new(TpGnn::new(TpGnnConfig::gru(feature_dim).with_seed(seed))),
            other => panic!("unknown model name `{other}`"),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn zoo_builds_every_table_model() {
            for name in TABLE2_MODELS.iter().chain(TABLE3_MODELS.iter()) {
                let model = build(name, 3, 5, 1);
                assert_eq!(&model.name(), name);
            }
        }

        #[test]
        #[should_panic(expected = "unknown model name")]
        fn unknown_name_panics() {
            let _ = build("NotAModel", 3, 5, 1);
        }
    }
}
