//! Spectral Clustering baseline (Ng, Jordan & Weiss, 2001).
//!
//! As the paper notes (Sec. V-E), this method relies on the graph Laplacian:
//! the graph is treated as undirected, node features are ignored, and the
//! representation comes from the Laplacian spectrum. We embed each graph by
//! its sorted normalized-Laplacian eigenvalues (padded / truncated to a
//! fixed width) and train a logistic head on top — the standard way to turn
//! a spectral node method into a graph classifier.

use std::collections::HashMap;

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, StaticView};
use tpgnn_nn::Linear;
use tpgnn_tensor::linalg::{jacobi_eigh, normalized_laplacian};
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::HIDDEN;

/// Spectral Clustering adapted for graph classification.
pub struct SpectralClustering {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    head: Linear,
    /// Eigen-decompositions are expensive; cache spectra per graph
    /// fingerprint across epochs.
    cache: HashMap<u64, Tensor>,
}

impl SpectralClustering {
    /// Build the model with parameters seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = Linear::new(&mut store, "spec.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-2), head, cache: HashMap::new(), tape: Tape::new() }
    }

    fn fingerprint(g: &Ctdn) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |h: &mut u64, x: u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(&mut h, g.num_nodes() as u64);
        for e in g.edges() {
            mix(&mut h, e.src as u64);
            mix(&mut h, e.dst as u64);
        }
        h
    }

    /// Sorted eigenvalue spectrum of the symmetric normalized Laplacian,
    /// padded / truncated to `HIDDEN` entries. Timestamps and node features
    /// never enter this representation.
    fn spectrum(&mut self, g: &Ctdn) -> Tensor {
        let key = Self::fingerprint(g);
        if let Some(t) = self.cache.get(&key) {
            return t.clone();
        }
        let n = g.num_nodes();
        let view = StaticView::from_ctdn(g);
        let adj = Tensor::from_vec(n, n, view.adjacency_dense_undirected());
        let lap = normalized_laplacian(&adj);
        let (vals, _) = jacobi_eigh(&lap, 30, 1e-5);
        let mut row = vec![0.0f32; HIDDEN];
        for (i, &v) in vals.iter().take(HIDDEN).enumerate() {
            row[i] = v;
        }
        let t = Tensor::row_vector(&row);
        self.cache.insert(key, t.clone());
        t
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let spec = self.spectrum(g);
        let x = tape.input(spec);
        self.head.forward(tape, &self.store, x)
    }
}

crate::impl_graph_classifier!(SpectralClustering, "Spectral Clustering");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn spectrum_is_cached_and_padded() {
        let mut model = SpectralClustering::new(1);
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let s1 = model.spectrum(&g);
        assert_eq!(s1.shape(), (1, HIDDEN));
        assert_eq!(model.cache.len(), 1);
        let s2 = model.spectrum(&g);
        assert_eq!(s1, s2);
        assert_eq!(model.cache.len(), 1);
    }

    #[test]
    fn ignores_timestamps_entirely() {
        let mut model = SpectralClustering::new(2);
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(0).copy_from_slice(&[1.0, 1.0, 1.0]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(1, 2, 1.0).unwrap(); // same static edges, different times/order
        g2.try_add_edge(0, 1, 7.0).unwrap();
        assert_eq!(
            model.predict_proba(&mut g1),
            model.predict_proba(&mut g2),
            "spectral method must be blind to temporal information"
        );
    }

    #[test]
    fn learns_structural_differences() {
        let mut model = SpectralClustering::new(3);
        testkit::assert_model_learns(&mut model, 30);
    }
}
