//! TADDY baseline (Liu et al., TKDE 2023).
//!
//! TADDY encodes nodes in each snapshot with coupled spatial–temporal
//! codings (diffusion/distance-based structural roles plus a snapshot-index
//! temporal code) and runs a transformer over the snapshot sequence. This
//! reimplementation keeps that architecture at snapshot granularity:
//! per-snapshot node encodings = [features ⊕ degree-role code], pooled per
//! snapshot, plus a Time2Vec snapshot-index code, with a multi-head
//! self-attention block pooling the snapshot sequence into the graph
//! representation (BCE head per Sec. V-D).

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{snapshots, Ctdn, SnapshotSpec};
use tpgnn_nn::{Linear, MultiHeadAttention, Time2Vec};
use tpgnn_tensor::{Adam, ParamStore, Tape, Tensor, Var};

use crate::common::{feature_matrix, HIDDEN, TIME_DIM};

/// TADDY-style transformer discrete DGNN graph classifier.
pub struct Taddy {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    node_enc: Linear,
    t2v: Time2Vec,
    att: MultiHeadAttention,
    query: Linear,
    head: Linear,
    snapshot_size: usize,
}

impl Taddy {
    /// Build the model; `snapshot_size` follows Sec. V-D.
    pub fn new(feature_dim: usize, snapshot_size: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        // Node encoding input: raw features + 2 structural role scalars
        // (normalized in/out degree within the snapshot).
        let node_enc = Linear::new(&mut store, "taddy.enc", feature_dim + 2, HIDDEN, &mut rng);
        let t2v = Time2Vec::new(&mut store, "taddy.t2v", TIME_DIM, &mut rng);
        let width = HIDDEN + TIME_DIM;
        let att = MultiHeadAttention::new(&mut store, "taddy.att", width, width, HIDDEN, 2, &mut rng);
        let query = Linear::new(&mut store, "taddy.query", width, width, &mut rng);
        let head = Linear::new(&mut store, "taddy.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), node_enc, t2v, att, query, head, snapshot_size, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let snaps = snapshots(g, SnapshotSpec::EdgesPerSnapshot(self.snapshot_size));
        let x = feature_matrix(tape, g);
        let n = g.num_nodes();

        let mut snap_rows: Vec<Var> = Vec::with_capacity(snaps.len());
        for (idx, snap) in snaps.iter().enumerate() {
            // Structural role code: normalized degrees inside the snapshot.
            let mut roles = Tensor::zeros(n, 2);
            let denom = snap.edges.len().max(1) as f32;
            for v in 0..n {
                roles.set(v, 0, snap.view.out_degree(v) as f32 / denom);
                roles.set(v, 1, snap.view.in_degree(v) as f32 / denom);
            }
            let roles_var = tape.input(roles);
            let cat = tape.concat_cols(x, roles_var);
            let enc_pre = self.node_enc.forward(tape, &self.store, cat);
            let enc = tape.relu(enc_pre);
            let pooled = tape.mean_rows(enc); // (1, HIDDEN)
            // Temporal coding: snapshot index through Time2Vec.
            let ft = self.t2v.encode(tape, &self.store, (idx + 1) as f64);
            snap_rows.push(tape.concat_cols(pooled, ft));
        }
        let seq = tape.stack_rows(&snap_rows); // (s, HIDDEN + TIME_DIM)
        let pooled = tape.mean_rows(seq);
        let q = self.query.forward(tape, &self.store, pooled);
        let g_embed = self.att.forward(tape, &self.store, q, seq, seq); // (1, HIDDEN)
        let act = tape.tanh(g_embed);
        self.head.forward(tape, &self.store, act)
    }
}

crate::impl_graph_classifier!(Taddy, "TADDY");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn forward_runs_on_single_snapshot() {
        let mut model = Taddy::new(3, 10, 1);
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn snapshot_sequence_position_matters() {
        // Same snapshots in a different order must produce a different
        // embedding thanks to the temporal (index) coding.
        let mut model = Taddy::new(3, 1, 2);
        let mut feats = NodeFeatures::zeros(4, 3);
        feats.row_mut(0).copy_from_slice(&[0.9, 0.1, 0.4]);
        feats.row_mut(2).copy_from_slice(&[0.2, 0.8, 0.3]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 3, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(0, 1, 2.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-7);
    }

    #[test]
    fn learns_toy_task() {
        let mut model = Taddy::new(3, 2, 3);
        testkit::assert_model_learns(&mut model, 20);
    }
}
