//! TGAT baseline (Xu et al., ICLR 2020).
//!
//! TGAT computes a node's time-aware embedding by self-attention over its
//! most recent temporal neighbors, with the Bochner-style functional time
//! encoding applied to time deltas; two layers and two attention heads per
//! Sec. V-D. This reimplementation keeps that mechanism with one
//! simplification: layer-2 queries reuse the layer-1 embeddings computed at
//! each neighbor's own last-interaction time (instead of recursively
//! re-evaluating them at every query time), which preserves the receptive
//! field while keeping per-graph cost `O(n · K)`.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, TemporalNeighborIndex};
use tpgnn_nn::{Linear, MultiHeadAttention, Time2Vec};
use tpgnn_tensor::{Adam, ParamStore, Tape, Var};

use crate::common::{feature_matrix, HIDDEN, NUM_NEIGHBORS, TIME_DIM};

/// The TGAT encoder layers (shared between the standalone classifier and
/// the Table III `+G` variant).
pub struct TgatCore {
    proj: Linear,
    t2v: Time2Vec,
    att1: MultiHeadAttention,
    att2: MultiHeadAttention,
}

impl TgatCore {
    /// Register the encoder's parameters under `prefix`.
    pub fn build(store: &mut ParamStore, prefix: &str, feature_dim: usize, rng: &mut StdRng) -> Self {
        let width = HIDDEN + TIME_DIM;
        Self {
            proj: Linear::new(store, &format!("{prefix}.proj"), feature_dim, HIDDEN, rng),
            t2v: Time2Vec::new(store, &format!("{prefix}.t2v"), TIME_DIM, rng),
            att1: MultiHeadAttention::new(store, &format!("{prefix}.att1"), width, width, HIDDEN, 2, rng),
            att2: MultiHeadAttention::new(store, &format!("{prefix}.att2"), width, width, HIDDEN, 2, rng),
        }
    }

    /// Embedding width of the output node representations.
    pub fn out_dim(&self) -> usize {
        HIDDEN
    }

    fn attend_layer(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        att: &MultiHeadAttention,
        idx: &TemporalNeighborIndex,
        states: &[Var],
        g: &Ctdn,
    ) -> Vec<Var> {
        let t_end = g
            .edges()
            .iter()
            .map(|e| e.time)
            .fold(0.0_f64, f64::max)
            + 1.0;
        (0..g.num_nodes())
            .map(|v| {
                let neighbors = idx.recent_before(v, t_end, NUM_NEIGHBORS);
                if neighbors.is_empty() {
                    return states[v];
                }
                let t_v = idx.last_interaction_before(v, t_end).unwrap_or(0.0);
                let f0 = self.t2v.encode(tape, store, 0.0);
                let query = tape.concat_cols(states[v], f0);
                let rows: Vec<Var> = neighbors
                    .iter()
                    .map(|ev| {
                        let dt = (t_v - ev.time).max(0.0);
                        let ft = self.t2v.encode(tape, store, dt);
                        tape.concat_cols(states[ev.neighbor], ft)
                    })
                    .collect();
                let kv = tape.stack_rows(&rows);
                let attended = att.forward(tape, store, query, kv, kv);
                let combined = tape.add(attended, states[v]);
                tape.relu(combined)
            })
            .collect()
    }

    /// Time-aware node embeddings for every node of `g`.
    pub fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let x = feature_matrix(tape, g);
        let h0_mat = self.proj.forward(tape, store, x);
        let h0_act = tape.relu(h0_mat);
        let h0: Vec<Var> = (0..g.num_nodes()).map(|v| tape.row(h0_act, v)).collect();
        let idx = TemporalNeighborIndex::new(g);
        let h1 = self.attend_layer(tape, store, &self.att1, &idx, &h0, g);
        self.attend_layer(tape, store, &self.att2, &idx, &h1, g)
    }
}

/// Standalone TGAT graph classifier (Mean pooling head per Sec. V-D).
pub struct Tgat {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    core: TgatCore,
    head: Linear,
}

impl Tgat {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = TgatCore::build(&mut store, "tgat", feature_dim, &mut rng);
        let head = Linear::new(&mut store, "tgat.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), core, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let embeds = self.core.node_embeddings(tape, &self.store, g);
        let pooled = tpgnn_nn::mean_pool(tape, &embeds);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(Tgat, "TGAT");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    #[test]
    fn embeddings_have_hidden_width() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let core = TgatCore::build(&mut store, "t", 3, &mut rng);
        let mut g = Ctdn::new(NodeFeatures::zeros(4, 3));
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let mut tape = Tape::new();
        let h = core.node_embeddings(&mut tape, &store, &mut g);
        assert_eq!(h.len(), 4);
        for hv in h {
            assert_eq!(hv.shape(), (1, HIDDEN));
        }
    }

    #[test]
    fn time_deltas_affect_embeddings() {
        // Same neighbors, different interaction times -> different code.
        let mut model = Tgat::new(3, 2);
        let feats = NodeFeatures::zeros(3, 3);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(2, 1, 2.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(0, 1, 1.0).unwrap();
        g2.try_add_edge(2, 1, 50.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8, "TGAT must be sensitive to interaction times");
    }

    #[test]
    fn local_receptive_field_misses_remote_past() {
        // With K = NUM_NEIGHBORS recent neighbors, interactions older than
        // the window are invisible — the limited-receptive-field weakness the
        // paper exploits (Sec. I, limitation 2).
        let mut model = Tgat::new(3, 3);
        let feats = NodeFeatures::zeros(10, 3);
        let build = |early_src: usize| {
            let mut g = Ctdn::new(feats.clone());
            // Node 9's early interaction differs between the two graphs...
            g.try_add_edge(early_src, 9, 1.0).unwrap();
            // ...but is pushed out of the recent-K window by later edges.
            for i in 0..NUM_NEIGHBORS {
                g.try_add_edge(i, 9, (i + 2) as f64).unwrap();
            }
            g
        };
        let mut g1 = build(7);
        let mut g2 = build(8);
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        // Nodes 7 and 8 have identical (zero) features, so the only
        // difference is *which* node interacted — invisible once evicted
        // from the window AND the 2-hop attention paths.
        assert!((p1 - p2).abs() < 1e-6);
    }

    #[test]
    fn learns_toy_task() {
        let mut model = Tgat::new(3, 4);
        testkit::assert_model_learns(&mut model, 20);
    }
}
