//! TGN baseline (Rossi et al., 2020).
//!
//! TGN maintains a per-node memory refreshed by a message function and a GRU
//! memory updater on every interaction, and computes embeddings with a
//! temporal-attention layer over recent neighbors. Configuration follows
//! Sec. V-D: two attention heads, memory and embedding dimension 32, time
//! dimension 6.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, TemporalNeighborIndex};
use tpgnn_nn::{GruCell, Linear, MultiHeadAttention, Time2Vec};
use tpgnn_tensor::{Adam, ParamStore, Tape, Var};

use crate::common::{feature_matrix, HIDDEN, NUM_NEIGHBORS, TIME_DIM};

/// The TGN encoder (shared with the Table III `+G` variant).
pub struct TgnCore {
    proj: Linear,
    t2v: Time2Vec,
    memory_updater: GruCell,
    att: MultiHeadAttention,
    skip: Linear,
}

impl TgnCore {
    /// Register the encoder's parameters under `prefix`.
    pub fn build(store: &mut ParamStore, prefix: &str, feature_dim: usize, rng: &mut StdRng) -> Self {
        // Message: [m_u ⊕ m_v ⊕ f(Δt)].
        let msg_dim = 2 * HIDDEN + TIME_DIM;
        let width = HIDDEN + TIME_DIM;
        Self {
            proj: Linear::new(store, &format!("{prefix}.proj"), feature_dim, HIDDEN, rng),
            t2v: Time2Vec::new(store, &format!("{prefix}.t2v"), TIME_DIM, rng),
            memory_updater: GruCell::new(store, &format!("{prefix}.mem"), msg_dim, HIDDEN, rng),
            att: MultiHeadAttention::new(store, &format!("{prefix}.att"), width, width, HIDDEN, 2, rng),
            skip: Linear::new(store, &format!("{prefix}.skip"), HIDDEN, HIDDEN, rng),
        }
    }

    /// Embedding width of the output node representations.
    pub fn out_dim(&self) -> usize {
        HIDDEN
    }

    /// Run the memory module over the interaction stream, then the
    /// attention embedding module, returning per-node embeddings.
    pub fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let n = g.num_nodes();
        // Memory initialized from projected static features (zero memory in
        // the original; features give isolated nodes a usable code).
        let x = feature_matrix(tape, g);
        let m0_mat = self.proj.forward(tape, store, x);
        let m0 = tape.tanh(m0_mat);
        let mut memory: Vec<Var> = (0..n).map(|v| tape.row(m0, v)).collect();
        let mut last_update = vec![0.0_f64; n];

        let edges = g.edges_chronological().to_vec();
        for e in &edges {
            // Messages for both endpoints, then GRU memory update.
            let ft_u = self.t2v.encode(tape, store, e.time - last_update[e.src]);
            let cat_uv = tape.concat_cols(memory[e.src], memory[e.dst]);
            let msg_u = tape.concat_cols(cat_uv, ft_u);
            memory[e.src] = self.memory_updater.forward(tape, store, memory[e.src], msg_u);

            let ft_v = self.t2v.encode(tape, store, e.time - last_update[e.dst]);
            let cat_vu = tape.concat_cols(memory[e.dst], memory[e.src]);
            let msg_v = tape.concat_cols(cat_vu, ft_v);
            memory[e.dst] = self.memory_updater.forward(tape, store, memory[e.dst], msg_v);

            last_update[e.src] = e.time;
            last_update[e.dst] = e.time;
        }

        // Embedding module: temporal attention over recent neighbors.
        let idx = TemporalNeighborIndex::new(g);
        let t_end = edges.iter().map(|e| e.time).fold(0.0_f64, f64::max) + 1.0;
        (0..n)
            .map(|v| {
                let skip_pre = self.skip.forward(tape, store, memory[v]);
                let neighbors = idx.recent_before(v, t_end, NUM_NEIGHBORS);
                if neighbors.is_empty() {
                    return tape.tanh(skip_pre);
                }
                let f0 = self.t2v.encode(tape, store, 0.0);
                let query = tape.concat_cols(memory[v], f0);
                let rows: Vec<Var> = neighbors
                    .iter()
                    .map(|ev| {
                        let dt = (last_update[v] - ev.time).max(0.0);
                        let ft = self.t2v.encode(tape, store, dt);
                        tape.concat_cols(memory[ev.neighbor], ft)
                    })
                    .collect();
                let kv = tape.stack_rows(&rows);
                let attended = self.att.forward(tape, store, query, kv, kv);
                let sum = tape.add(attended, skip_pre);
                tape.tanh(sum)
            })
            .collect()
    }
}

/// Standalone TGN graph classifier (Mean pooling head per Sec. V-D).
pub struct Tgn {
    store: ParamStore,
    opt: Adam,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
    core: TgnCore,
    head: Linear,
}

impl Tgn {
    /// Build the model for `feature_dim`-dimensional node features.
    pub fn new(feature_dim: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = TgnCore::build(&mut store, "tgn", feature_dim, &mut rng);
        let head = Linear::new(&mut store, "tgn.head", HIDDEN, 1, &mut rng);
        Self { store, opt: Adam::new(1e-3), core, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let embeds = self.core.node_embeddings(tape, &self.store, g);
        let pooled = tpgnn_nn::mean_pool(tape, &embeds);
        self.head.forward(tape, &self.store, pooled)
    }
}

crate::impl_graph_classifier!(Tgn, "TGN");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;
    use tpgnn_graph::NodeFeatures;

    fn zero_feats(n: usize) -> NodeFeatures {
        NodeFeatures::zeros(n, 3)
    }

    #[test]
    fn memory_is_order_sensitive() {
        let mut model = Tgn::new(3, 1);
        let mut g1 = Ctdn::new(zero_feats(4));
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(1, 2, 2.0).unwrap();
        g1.try_add_edge(2, 3, 3.0).unwrap();
        let mut g2 = Ctdn::new(zero_feats(4));
        g2.try_add_edge(2, 3, 1.0).unwrap();
        g2.try_add_edge(1, 2, 2.0).unwrap();
        g2.try_add_edge(0, 1, 3.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8, "TGN memory depends on interaction order");
    }

    #[test]
    fn isolated_nodes_fall_back_to_memory_skip() {
        let mut model = Tgn::new(3, 2);
        let mut g = Ctdn::new(zero_feats(3));
        g.try_add_edge(0, 1, 1.0).unwrap(); // node 2 never interacts
        let p = model.predict_proba(&mut g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn time_gaps_enter_messages() {
        let mut model = Tgn::new(3, 3);
        let mut g1 = Ctdn::new(zero_feats(2));
        g1.try_add_edge(0, 1, 1.0).unwrap();
        g1.try_add_edge(0, 1, 2.0).unwrap();
        let mut g2 = Ctdn::new(zero_feats(2));
        g2.try_add_edge(0, 1, 1.0).unwrap();
        g2.try_add_edge(0, 1, 80.0).unwrap();
        let (p1, p2) = (model.predict_proba(&mut g1), model.predict_proba(&mut g2));
        assert!((p1 - p2).abs() > 1e-8, "Δt must flow into the memory updater");
    }

    #[test]
    fn learns_toy_task() {
        let mut model = Tgn::new(3, 4);
        testkit::assert_model_learns(&mut model, 20);
    }
}
