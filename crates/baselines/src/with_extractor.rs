//! Table III variants: continuous baselines with TP-GNN's Global Temporal
//! Embedding Extractor bolted onto their node embeddings.
//!
//! The paper's Table III replaces temporal propagation with each continuous
//! DGNN's own encoder while keeping the extractor, isolating the
//! contribution of each half of TP-GNN.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_core::{GlobalExtractor, TpGnnConfig};
use tpgnn_graph::Ctdn;
use tpgnn_nn::Linear;
use tpgnn_tensor::{Adam, ParamStore, Tape, Var};

use crate::dygnn::DyGnnCore;
use crate::graphmixer::GraphMixerCore;
use crate::tgat::TgatCore;
use crate::tgn::TgnCore;

/// A continuous-DGNN encoder that exposes per-node embeddings.
pub trait NodeEmbedder {
    /// Per-node embeddings of `g`.
    fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var>;
    /// Width of those embeddings.
    fn out_dim(&self) -> usize;
}

macro_rules! impl_node_embedder {
    ($core:ty) => {
        impl NodeEmbedder for $core {
            fn node_embeddings(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
                <$core>::node_embeddings(self, tape, store, g)
            }
            fn out_dim(&self) -> usize {
                <$core>::out_dim(self)
            }
        }
    };
}

impl_node_embedder!(TgatCore);
impl_node_embedder!(DyGnnCore);
impl_node_embedder!(TgnCore);
impl_node_embedder!(GraphMixerCore);

/// `<Baseline>+G`: a continuous encoder whose node embeddings feed TP-GNN's
/// global temporal embedding extractor instead of Mean pooling.
pub struct WithExtractor<E: NodeEmbedder> {
    name: String,
    store: ParamStore,
    opt: Adam,
    core: E,
    extractor: GlobalExtractor,
    head: Linear,
    /// Reusable autodiff tape; reset at the start of every forward pass.
    tape: Tape,
}

impl<E: NodeEmbedder> WithExtractor<E> {
    /// Wrap `core` (already registered into `store`) with a fresh extractor
    /// and classifier head registered into the same store.
    pub fn wrap(name: impl Into<String>, mut store: ParamStore, core: E, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_1234);
        // Extractor hyperparameters follow the full model (Sec. V-D).
        let cfg = TpGnnConfig::sum(1); // feature_dim unused by the extractor
        let extractor = GlobalExtractor::new(&mut store, &cfg, core.out_dim(), &mut rng);
        let head = Linear::new(&mut store, "withg.head", extractor.out_dim(), 1, &mut rng);
        Self { name: name.into(), store, opt: Adam::new(1e-3), core, extractor, head, tape: Tape::new() }
    }

    fn forward_logit(&mut self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let embeds = self.core.node_embeddings(tape, &self.store, g);
        let edges = g.edges_chronological().to_vec();
        let graph_embed = self.extractor.forward(tape, &self.store, &embeds, &edges);
        self.head.forward(tape, &self.store, graph_embed)
    }
}

impl<E: NodeEmbedder> tpgnn_core::GraphClassifier for WithExtractor<E> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fit_epoch(&mut self, train: &mut [(Ctdn, f32)]) -> f32 {
        use tpgnn_tensor::Optimizer as _;
        if train.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut tape = std::mem::take(&mut self.tape);
        for (g, target) in train.iter_mut() {
            tape.reset();
            let logit = self.forward_logit(&mut tape, g);
            let loss = tape.bce_with_logits(logit, *target);
            total += tape.value(loss).item();
            // Same guardrail as `impl_graph_classifier!`: under an active
            // tape guard, attribute the blow-up and skip the step.
            if let Some(e) = tape.non_finite() {
                tpgnn_core::guard::record_fault(format!("{}: {e}", self.name));
                continue;
            }
            let grads = tape.backward(loss);
            if let Some(e) = grads.non_finite() {
                tpgnn_core::guard::record_fault(format!("{}: backward: {e}", self.name));
                tape.absorb(grads);
                continue;
            }
            tape.flush_grads(&grads, &mut self.store);
            tape.absorb(grads);
            self.store.clip_grad_norm(tpgnn_core::GRAD_CLIP);
            self.opt.step(&mut self.store);
        }
        self.tape = tape;
        total / train.len() as f32
    }

    fn predict_proba(&mut self, g: &mut Ctdn) -> f32 {
        let mut tape = std::mem::take(&mut self.tape);
        tape.reset();
        let logit = self.forward_logit(&mut tape, g);
        let z = tape.value(logit).item();
        self.tape = tape;
        1.0 / (1.0 + (-z).exp())
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.opt.lr = lr;
    }

    fn learning_rate(&self) -> Option<f32> {
        Some(self.opt.lr)
    }

    fn save_state(&self) -> Option<String> {
        Some(tpgnn_tensor::optim::save_training_state(&self.opt, &self.store))
    }

    fn load_state(&mut self, state: &str) -> Result<(), String> {
        tpgnn_tensor::optim::load_training_state(&mut self.opt, &mut self.store, state)
            .map_err(|e| e.to_string())
    }

    fn check_finite(&self) -> Result<(), String> {
        self.store.check_finite().map_err(|e| format!("{}: {e}", self.name))
    }

    fn param_norm(&self) -> Option<f32> {
        Some(self.store.param_norm())
    }
}

/// Factory functions for the four Table III rows.
pub mod factory {
    use super::*;

    /// `TGAT+G`.
    pub fn tgat_g(feature_dim: usize, seed: u64) -> WithExtractor<TgatCore> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = TgatCore::build(&mut store, "tgat", feature_dim, &mut rng);
        WithExtractor::wrap("TGAT+G", store, core, seed)
    }

    /// `DyGNN+G`.
    pub fn dygnn_g(feature_dim: usize, seed: u64) -> WithExtractor<DyGnnCore> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = DyGnnCore::build(&mut store, "dygnn", feature_dim, &mut rng);
        WithExtractor::wrap("DyGNN+G", store, core, seed)
    }

    /// `TGN+G`.
    pub fn tgn_g(feature_dim: usize, seed: u64) -> WithExtractor<TgnCore> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = TgnCore::build(&mut store, "tgn", feature_dim, &mut rng);
        WithExtractor::wrap("TGN+G", store, core, seed)
    }

    /// `GraphMixer+G`.
    pub fn graphmixer_g(feature_dim: usize, seed: u64) -> WithExtractor<GraphMixerCore> {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let core = GraphMixerCore::build(&mut store, "gmix", feature_dim, &mut rng);
        WithExtractor::wrap("GraphMixer+G", store, core, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testkit;
    use tpgnn_core::GraphClassifier;

    #[test]
    fn all_plus_g_variants_run_and_learn() {
        let mut models: Vec<Box<dyn GraphClassifier>> = vec![
            Box::new(factory::tgat_g(3, 1)),
            Box::new(factory::dygnn_g(3, 2)),
            Box::new(factory::tgn_g(3, 3)),
            Box::new(factory::graphmixer_g(3, 4)),
        ];
        for model in models.iter_mut() {
            testkit::assert_model_learns(model.as_mut(), 10);
        }
    }

    #[test]
    fn names_match_table3() {
        assert_eq!(factory::tgat_g(3, 1).name(), "TGAT+G");
        assert_eq!(factory::dygnn_g(3, 1).name(), "DyGNN+G");
        assert_eq!(factory::tgn_g(3, 1).name(), "TGN+G");
        assert_eq!(factory::graphmixer_g(3, 1).name(), "GraphMixer+G");
    }

    #[test]
    fn extractor_makes_plus_g_order_sensitive() {
        // GraphMixer's own pooling is weakly order-sensitive; with the
        // extractor the edge sequence order must matter strongly.
        let mut model = factory::graphmixer_g(3, 5);
        let mut g1 = testkit::sample_graph(false, 0);
        let mut g2 = testkit::sample_graph(true, 0);
        let p1 = model.predict_proba(&mut g1);
        let p2 = model.predict_proba(&mut g2);
        assert!((p1 - p2).abs() > 1e-8);
    }
}
