//! Capacity benchmark: serving throughput and latency *under overload*,
//! with the shedding ladder active — the regime `bench_serve.json` never
//! enters. Drives seeded chaos traffic through a budget-bounded
//! `SessionServer` with a spill directory, samples residency at every
//! batch boundary, and records to `results/bench_capacity.json`:
//! `max_resident_sessions` (the budget must hold it down),
//! `evictions_per_sec`, `restores`, `p99_us_under_shedding`, and the
//! deterministic shed counters so a perf diff can first confirm both runs
//! shed identically.

use std::time::Instant;

use tpgnn_bench::timing::Suite;
use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_data::chaos::FaultPlan;
use tpgnn_serve::loadgen::{generate, percentile, LoadPlan};
use tpgnn_serve::SessionServer;

fn main() {
    let mut suite = Suite::from_args("capacity");
    let seed = 42;
    suite.set_seed(seed);
    let sessions = if suite.is_smoke() { 48 } else { 256 };
    let budget = sessions / 6; // well under the concurrent-session peak

    let spill = std::env::temp_dir()
        .join(format!("tpgnn-bench-capacity-{}", std::process::id()));
    std::fs::remove_dir_all(&spill).ok();
    std::fs::create_dir_all(&spill).expect("spill dir");

    let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
    let fault = FaultPlan { delay_rate: 0.05, delay_margin: 3.0, ..FaultPlan::mixed(0.1) };
    let plan = LoadPlan {
        sessions,
        seed,
        fault,
        batch_size: 128,
        session_spacing: 1.0,
        session_gap: 60.0,
        early_warning_every: 8,
        max_resident_sessions: budget,
        spill_dir: Some(spill.clone()),
        ..LoadPlan::default()
    };
    let traffic = generate(&plan);
    let cfg = plan.serve_config();

    let mut latencies_us = Vec::new();
    let mut max_resident = 0usize;
    let mut last_stats = None;
    let mut elapsed_s = 0.0f64;
    suite.bench("capacity/run_bounded_traffic", || {
        let t_run = Instant::now();
        let mut server = SessionServer::new(&model, cfg.clone()).expect("serves incrementally");
        for (sid, f) in &traffic.features {
            server.register(*sid, f.clone());
        }
        latencies_us.clear();
        max_resident = 0;
        for batch in &traffic.batches {
            let t0 = Instant::now();
            server.ingest(batch).expect("bounded ingest never errors without I/O faults");
            latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
            max_resident = max_resident.max(server.resident());
        }
        server.close_all().expect("close_all");
        elapsed_s = t_run.elapsed().as_secs_f64();
        last_stats = Some(*server.stats());
    });
    let stats = last_stats.expect("bench ran at least once");

    assert!(stats.evicted > 0, "capacity bench never evicted — budget is not biting");
    // The ladder never refuses a restore or evicts a session with events in
    // the current batch, so residency may transiently overshoot the budget
    // by the unrefusable set; the budget must still dominate (unbounded,
    // residency would approach the full concurrent-session peak).
    assert!(
        max_resident <= 2 * budget,
        "residency {max_resident} escaped the budget {budget} by more than the \
         unrefusable-overshoot allowance"
    );
    // Under genuine overload the refusal rung sheds whole sessions (each one
    // attributed in the fault ledger) — so not every session scores. What
    // must hold: the spill/restore path was exercised, every opened session
    // ran to a Final, and nothing leaked.
    assert!(stats.restored > 0, "no spilled session was restored: {stats:?}");
    assert_eq!(stats.opened, stats.closed, "sessions leaked: {stats:?}");
    assert_eq!(stats.final_scores, stats.closed, "a closed session lost its Final: {stats:?}");
    assert!(stats.final_scores > 0, "overload served nothing at all: {stats:?}");

    suite.annotate("sessions", sessions as f64);
    suite.annotate("sessions_served", stats.final_scores as f64);
    suite.annotate("budget_resident", budget as f64);
    suite.annotate("max_resident_sessions", max_resident as f64);
    suite.annotate("evictions_per_sec", stats.evicted as f64 / elapsed_s.max(1e-9));
    suite.annotate("p50_us_under_shedding", percentile(&latencies_us, 50.0));
    suite.annotate("p99_us_under_shedding", percentile(&latencies_us, 99.0));
    suite.annotate("events_per_sec", traffic.total_events as f64 / elapsed_s.max(1e-9));
    // Deterministic shed counters: identical at any thread count, so perf
    // diffs compare like with like.
    suite.annotate("evicted", stats.evicted as f64);
    suite.annotate("restored", stats.restored as f64);
    suite.annotate("shed_refused_sessions", stats.shed_refused_sessions as f64);
    suite.annotate("early_suspensions", stats.early_suspensions as f64);

    std::fs::remove_dir_all(&spill).ok();
    suite.finish();
}
