//! Micro-benchmarks validating the Sec. IV-E complexity analysis:
//!
//! * temporal-propagation-SUM forward is `O(m · k)`,
//! * temporal-propagation-GRU forward is `O(m · k²)`,
//! * the global temporal embedding extractor is `O(m · d²)`.
//!
//! Each group sweeps one variable with the others fixed; near-linear bench
//! times across the `m` sweep and near-quadratic across the `k`/`d` sweeps
//! confirm the analysis. Runs on the in-repo harness
//! (`tpgnn_bench::timing`): `cargo bench --bench complexity`, or
//! `cargo bench -- --smoke` for the abbreviated CI pass. Medians/p95 land
//! in `results/bench_complexity.json`.

use tpgnn_bench::timing::{black_box, Suite};
use tpgnn_core::{TpGnn, TpGnnConfig, UpdaterKind};
use tpgnn_graph::{Ctdn, NodeFeatures};

/// A chain CTDN with `m` edges over `m/2` nodes (revisits included).
fn chain_graph(m: usize) -> Ctdn {
    let n = (m / 2).max(2);
    let mut feats = NodeFeatures::zeros(n, 3);
    for v in 0..n {
        feats.row_mut(v).copy_from_slice(&[v as f32 / n as f32, 0.5, 0.25]);
    }
    let mut g = Ctdn::new(feats);
    for i in 0..m {
        g.try_add_edge(i % n, (i + 1) % n, (i + 1) as f64).unwrap();
    }
    g
}

fn model(updater: UpdaterKind, embed: usize, hidden: usize) -> TpGnn {
    let mut cfg = TpGnnConfig::sum(3);
    cfg.updater = updater;
    cfg.embed_dim = embed;
    cfg.hidden_dim = hidden;
    TpGnn::new(cfg)
}

fn bench_edges_sweep(suite: &mut Suite) {
    for m in [32, 64, 128, 256] {
        let mut g = chain_graph(m);
        let sum_model = model(UpdaterKind::Sum, 32, 32);
        suite.bench(&format!("propagation_vs_edges/sum_m/{m}"), || {
            black_box(sum_model.embed_graph(&mut g));
        });
        let gru_model = model(UpdaterKind::Gru, 32, 32);
        suite.bench(&format!("propagation_vs_edges/gru_m/{m}"), || {
            black_box(gru_model.embed_graph(&mut g));
        });
    }
}

fn bench_width_sweep(suite: &mut Suite) {
    let mut g = chain_graph(64);
    for k in [8, 16, 32, 64] {
        let sum_model = model(UpdaterKind::Sum, k, 32);
        suite.bench(&format!("propagation_vs_width/sum_k/{k}"), || {
            black_box(sum_model.embed_graph(&mut g));
        });
        let gru_model = model(UpdaterKind::Gru, k, 32);
        suite.bench(&format!("propagation_vs_width/gru_k/{k}"), || {
            black_box(gru_model.embed_graph(&mut g));
        });
    }
}

fn bench_hidden_sweep(suite: &mut Suite) {
    let mut g = chain_graph(64);
    for d in [8, 16, 32, 64, 128] {
        let m = model(UpdaterKind::Sum, 32, d);
        suite.bench(&format!("extractor_vs_hidden/extractor_d/{d}"), || {
            black_box(m.embed_graph(&mut g));
        });
    }
}

fn main() {
    let mut suite = Suite::from_args("complexity");
    bench_edges_sweep(&mut suite);
    bench_width_sweep(&mut suite);
    bench_hidden_sweep(&mut suite);
    suite.finish();
}
