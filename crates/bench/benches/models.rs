//! Criterion benchmarks for the Fig. 6 runtime axis: per-graph inference
//! time of every continuous DGNN (plus TP-GNN) on one representative graph
//! per dataset family — a small sparse log session (Forum-java-like) and a
//! dense trajectory (Brightkite-like).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tpgnn_data::{forum_java, trajectory};
use tpgnn_graph::Ctdn;

const MODELS: [&str; 6] = ["TGN", "DyGNN", "TGAT", "GraphMixer", "TP-GNN-SUM", "TP-GNN-GRU"];

fn representative_graphs() -> Vec<(&'static str, Ctdn)> {
    let mut rng = StdRng::seed_from_u64(7);
    vec![
        (
            "forum_java",
            forum_java::generate_session(&forum_java::ForumJavaConfig::default(), &mut rng),
        ),
        (
            "brightkite",
            trajectory::generate_trajectory(&trajectory::TrajectoryConfig::brightkite(), &mut rng),
        ),
    ]
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_graph_inference");
    for (dataset, graph) in representative_graphs() {
        for name in MODELS {
            let mut model = tpgnn_baselines::zoo::build(name, 3, 5, 1);
            let mut g = graph.clone();
            group.bench_with_input(
                BenchmarkId::new(name.replace(' ', "_"), dataset),
                &dataset,
                |b, _| b.iter(|| black_box(model.predict_proba(&mut g))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_inference
}
criterion_main!(benches);
