//! Micro-benchmarks for the Fig. 6 runtime axis: per-graph inference
//! time of every continuous DGNN (plus TP-GNN) on one representative graph
//! per dataset family — a small sparse log session (Forum-java-like) and a
//! dense trajectory (Brightkite-like).
//!
//! Runs on the in-repo harness (`tpgnn_bench::timing`):
//! `cargo bench --bench models`, or `cargo bench -- --smoke` for the
//! abbreviated CI pass. Medians/p95 land in `results/bench_models.json`.

use tpgnn_bench::timing::{black_box, Suite};
use tpgnn_core::GraphClassifier;
use tpgnn_data::{forum_java, trajectory};
use tpgnn_graph::Ctdn;
use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;

const MODELS: [&str; 6] = ["TGN", "DyGNN", "TGAT", "GraphMixer", "TP-GNN-SUM", "TP-GNN-GRU"];

fn representative_graphs() -> Vec<(&'static str, Ctdn)> {
    let mut rng = StdRng::seed_from_u64(7);
    vec![
        (
            "forum_java",
            forum_java::generate_session(&forum_java::ForumJavaConfig::default(), &mut rng),
        ),
        (
            "brightkite",
            trajectory::generate_trajectory(&trajectory::TrajectoryConfig::brightkite(), &mut rng),
        ),
    ]
}

fn main() {
    let mut suite = Suite::from_args("models");
    suite.set_seed(7);
    for (dataset, graph) in representative_graphs() {
        for name in MODELS {
            let mut model = tpgnn_baselines::zoo::build(name, 3, 5, 1);
            let mut g = graph.clone();
            suite.bench(
                &format!("per_graph_inference/{}/{dataset}", name.replace(' ', "_")),
                || {
                    black_box(model.predict_proba(&mut g));
                },
            );
        }
    }

    // Guarded training smoke: the <5% overhead budget for the (disabled)
    // observability layer is measured against this entry's median.
    {
        let mut rng = StdRng::seed_from_u64(7);
        let fj_cfg = forum_java::ForumJavaConfig::default();
        let pairs: Vec<(Ctdn, f32)> = (0..8)
            .map(|i| {
                (forum_java::generate_session(&fj_cfg, &mut rng), (i % 2) as f32)
            })
            .collect();
        let train_cfg = tpgnn_core::TrainConfig { epochs: 2, shuffle_ties: true, seed: 7 };
        let guard_cfg = tpgnn_core::GuardConfig::default();
        suite.bench("training_smoke/TP-GNN-SUM/forum_java", || {
            let mut model = tpgnn_core::TpGnn::new(tpgnn_core::TpGnnConfig::sum(3).with_seed(7));
            model.set_learning_rate(3e-3);
            let report = tpgnn_core::train_guarded(&mut model, &pairs, &train_cfg, &guard_cfg);
            black_box(report.final_loss());
        });
    }

    suite.finish();
}
