//! Parallel execution layer benchmark: the same workloads at
//! `TPGNN_THREADS=1` (pure sequential — no worker threads are spawned)
//! vs the configured pool width, so `results/bench_parallel.json` records
//! the measured speedup next to the thread and core counts.
//!
//! On a single-core machine the pool width defaults to 1 and both sides
//! of each pair time the same sequential path (speedup ≈ 1.0) — the JSON's
//! `threads` / `cores` metadata makes that visible instead of hiding it.
//! Determinism is benchmarked elsewhere; here we only check wall-clock.

use tpgnn_bench::timing::{black_box, Suite};
use tpgnn_core::{GraphClassifier, TpGnn, TpGnnConfig};
use tpgnn_data::DatasetKind;
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};
use tpgnn_tensor::{matmul_into, Tensor};

/// Benchmark `f` under 1 thread and under `width` threads, and annotate the
/// suite with `label_speedup` = median(1 thread) / median(width threads).
fn bench_pair(suite: &mut Suite, label: &str, width: usize, mut f: impl FnMut()) {
    let seq_name = format!("{label}/threads=1");
    let par_name = format!("{label}/threads={width}");
    suite.bench(&seq_name, || tpgnn_par::with_thread_override(1, &mut f));
    suite.bench(&par_name, || tpgnn_par::with_thread_override(width, &mut f));
    if let (Some(seq), Some(par)) = (suite.median_ns(&seq_name), suite.median_ns(&par_name)) {
        let speedup = seq as f64 / par.max(1) as f64;
        println!("  {label}: speedup {speedup:.2}x at {width} threads");
        suite.annotate(&format!("{label}_speedup"), speedup);
    }
}

fn main() {
    let mut suite = Suite::from_args("parallel");
    suite.set_seed(3);
    // Width the pool would actually use (override-free); the pair below
    // compares against forced-sequential execution of the same work.
    let width = tpgnn_par::configured_threads().max(2);

    // The headline path: a small eval grid — every (cell × run) one pool
    // task, exactly what table2/table3/ablations execute at scale.
    let cfg = ExperimentConfig {
        num_graphs: if suite.is_smoke() { 8 } else { 24 },
        runs: 2,
        epochs: 1,
        train_frac: 0.5,
        learning_rate: 3e-3,
        base_seed: 3,
    };
    bench_pair(&mut suite, "eval_grid", width, || {
        let specs = [
            CellSpec::zoo("TP-GNN-SUM", DatasetKind::ForumJava),
            CellSpec::zoo("GCN", DatasetKind::ForumJava),
        ];
        black_box(run_cells(&specs, &cfg));
    });

    // Test-set inference: predict_proba fanned out per graph.
    let ds = DatasetKind::ForumJava.generate(if suite.is_smoke() { 16 } else { 64 }, 3);
    let mut model = TpGnn::new(TpGnnConfig::sum(
        ds.graphs.first().map_or(3, |g| g.graph.feature_dim()),
    ));
    let graphs: Vec<_> = ds.graphs.iter().map(|lg| lg.graph.clone()).collect();
    bench_pair(&mut suite, "predict_batch", width, || {
        let mut batch = graphs.clone();
        black_box(model.predict_proba_batch(&mut batch));
    });

    // Row-parallel matmul above the size threshold (256³ = 16.8M flops).
    let n = 256;
    let a = Tensor::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f32 * 0.1 - 0.6);
    let b = Tensor::from_fn(n, n, |i, j| ((i * 7 + j * 29) % 11) as f32 * 0.1 - 0.5);
    let mut out = Tensor::zeros(n, n);
    bench_pair(&mut suite, "matmul_256", width, || {
        matmul_into(black_box(&a), black_box(&b), &mut out, false);
        black_box(&out);
    });

    suite.finish();
}
