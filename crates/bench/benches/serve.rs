//! Online-serving benchmark: drives seeded chaos-model traffic through a
//! resident `SessionServer` and records request-latency percentiles and
//! sustained event throughput to `results/bench_serve.json`.
//!
//! The suite's standard run metadata (git sha, seed, `TPGNN_THREADS`,
//! machine cores) makes entries comparable across PRs; the `extras` block
//! carries the serving-specific numbers: `p50_us` / `p99_us` per-request
//! latency, `events_per_sec`, and the run's deterministic counters (events,
//! scores, sessions) so a perf diff can first confirm the two runs did
//! bitwise-identical work.

use tpgnn_bench::timing::{black_box, Suite};
use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_data::chaos::FaultPlan;
use tpgnn_serve::loadgen::{generate, percentile, run, LoadPlan};

fn main() {
    let mut suite = Suite::from_args("serve");
    let seed = 42;
    suite.set_seed(seed);
    let sessions = if suite.is_smoke() { 24 } else { 192 };

    let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
    // The delay component gives the stream config a finite lateness
    // horizon, so edges release (and early warnings fire) while sessions
    // are open — the realistic serving regime, not close-time batch work.
    let fault = FaultPlan { delay_rate: 0.05, delay_margin: 3.0, ..FaultPlan::mixed(0.1) };
    let plan = LoadPlan {
        sessions,
        seed,
        fault,
        batch_size: 128,
        early_warning_every: 8,
        ..LoadPlan::default()
    };

    suite.bench("serve/loadgen", || {
        black_box(generate(&plan));
    });

    let mut last = None;
    suite.bench("serve/run_mixed_traffic", || {
        last = Some(run(&model, &plan).expect("TP-GNN serves incrementally"));
    });
    let summary = last.expect("bench ran at least once");

    let total_us: f64 = summary.latencies_us.iter().sum();
    suite.annotate("p50_us", percentile(&summary.latencies_us, 50.0));
    suite.annotate("p99_us", percentile(&summary.latencies_us, 99.0));
    suite.annotate("events_per_sec", summary.total_events as f64 / (total_us / 1e6));
    suite.annotate("requests", summary.latencies_us.len() as f64);
    // Deterministic work counters: identical at any thread count (pinned by
    // tests/determinism.rs), so perf diffs compare like with like.
    suite.annotate("sessions", sessions as f64);
    suite.annotate("total_events", summary.total_events as f64);
    suite.annotate("early_scores", summary.stats.early_scores as f64);
    suite.annotate("final_scores", summary.stats.final_scores as f64);

    assert_eq!(
        summary.stats.final_scores, sessions,
        "serve bench lost sessions — timing numbers would be meaningless"
    );
    suite.finish();
}
