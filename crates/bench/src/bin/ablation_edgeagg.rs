//! Extension ablation (Sec. IV-C): the paper picks the *Average* EdgeAgg
//! method out of the six introduced in its reference [23] — this harness
//! benchmarks all six (`Average`, `Hadamard`, `Weighted-L1`, `Weighted-L2`,
//! `Activation`, `Concatenation`) as the node→edge embedding step of the
//! global temporal embedding extractor.
//!
//! Expected shape: Average and Activation lead; the difference-based
//! aggregations (L1/L2) lose the shared component of the endpoint
//! embeddings and trail.

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};
use tpgnn_nn::EdgeAgg;

fn main() {
    let _trace = tpgnn_bench::init_trace("ablation_edgeagg");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("EdgeAgg ablation (extension; Sec. IV-C)", &cfg);

    let datasets = tpgnn_bench::figure_datasets();
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            EdgeAgg::ALL.iter().map(move |&agg| {
                CellSpec::new(format!("{agg:?}"), kind, move |fd, _snap, seed| {
                    let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                    c.edge_agg = agg;
                    Box::new(TpGnn::new(c))
                })
            })
        })
        .collect();
    eprintln!("[edgeagg] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    let per_dataset = EdgeAgg::ALL.len();
    for (di, kind) in datasets.iter().enumerate() {
        let rows: Vec<_> = results[di * per_dataset..(di + 1) * per_dataset]
            .iter()
            .map(|cell| (cell.model.clone(), cell.f1, cell.precision, cell.recall))
            .collect();
        println!("{}", tpgnn_eval::table::render_ablation(kind.name(), &rows));
    }
}
