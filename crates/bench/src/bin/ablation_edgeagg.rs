//! Extension ablation (Sec. IV-C): the paper picks the *Average* EdgeAgg
//! method out of the six introduced in its reference [23] — this harness
//! benchmarks all six (`Average`, `Hadamard`, `Weighted-L1`, `Weighted-L2`,
//! `Activation`, `Concatenation`) as the node→edge embedding step of the
//! global temporal embedding extractor.
//!
//! Expected shape: Average and Activation lead; the difference-based
//! aggregations (L1/L2) lose the shared component of the endpoint
//! embeddings and trail.

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_eval::{run_cell_with, ExperimentConfig};
use tpgnn_nn::EdgeAgg;

fn main() {
    let _trace = tpgnn_bench::init_trace("ablation_edgeagg");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("EdgeAgg ablation (extension; Sec. IV-C)", &cfg);

    for kind in tpgnn_bench::figure_datasets() {
        let mut rows = Vec::new();
        for agg in EdgeAgg::ALL {
            eprintln!("[edgeagg] {} / {:?} …", kind.name(), agg);
            let cell = run_cell_with(&format!("{agg:?}"), kind, &cfg, move |fd, _snap, seed| {
                let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                c.edge_agg = agg;
                Box::new(TpGnn::new(c))
            });
            rows.push((format!("{agg:?}"), cell.f1, cell.precision, cell.recall));
        }
        println!("{}", tpgnn_eval::table::render_ablation(kind.name(), &rows));
    }
}
