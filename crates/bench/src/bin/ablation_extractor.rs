//! Extension ablation (Sec. IV-C / Sec. VI): the paper notes the extractor
//! GRU "can be replaced by other sequential models … for instance
//! Transformer for large dynamic graphs". This harness compares the GRU
//! extractor, the Transformer extractor, and plain Mean pooling as the
//! graph-level readout, for both updaters.

use tpgnn_core::{Readout, TpGnn, TpGnnConfig, UpdaterKind};
use tpgnn_eval::{run_cell_with, ExperimentConfig};

fn main() {
    let _trace = tpgnn_bench::init_trace("ablation_extractor");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Extractor ablation (extension; Sec. IV-C / VI)", &cfg);

    let readouts = [
        ("GRU extractor", Readout::Extractor),
        ("Transformer", Readout::TransformerExtractor),
        ("Mean pooling", Readout::MeanPool),
    ];
    for kind in tpgnn_bench::figure_datasets() {
        let mut rows = Vec::new();
        for updater in [UpdaterKind::Sum, UpdaterKind::Gru] {
            for (label, readout) in readouts {
                eprintln!("[extractor] {} / {updater:?} / {label} …", kind.name());
                let cell = run_cell_with(label, kind, &cfg, move |fd, _snap, seed| {
                    let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                    c.updater = updater;
                    c.readout = readout;
                    Box::new(TpGnn::new(c))
                });
                rows.push((
                    format!("{:?}/{label}", updater),
                    cell.f1,
                    cell.precision,
                    cell.recall,
                ));
            }
        }
        println!("{}", tpgnn_eval::table::render_ablation(kind.name(), &rows));
    }
}
