//! Extension ablation (Sec. IV-C / Sec. VI): the paper notes the extractor
//! GRU "can be replaced by other sequential models … for instance
//! Transformer for large dynamic graphs". This harness compares the GRU
//! extractor, the Transformer extractor, and plain Mean pooling as the
//! graph-level readout, for both updaters.

use tpgnn_core::{Readout, TpGnn, TpGnnConfig, UpdaterKind};
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

fn main() {
    let _trace = tpgnn_bench::init_trace("ablation_extractor");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Extractor ablation (extension; Sec. IV-C / VI)", &cfg);

    let readouts = [
        ("GRU extractor", Readout::Extractor),
        ("Transformer", Readout::TransformerExtractor),
        ("Mean pooling", Readout::MeanPool),
    ];
    let datasets = tpgnn_bench::figure_datasets();
    // One flat (dataset × updater × readout × run) fan-out over the pool.
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            [UpdaterKind::Sum, UpdaterKind::Gru].into_iter().flat_map(move |updater| {
                readouts.into_iter().map(move |(label, readout)| {
                    CellSpec::new(format!("{updater:?}/{label}"), kind, move |fd, _snap, seed| {
                        let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                        c.updater = updater;
                        c.readout = readout;
                        Box::new(TpGnn::new(c))
                    })
                })
            })
        })
        .collect();
    eprintln!("[extractor] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    let per_dataset = 2 * readouts.len();
    for (di, kind) in datasets.iter().enumerate() {
        let rows: Vec<_> = results[di * per_dataset..(di + 1) * per_dataset]
            .iter()
            .map(|cell| (cell.model.clone(), cell.f1, cell.precision, cell.recall))
            .collect();
        println!("{}", tpgnn_eval::table::render_ablation(kind.name(), &rows));
    }
}
