//! Regression gate over the committed benchmark baselines: compares a
//! freshly-written `results/bench_*.json` suite against the committed copy
//! (recovered offline via `git show HEAD:<path>` by `scripts/ci.sh`) and
//! fails on median regressions past a noise-aware threshold on named hot
//! rows.
//!
//! The allowance for a row is `threshold + spread`, where `spread` is the
//! baseline row's own relative sample scatter `(p95 − min) / median`
//! (capped at 1.0): a row whose three smoke samples already wobble 40%
//! gets 40 extra points of slack, a tight row gets almost none — so the
//! gate bites on real regressions without flaking on timer noise.
//!
//! Usage:
//!   bench_compare --baseline <committed.json> --fresh <fresh.json>
//!                 [--threshold 0.10] [--row <name>[=<threshold>]]...
//!
//! With no `--row`, every row present in both suites is checked at the
//! default threshold. Suites whose `smoke` flags differ are skipped with a
//! warning (exit 0): smoke and full runs time different workloads.
//! Exit codes: 0 = within budget (or skipped); 1 = regression past the
//! allowance or unusable input.

use std::path::Path;

use tpgnn_obs::json::{self, Json};

fn fail(msg: &str) -> ! {
    eprintln!("bench_compare: FAIL: {msg}");
    std::process::exit(1);
}

struct Row {
    name: String,
    median_ns: f64,
    min_ns: f64,
    p95_ns: f64,
}

struct Suite {
    smoke: bool,
    rows: Vec<Row>,
}

fn load_suite(path: &str) -> Suite {
    let text = std::fs::read_to_string(Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let Some(Json::Arr(benchmarks)) = doc.get("benchmarks") else {
        fail(&format!("{path}: no benchmarks array"));
    };
    let rows = benchmarks
        .iter()
        .map(|b| {
            let num = |k: &str| {
                b.get(k)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| fail(&format!("{path}: row missing {k}")))
            };
            Row {
                name: b
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("{path}: row missing name")))
                    .to_string(),
                median_ns: num("median_ns"),
                min_ns: num("min_ns"),
                p95_ns: num("p95_ns"),
            }
        })
        .collect();
    Suite { smoke, rows }
}

fn main() {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut threshold = 0.10_f64;
    let mut wanted: Vec<(String, Option<f64>)> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val =
            || it.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--baseline" => baseline_path = Some(val()),
            "--fresh" => fresh_path = Some(val()),
            "--threshold" => {
                threshold = val().parse().unwrap_or_else(|e| fail(&format!("--threshold: {e}")))
            }
            "--row" => {
                let spec = val();
                match spec.split_once('=') {
                    Some((name, t)) => wanted.push((
                        name.to_string(),
                        Some(t.parse().unwrap_or_else(|e| fail(&format!("--row {spec}: {e}")))),
                    )),
                    None => wanted.push((spec, None)),
                }
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let baseline = load_suite(&baseline_path.unwrap_or_else(|| fail("--baseline is required")));
    let fresh_path = fresh_path.unwrap_or_else(|| fail("--fresh is required"));
    let fresh = load_suite(&fresh_path);

    if baseline.smoke != fresh.smoke {
        println!(
            "bench_compare: SKIP {fresh_path} — smoke flags differ (baseline {}, fresh {}): \
             different workloads, medians are not comparable",
            baseline.smoke, fresh.smoke
        );
        return;
    }

    if wanted.is_empty() {
        wanted = baseline
            .rows
            .iter()
            .filter(|b| fresh.rows.iter().any(|f| f.name == b.name))
            .map(|b| (b.name.clone(), None))
            .collect();
    }
    if wanted.is_empty() {
        fail("no comparable rows between baseline and fresh suites");
    }

    let mut regressions = 0usize;
    for (name, row_threshold) in &wanted {
        let Some(base) = baseline.rows.iter().find(|r| &r.name == name) else {
            println!("bench_compare: warn — baseline has no row `{name}`, skipping");
            continue;
        };
        let Some(new) = fresh.rows.iter().find(|r| &r.name == name) else {
            fail(&format!("fresh suite lost row `{name}`"));
        };
        if base.median_ns <= 0.0 {
            println!("bench_compare: warn — row `{name}` baseline median is 0, skipping");
            continue;
        }
        let spread = ((base.p95_ns - base.min_ns) / base.median_ns).clamp(0.0, 1.0);
        let allowed = row_threshold.unwrap_or(threshold) + spread;
        let ratio = new.median_ns / base.median_ns - 1.0;
        let verdict = if ratio > allowed {
            regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "bench_compare: {verdict:<10} {name}: median {:.0}ns -> {:.0}ns ({:+.1}%, allowed +{:.1}% = threshold {:.0}% + spread {:.0}%)",
            base.median_ns,
            new.median_ns,
            ratio * 100.0,
            allowed * 100.0,
            row_threshold.unwrap_or(threshold) * 100.0,
            spread * 100.0
        );
    }
    if regressions > 0 {
        fail(&format!("{regressions} row(s) regressed past their allowance"));
    }
    println!("bench_compare: OK — {} row(s) within budget", wanted.len());
}
