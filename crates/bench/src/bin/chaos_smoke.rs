//! Chaos smoke for CI: pushes Forum-java corpora through the streaming
//! ingestion path ([`tpgnn_graph::CtdnBuilder`]) under a matrix of seeded
//! fault schedules covering every injector — shuffle, duplication,
//! corruption, burst drops, delays, clock skew (declared and undeclared),
//! and clock regression — and asserts that
//!
//! 1. nothing panics,
//! 2. the reorder buffer stays within its configured bound,
//! 3. event accounting closes (`received == released + quarantined`),
//! 4. every rejection is typed and reconciles exactly with the injected
//!    fault counts, and
//! 5. the zero-fault schedule reproduces the direct loader bitwise —
//!    including bitwise-identical training losses.
//!
//! Exit codes: 0 = all schedules pass; 1 = a reconciliation failed.
//! `--smoke` shrinks the corpora for CI (`scripts/ci.sh`).

use tpgnn_core::{train_guarded, GuardConfig, TpGnn, TpGnnConfig, TrainConfig};
use tpgnn_data::chaos::{rebuild_dataset, DatasetChaosReport, FaultPlan};
use tpgnn_data::{DatasetKind, GraphDataset};
use tpgnn_graph::RejectKind;

/// The schedule matrix: every injector type appears at least once, alone
/// where its quarantine count is exactly predictable and combined once.
fn schedules() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("zero-fault", FaultPlan::clean()),
        (
            "shuffle",
            FaultPlan { shuffle_window: 8, shuffle_prob: 1.0, ..FaultPlan::default() },
        ),
        ("duplicate", FaultPlan { dup_rate: 0.2, ..FaultPlan::default() }),
        ("corrupt", FaultPlan { corrupt_rate: 0.15, ..FaultPlan::default() }),
        (
            "burst-drop",
            FaultPlan { drop_rate: 0.1, burst_len: 3, ..FaultPlan::default() },
        ),
        (
            "delay",
            FaultPlan { delay_rate: 0.1, delay_margin: 5.0, ..FaultPlan::default() },
        ),
        (
            "skew-declared",
            FaultPlan { num_origins: 3, skew: 40.0, declare_skew: true, ..FaultPlan::default() },
        ),
        (
            "skew-undeclared",
            FaultPlan { num_origins: 3, skew: 40.0, declare_skew: false, ..FaultPlan::default() },
        ),
        (
            "regression",
            FaultPlan { regress_rate: 0.1, regression: 5.0, ..FaultPlan::default() },
        ),
        ("combined", FaultPlan::mixed(0.2)),
    ]
}

fn fail(schedule: &str, msg: &str) -> ! {
    eprintln!("chaos_smoke: FAIL [{schedule}]: {msg}");
    std::process::exit(1);
}

/// Per-schedule reconciliation: each injector's quarantine signature is
/// exact, so any drift (a missed rejection, an extra one, a wrong type)
/// fails the run.
fn reconcile(name: &str, report: &DatasetChaosReport) {
    let s = &report.stats;
    let l = &report.ledger;
    let c = &report.counts;
    if s.received != s.released + s.quarantined {
        fail(name, &format!("accounting leak: {} != {} + {}", s.received, s.released, s.quarantined));
    }
    if s.received != l.emitted {
        fail(name, &format!("builder saw {} events, injector emitted {}", s.received, l.emitted));
    }
    let expect = |kind: RejectKind, want: usize| {
        let got = c.count(kind);
        if got != want {
            fail(name, &format!("{} count {got}, expected {want} ({})", kind.label(), c.summary()));
        }
    };
    match name {
        "zero-fault" | "shuffle" | "burst-drop" | "skew-declared" | "skew-undeclared" => {
            if c.total() != 0 {
                fail(name, &format!("expected zero quarantines, got {}", c.summary()));
            }
            if s.released != l.input_events - l.dropped {
                fail(name, "released events do not match surviving input");
            }
        }
        "duplicate" => expect(RejectKind::Duplicate, l.duplicated),
        "corrupt" => expect(RejectKind::Malformed, l.corrupted),
        "delay" => expect(RejectKind::LateEvent, l.delayed),
        "regression" => expect(RejectKind::NonMonotonicClock, l.regressed),
        "combined" => {
            expect(RejectKind::Duplicate, l.duplicated);
            expect(RejectKind::Malformed, l.corrupted);
            if c.total() != l.duplicated + l.corrupted {
                fail(name, &format!("untyped rejections present: {}", c.summary()));
            }
        }
        other => fail(other, "schedule has no reconciliation rule"),
    }
}

/// Train TP-GNN-SUM briefly and return the per-epoch losses — used to prove
/// the zero-fault rebuild is indistinguishable from the direct loader all
/// the way through the training stack.
fn losses(ds: &GraphDataset, epochs: usize) -> Vec<f32> {
    let feature_dim = ds.graphs.first().map_or(3, |g| g.graph.feature_dim());
    let pairs: Vec<_> = ds.graphs.iter().map(|lg| (lg.graph.clone(), lg.target())).collect();
    let mut model = TpGnn::new(TpGnnConfig::sum(feature_dim).with_seed(9));
    let cfg = TrainConfig { epochs, shuffle_ties: true, seed: 9 };
    train_guarded(&mut model, &pairs, &cfg, &GuardConfig::default()).epoch_losses
}

fn main() {
    let _trace = tpgnn_bench::init_trace("chaos-smoke");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (graphs, epochs) = if smoke { (12, 2) } else { (48, 4) };

    let clean = DatasetKind::ForumJava.generate(graphs, 42);
    let mut total_quarantined = 0usize;

    for (i, (name, plan)) in schedules().into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let (rebuilt, report) = rebuild_dataset(&clean, &plan, seed);
        let cap = plan.stream_config().reorder_capacity;
        if cap > 0 && report.stats.max_buffer_depth > cap {
            fail(name, &format!("buffer depth {} exceeded capacity {cap}", report.stats.max_buffer_depth));
        }
        reconcile(name, &report);

        if name == "zero-fault" {
            for (a, b) in clean.graphs.iter().zip(&rebuilt.graphs) {
                let (mut ga, mut gb) = (a.graph.clone(), b.graph.clone());
                if a.label != b.label
                    || ga.edges_chronological() != gb.edges_chronological()
                    || ga.features() != gb.features()
                {
                    fail(name, "rebuilt graph differs from direct loader");
                }
            }
            let (la, lb) = (losses(&clean, epochs), losses(&rebuilt, epochs));
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            if bits(&la) != bits(&lb) {
                fail(name, &format!("training losses diverged: {la:?} vs {lb:?}"));
            }
        }

        total_quarantined += report.counts.total();
        println!(
            "chaos_smoke: [{name:<15}] ok — received {:>5}, released {:>5}, max depth {:>4}, {}",
            report.stats.received,
            report.stats.released,
            report.stats.max_buffer_depth,
            report.counts.summary()
        );
    }

    println!(
        "chaos_smoke: OK — {} schedules, {} total quarantined events, all reconciled",
        schedules().len(),
        total_quarantined
    );
}
