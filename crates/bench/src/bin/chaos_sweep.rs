//! Degradation sweep: TP-GNN classification quality as the streaming
//! ingestion path is fed increasingly corrupted feeds
//! (`FaultPlan::mixed` at each rate). Companion to `chaos_smoke`: where
//! the smoke asserts the ingestion *accounting* is exact, this sweep shows
//! what the surviving (post-quarantine) data is still worth for
//! classification.
//!
//! Scale via `TPGNN_GRAPHS` / `TPGNN_RUNS` / `TPGNN_EPOCHS`; dataset filter
//! via `TPGNN_DATASETS`.

use tpgnn_eval::table::render_degradation;
use tpgnn_eval::{run_degradation, ExperimentConfig};

const MODEL: &str = "TP-GNN-SUM";
const RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

fn main() {
    let _trace = tpgnn_bench::init_trace("chaos-sweep");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Degradation sweep: quality under injected stream faults", &cfg);
    println!(
        "fault plan: FaultPlan::mixed(rate) — window shuffles, duplication,\n\
         corruption, and burst drops scaled together (see DESIGN.md §7)\n"
    );
    for kind in tpgnn_bench::selected_datasets() {
        let rows = run_degradation(MODEL, kind, &RATES, &cfg);
        println!("{}", render_degradation(kind.name(), MODEL, &rows));
    }
}
