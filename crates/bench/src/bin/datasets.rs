//! Utility: export the five synthetic datasets to disk in the plain-text
//! format of `tpgnn_data::io`, for inspection or use outside this workspace.
//!
//! ```sh
//! cargo run --release -p tpgnn-bench --bin datasets -- [out_dir]
//! ```

use tpgnn_data::io;
use tpgnn_eval::ExperimentConfig;

fn main() {
    let _trace = tpgnn_bench::init_trace("datasets");
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "datasets_out".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Dataset export", &cfg);

    for kind in tpgnn_bench::selected_datasets() {
        let mut ds = kind.generate(cfg.num_graphs, cfg.base_seed);
        let stats = ds.stats();
        let path = format!("{out_dir}/{}.tpgnn", kind.name().to_lowercase().replace('-', "_"));
        io::save(&ds, &path).expect("write dataset");
        println!(
            "{:<12} -> {path}  ({} graphs, avg {:.1} nodes / {:.1} edges, {:.1}% negative)",
            kind.name(),
            stats.graph_number,
            stats.avg_nodes,
            stats.avg_edges,
            stats.negative_ratio * 100.0
        );
    }
}
