//! Regenerates **Fig. 3**: ablation study of TP-GNN-SUM (`rand`, `w/o tem`,
//! `temp`, `time2Vec`, full) on Forum-java, HDFS, Gowalla and Brightkite.
//!
//! Expected shape: `rand` < `temp` < `time2Vec` < full, with `w/o tem`
//! between `rand` and the full model.

fn main() {
    let _trace = tpgnn_bench::init_trace("fig3");
    tpgnn_bench::run_ablation_figure(tpgnn_core::UpdaterKind::Sum, "Fig. 3");
}
