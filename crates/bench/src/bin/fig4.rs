//! Regenerates **Fig. 4**: ablation study of TP-GNN-GRU (`rand`, `w/o tem`,
//! `temp`, `time2Vec`, full) on Forum-java, HDFS, Gowalla and Brightkite.
//!
//! Expected shape matches Fig. 3, with the GRU updater's `temp` variant
//! typically above the SUM updater's (Sec. V-F).

fn main() {
    let _trace = tpgnn_bench::init_trace("fig4");
    tpgnn_bench::run_ablation_figure(tpgnn_core::UpdaterKind::Gru, "Fig. 4");
}
