//! Regenerates **Fig. 5**: F₁ heatmaps of TP-GNN-SUM under the
//! hyperparameter sweep `d ∈ {8, 16, 32, 64, 128} × d_t ∈ {2, 4, 6, 8}`
//! on the four figure datasets.
//!
//! Expected shape: F₁ rises with `d` and `d_t` then plateaus, peaking
//! around `d = 32`, `d_t = 6` (the paper's default configuration).

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_eval::{run_cell_with, ExperimentConfig};

const HIDDEN_SIZES: [usize; 5] = [8, 16, 32, 64, 128];
const TIME_DIMS: [usize; 4] = [2, 4, 6, 8];

fn main() {
    let _trace = tpgnn_bench::init_trace("fig5");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Fig. 5: hyperparameter sensitivity of TP-GNN-SUM", &cfg);

    for kind in tpgnn_bench::figure_datasets() {
        let mut grid = Vec::with_capacity(HIDDEN_SIZES.len());
        for &d in &HIDDEN_SIZES {
            let mut row = Vec::with_capacity(TIME_DIMS.len());
            for &dt in &TIME_DIMS {
                eprintln!("[fig5] {} d={d} d_t={dt} …", kind.name());
                let cell = run_cell_with("TP-GNN-SUM", kind, &cfg, move |fd, _snap, seed| {
                    let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                    c.hidden_dim = d;
                    c.time_dim = dt;
                    Box::new(TpGnn::new(c))
                });
                row.push(cell.f1);
            }
            grid.push(row);
        }
        println!(
            "{}",
            tpgnn_eval::table::render_heatmap(
                &format!("F1 (%) on {}", kind.name()),
                "d",
                &HIDDEN_SIZES,
                "d_t",
                &TIME_DIMS,
                &grid
            )
        );
    }
}
