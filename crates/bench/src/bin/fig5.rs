//! Regenerates **Fig. 5**: F₁ heatmaps of TP-GNN-SUM under the
//! hyperparameter sweep `d ∈ {8, 16, 32, 64, 128} × d_t ∈ {2, 4, 6, 8}`
//! on the four figure datasets.
//!
//! Expected shape: F₁ rises with `d` and `d_t` then plateaus, peaking
//! around `d = 32`, `d_t = 6` (the paper's default configuration).

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

const HIDDEN_SIZES: [usize; 5] = [8, 16, 32, 64, 128];
const TIME_DIMS: [usize; 4] = [2, 4, 6, 8];

fn main() {
    let _trace = tpgnn_bench::init_trace("fig5");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Fig. 5: hyperparameter sensitivity of TP-GNN-SUM", &cfg);

    let datasets = tpgnn_bench::figure_datasets();
    // One flat (dataset × d × d_t × run) fan-out over the worker pool.
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            HIDDEN_SIZES.iter().flat_map(move |&d| {
                TIME_DIMS.iter().map(move |&dt| {
                    CellSpec::new(format!("d={d},d_t={dt}"), kind, move |fd, _snap, seed| {
                        let mut c = TpGnnConfig::sum(fd).with_seed(seed);
                        c.hidden_dim = d;
                        c.time_dim = dt;
                        Box::new(TpGnn::new(c))
                    })
                })
            })
        })
        .collect();
    eprintln!("[fig5] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    let per_dataset = HIDDEN_SIZES.len() * TIME_DIMS.len();
    for (di, kind) in datasets.iter().enumerate() {
        let block = &results[di * per_dataset..(di + 1) * per_dataset];
        let grid: Vec<Vec<_>> = block
            .chunks(TIME_DIMS.len())
            .map(|row| row.iter().map(|cell| cell.f1).collect())
            .collect();
        println!(
            "{}",
            tpgnn_eval::table::render_heatmap(
                &format!("F1 (%) on {}", kind.name()),
                "d",
                &HIDDEN_SIZES,
                "d_t",
                &TIME_DIMS,
                &grid
            )
        );
    }
}
