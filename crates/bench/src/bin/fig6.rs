//! Regenerates **Fig. 6**: per-graph running time (µs) vs F₁ of the
//! continuous DGNNs and TP-GNN on the four figure datasets.
//!
//! Expected shape: DyGNN slowest everywhere; TP-GNN in the top-left
//! (fast + accurate) except on edge-dense Brightkite where its per-edge
//! cost shows (Sec. V-G).

use tpgnn_eval::{run_cell, ExperimentConfig};

/// Fig. 6 compares the continuous models plus both TP-GNN variants.
const MODELS: [&str; 6] = ["TGN", "DyGNN", "TGAT", "GraphMixer", "TP-GNN-SUM", "TP-GNN-GRU"];

fn main() {
    let _trace = tpgnn_bench::init_trace("fig6");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Fig. 6: running time vs F1 (continuous DGNNs)", &cfg);

    let models = tpgnn_bench::selected_models(&MODELS);
    for kind in tpgnn_bench::figure_datasets() {
        let mut cells = Vec::with_capacity(models.len());
        for model in &models {
            eprintln!("[fig6] {} / {model} …", kind.name());
            cells.push(run_cell(model, kind, &cfg));
        }
        println!("{}", tpgnn_eval::table::render_scatter(kind.name(), &cells));
    }
}
