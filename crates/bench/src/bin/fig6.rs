//! Regenerates **Fig. 6**: per-graph running time (µs) vs F₁ of the
//! continuous DGNNs and TP-GNN on the four figure datasets.
//!
//! Expected shape: DyGNN slowest everywhere; TP-GNN in the top-left
//! (fast + accurate) except on edge-dense Brightkite where its per-edge
//! cost shows (Sec. V-G).

use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

/// Fig. 6 compares the continuous models plus both TP-GNN variants.
const MODELS: [&str; 6] = ["TGN", "DyGNN", "TGAT", "GraphMixer", "TP-GNN-SUM", "TP-GNN-GRU"];

fn main() {
    let _trace = tpgnn_bench::init_trace("fig6");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Fig. 6: running time vs F1 (continuous DGNNs)", &cfg);

    let models = tpgnn_bench::selected_models(&MODELS);
    let datasets = tpgnn_bench::figure_datasets();
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| models.iter().map(move |model| CellSpec::zoo(*model, kind)))
        .collect();
    eprintln!("[fig6] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    for (di, kind) in datasets.iter().enumerate() {
        let cells = &results[di * models.len()..(di + 1) * models.len()];
        println!("{}", tpgnn_eval::table::render_scatter(kind.name(), cells));
    }
}
