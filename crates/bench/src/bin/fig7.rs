//! Regenerates the **Fig. 7 case study**: a Brightkite-style user-trajectory
//! network where swapping the edge `(v2 → v3, t=4.3)` with
//! `(v5 → v7, t=14.5)` — or flipping the latter's direction — changes the
//! information flow and must flip TP-GNN's classification.
//!
//! The harness (1) prints the influential-node analysis of the original and
//! modified graphs (in the original, `v7` at `t=14.5` aggregates every node
//! except `v8`; after the swap it only aggregates `v5`), then (2) trains
//! TP-GNN-SUM on the Brightkite simulator and reports the predicted
//! probabilities for all three graphs.

use tpgnn_core::{GraphClassifier, TpGnn, TpGnnConfig, TrainConfig};
use tpgnn_data::DatasetKind;
use tpgnn_eval::ExperimentConfig;
use tpgnn_graph::{Ctdn, InfluenceAnalysis, NodeFeatures, TemporalEdge};

/// The Fig. 7 trajectory: v0 → v1 → v2 → v3 → v4 → v5 → v6 → (back) v5 → v7 → v8.
fn fig7_graph() -> Ctdn {
    let mut feats = NodeFeatures::zeros(9, 3);
    for v in 0..9 {
        // POI positions along a path, same country.
        feats.row_mut(v).copy_from_slice(&[0.1 + 0.08 * v as f32, 0.5 - 0.03 * v as f32, 0.4]);
    }
    let mut g = Ctdn::new(feats);
    let add = |g: &mut Ctdn, s, d, t| {
        g.try_add_edge(s, d, t).expect("fig7 trajectory is hardcoded valid")
    };
    add(&mut g, 0, 1, 1.2);
    add(&mut g, 1, 2, 2.8);
    add(&mut g, 2, 3, 4.3); // <- swapped in the modified graph
    add(&mut g, 3, 4, 6.0);
    add(&mut g, 4, 5, 7.7);
    add(&mut g, 5, 6, 9.1);
    add(&mut g, 6, 5, 11.4);
    add(&mut g, 5, 7, 14.5); // <- swapped / direction-flipped
    add(&mut g, 7, 8, 16.2);
    g
}

/// Swap the times of the `(2,3)` and `(5,7)` edges — the paper's first
/// modification.
fn swapped_graph() -> Ctdn {
    let mut g = fig7_graph();
    let edges: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .map(|e| match (e.src, e.dst) {
            (2, 3) => TemporalEdge::new(2, 3, 14.5),
            (5, 7) => TemporalEdge::new(5, 7, 4.3),
            _ => *e,
        })
        .collect();
    g.set_edges(edges);
    g
}

/// Flip the direction of the `(5,7)` edge — the paper's second modification.
fn flipped_graph() -> Ctdn {
    let mut g = fig7_graph();
    let edges: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .map(|e| {
            if (e.src, e.dst) == (5, 7) {
                TemporalEdge::new(7, 5, e.time)
            } else {
                *e
            }
        })
        .collect();
    g.set_edges(edges);
    g
}

fn print_influence(name: &str, g: &mut Ctdn) {
    let inf = InfluenceAnalysis::compute(g);
    let set7: Vec<usize> = inf.set(7).iter().collect();
    println!("  {name}: influential nodes of v7 = {set7:?} ({} nodes)", set7.len());
}

fn main() {
    let _trace = tpgnn_bench::init_trace("fig7");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Fig. 7 case study: information-flow sensitivity", &cfg);

    println!("Influential-node analysis (Definition 4):");
    print_influence("original      ", &mut fig7_graph());
    print_influence("edge-swap     ", &mut swapped_graph());
    print_influence("direction-flip", &mut flipped_graph());
    println!();

    // Train TP-GNN-GRU on the Brightkite simulator (whose negatives are
    // rewired / order-shuffled trajectories, the same family as the case
    // study's modifications).
    println!("Training TP-GNN-GRU on Brightkite …");
    let ds = DatasetKind::Brightkite.generate(cfg.num_graphs, cfg.base_seed);
    let (train_split, _) = ds.split(cfg.train_frac);
    let pairs = tpgnn_eval::to_pairs(train_split);
    let mut model = TpGnn::new(TpGnnConfig::gru(3).with_seed(cfg.base_seed));
    model.set_learning_rate(cfg.learning_rate);
    let report = tpgnn_core::train(
        &mut model,
        &pairs,
        &TrainConfig { epochs: cfg.epochs * 2, shuffle_ties: true, seed: cfg.base_seed },
    );
    println!("final training loss: {:.4}\n", report.final_loss().unwrap_or(f32::NAN));

    println!("Predicted P(positive):");
    for (name, mut g) in [
        ("original (normal trajectory)", fig7_graph()),
        ("edge-swap (t=4.3 <-> t=14.5)", swapped_graph()),
        ("direction-flip (v5->v7 becomes v7->v5)", flipped_graph()),
    ] {
        let p = model.predict_proba(&mut g);
        println!(
            "  {name:<42} p = {p:.4}  -> classified {}",
            if p >= 0.5 { "POSITIVE" } else { "NEGATIVE" }
        );
    }
    println!();
    println!("Paper's expectation: the original stays positive; both modifications");
    println!("change the information flow that temporal propagation aggregates and");
    println!("should be recognized as negative.");
}
