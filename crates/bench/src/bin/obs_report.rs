//! Offline analysis over a serve run's observability artifacts: span
//! latency breakdowns from the trace JSONL, live-telemetry and SLO
//! summaries from the snapshot time series, top-op tables from the metrics
//! sidecar, and per-session timelines reconstructed from the journal by
//! joining **purely on trace ids**.
//!
//! Usage:
//!   obs_report [--trace <trace.jsonl>] [--live <live.jsonl>]
//!              [--sidecar <metrics.json>] [--journal <dir>]
//!              [--session <id>] [--run <name> [--dir <results>]]
//!
//! `--run smoke` is shorthand for `--trace <dir>/trace-smoke.jsonl
//! --live <dir>/live-smoke.jsonl --sidecar <dir>/metrics-smoke.json`
//! (`--dir` defaults to `results`). `--session` requires `--journal`.
//! Exit codes: 0 = report printed; 1 = bad arguments or unreadable input.

use std::path::{Path, PathBuf};

use tpgnn_bench::report;
use tpgnn_obs::reader;

fn fail(msg: &str) -> ! {
    eprintln!("obs_report: FAIL: {msg}");
    std::process::exit(1);
}

fn exists_or_note(path: &Path, what: &str) -> bool {
    if path.exists() {
        return true;
    }
    println!("== {what} {} — not present for this run\n", path.display());
    false
}

#[derive(Default)]
struct Args {
    trace: Option<PathBuf>,
    live: Option<PathBuf>,
    sidecar: Option<PathBuf>,
    journal: Option<PathBuf>,
    session: Option<u64>,
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut dir = PathBuf::from("results");
    let mut run: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--trace" => out.trace = Some(PathBuf::from(val())),
            "--live" => out.live = Some(PathBuf::from(val())),
            "--sidecar" => out.sidecar = Some(PathBuf::from(val())),
            "--journal" => out.journal = Some(PathBuf::from(val())),
            "--session" => {
                out.session =
                    Some(val().parse().unwrap_or_else(|e| fail(&format!("--session: {e}"))))
            }
            "--run" => run = Some(val()),
            "--dir" => dir = PathBuf::from(val()),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if let Some(run) = run {
        out.trace.get_or_insert_with(|| dir.join(format!("trace-{run}.jsonl")));
        out.live.get_or_insert_with(|| dir.join(format!("live-{run}.jsonl")));
        out.sidecar.get_or_insert_with(|| dir.join(format!("metrics-{run}.json")));
    }
    if out.trace.is_none() && out.live.is_none() && out.sidecar.is_none() && out.journal.is_none()
    {
        fail("nothing to report on — pass --run <name> or explicit paths (see --help text in the source header)");
    }
    out
}

fn main() {
    let args = parse_args();
    let mut trace_records = Vec::new();

    // Sections degrade to a note when their artifact is absent (a run
    // without live telemetry still has a trace worth reporting on); a file
    // that exists but does not parse is still a hard failure.
    if let Some(path) = args.trace.as_ref().filter(|p| exists_or_note(p, "trace")) {
        let lossy = reader::read_trace_lossy(path)
            .unwrap_or_else(|e| fail(&format!("trace: {e}")));
        println!(
            "== trace {} — {} record(s), {} torn line(s) skipped",
            path.display(),
            lossy.records.len(),
            lossy.skipped
        );
        let rows = report::span_breakdown(&lossy.records);
        if rows.is_empty() {
            println!("  no spans recorded");
        } else {
            print!("{}", report::render_spans(&rows));
        }
        println!();
        trace_records = lossy.records;
    }

    if let Some(path) = args.live.as_ref().filter(|p| exists_or_note(p, "live telemetry")) {
        let live = report::read_live(path).unwrap_or_else(|e| fail(&format!("live: {e}")));
        println!(
            "== live telemetry {} — {} tick(s) (last seq {}), {} torn line(s) skipped",
            path.display(),
            live.ticks,
            live.last_seq,
            live.skipped
        );
        println!("== SLO");
        print!("{}", report::render_slo(&live));
        println!();
    }

    if let Some(path) = args.sidecar.as_ref().filter(|p| exists_or_note(p, "metrics sidecar")) {
        println!("== top ops {}", path.display());
        match report::render_top_ops_from_sidecar(path, 12) {
            Ok(table) => print!("{table}"),
            Err(e) => println!("  unavailable: {e}"),
        }
        println!();
    }

    if let Some(dir) = &args.journal {
        let data = report::load_journal(dir).unwrap_or_else(|e| fail(&format!("journal: {e}")));
        let frames: usize = data.shards.iter().map(Vec::len).sum();
        println!(
            "== journal {} — {} shard(s), {} frame(s), {} commit(s), {} torn frame(s)",
            dir.display(),
            data.shards.len(),
            frames,
            data.commits.len(),
            data.torn_frames
        );
        if let Some(sid) = args.session {
            match report::session_timeline(&data, &trace_records, sid) {
                Some(t) => print!("{t}"),
                None => fail(&format!("journal holds no frames for session {sid}")),
            }
        }
        println!();
    } else if args.session.is_some() {
        fail("--session requires --journal <dir>");
    }
}
