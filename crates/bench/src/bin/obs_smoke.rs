//! Traced training smoke for CI: runs one healthy guarded Forum-java
//! training run plus one with an injected NaN epoch, closes the trace, and
//! then validates the JSONL from the outside via the snapshot reader.
//!
//! Exit codes: 0 = trace written and valid; 1 = validation failed;
//! 2 = tracing is disabled (`TPGNN_TRACE` unset) — the run is meaningless.
//!
//! `scripts/ci.sh` runs this as `TPGNN_TRACE=1 cargo run --bin obs_smoke`
//! and additionally asserts the trace file is non-empty.

use tpgnn_core::{
    train_guarded, GraphClassifier, GuardConfig, TpGnn, TpGnnConfig, TrainConfig,
};
use tpgnn_data::forum_java;
use tpgnn_graph::Ctdn;
use tpgnn_obs::{reader, trace};
use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;

/// Delegates to a TP-GNN but reports a NaN loss for exactly one epoch, so
/// the guard must roll back once and the trace must carry the warning.
struct NanOnce {
    inner: TpGnn,
    fit_calls: usize,
    nan_at: usize,
}

impl GraphClassifier for NanOnce {
    fn name(&self) -> String {
        "nan-once-smoke".into()
    }
    fn fit_epoch(&mut self, train: &mut [(Ctdn, f32)]) -> f32 {
        self.fit_calls += 1;
        let loss = self.inner.fit_epoch(train);
        if self.fit_calls == self.nan_at {
            f32::NAN
        } else {
            loss
        }
    }
    fn predict_proba(&mut self, g: &mut Ctdn) -> f32 {
        self.inner.predict_proba(g)
    }
    fn set_learning_rate(&mut self, lr: f32) {
        self.inner.set_learning_rate(lr);
    }
    fn learning_rate(&self) -> Option<f32> {
        self.inner.learning_rate()
    }
    fn save_state(&self) -> Option<String> {
        self.inner.save_state()
    }
    fn load_state(&mut self, state: &str) -> Result<(), String> {
        self.inner.load_state(state)
    }
    fn check_finite(&self) -> Result<(), String> {
        self.inner.check_finite()
    }
    fn param_norm(&self) -> Option<f32> {
        self.inner.param_norm()
    }
    fn grad_norm(&self) -> Option<f32> {
        self.inner.grad_norm()
    }
}

fn corpus(n: usize, seed: u64) -> Vec<(Ctdn, f32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = forum_java::ForumJavaConfig::default();
    (0..n)
        .map(|i| (forum_java::generate_session(&cfg, &mut rng), (i % 2) as f32))
        .collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    if !trace::init("smoke") {
        eprintln!("obs_smoke: TPGNN_TRACE is not set; nothing to validate (exit 2)");
        std::process::exit(2);
    }

    let pairs = corpus(8, 7);
    let train_cfg = TrainConfig { epochs: 3, shuffle_ties: true, seed: 7 };
    let guard_cfg = GuardConfig::default();

    // Healthy run: per-epoch spans, checkpoints, and a tape profile.
    let mut healthy = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
    healthy.set_learning_rate(3e-3);
    let report = train_guarded(&mut healthy, &pairs, &train_cfg, &guard_cfg);
    if report.epoch_losses.len() != train_cfg.epochs || report.aborted {
        fail("healthy training run did not complete");
    }

    // Faulted run: one injected NaN epoch must produce a rollback warning.
    let mut faulted = NanOnce {
        inner: TpGnn::new(TpGnnConfig::sum(3).with_seed(11)),
        fit_calls: 0,
        nan_at: 2,
    };
    faulted.set_learning_rate(3e-3);
    let report = train_guarded(&mut faulted, &pairs, &train_cfg, &guard_cfg);
    if report.recoveries.len() != 1 || report.aborted {
        fail("faulted run did not recover exactly once");
    }

    // Exercise the worker pool so the metrics sidecar carries the pool.*
    // series even on single-core machines (the override forces a 2-wide
    // pool regardless of TPGNN_THREADS / available cores).
    let pooled = tpgnn_par::with_thread_override(2, || {
        tpgnn_par::map_indexed(&[10usize, 20, 30, 40], |i, &x| x + i)
    });
    if pooled != vec![10, 21, 32, 43] {
        fail("worker pool returned wrong or out-of-order results");
    }

    let path = trace::finish().unwrap_or_else(|| fail("trace::finish returned no path"));

    // Validate from the outside, exactly as CI does.
    let records = reader::read_trace(&path)
        .unwrap_or_else(|e| fail(&format!("trace does not parse: {e}")));
    if records.is_empty() {
        fail("trace is empty");
    }
    let count = |kind: &str, name: &str| {
        records.iter().filter(|r| r.kind == kind && r.name == name).count()
    };
    if count("span", "train.epoch") < train_cfg.epochs {
        fail("missing per-epoch spans");
    }
    if count("span", "train.run") < 2 {
        fail("missing train.run spans");
    }
    if count("event", "tape.profile") == 0 {
        fail("missing tape per-op profile snapshot");
    }
    if count("event", "train.checkpoint") == 0 {
        fail("missing checkpoint events");
    }
    let rollbacks: Vec<_> = records
        .iter()
        .filter(|r| r.kind == "event" && r.name == "guard.rollback" && r.level == "warn")
        .collect();
    if rollbacks.is_empty() {
        fail("missing guard.rollback warning event");
    }
    let epoch_spans_with_loss = records
        .iter()
        .filter(|r| r.name == "train.epoch")
        .filter(|r| r.field("loss").is_some() && r.field("lr").is_some())
        .count();
    if epoch_spans_with_loss == 0 {
        fail("epoch spans carry no loss/lr metrics");
    }

    // The metrics sidecar must carry the worker-pool series recorded above.
    let metrics_path = path.with_file_name("metrics-smoke.json");
    let metrics = std::fs::read_to_string(&metrics_path)
        .unwrap_or_else(|e| fail(&format!("metrics sidecar unreadable: {e}")));
    for series in ["pool.tasks", "pool.workers", "pool.queue_depth", "pool.task_ms"] {
        if !metrics.contains(series) {
            fail(&format!("metrics sidecar is missing the {series} series"));
        }
    }

    println!(
        "obs_smoke: OK — {} records ({} epoch spans, {} rollback warning(s)) in {}",
        records.len(),
        count("span", "train.epoch"),
        rollbacks.len(),
        path.display()
    );
}
