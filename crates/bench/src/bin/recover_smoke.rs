//! Crash-recovery smoke for CI: a child process is hard-aborted mid-stream
//! (`std::process::abort`, no destructors, no flush — the closest in-tree
//! stand-in for `kill -9`), its journal tail deliberately torn, and the
//! parent recovers from the journal directory, finishes the traffic, and
//! asserts the complete output history — every Final score bitwise, every
//! counter, exact event-conservation ledger reconciliation — is identical
//! to an uninterrupted run of the same seeded plan.
//!
//! Exit codes: 0 = recovery reproduced the uninterrupted history; 1 = any
//! divergence or validation failure. `scripts/ci.sh` runs this next to
//! `obs_smoke` / `serve_smoke` / `chaos_smoke`.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_data::chaos::FaultPlan;
use tpgnn_obs::vfs::{FaultPlan as IoFaultPlan, FaultVfs, IoFaultKind, RetryVfs, StdVfs, Vfs};
use tpgnn_serve::loadgen::{generate, LoadPlan, Traffic};
use tpgnn_serve::{ScoreRecord, ServeError, SessionServer};

const CHILD_ENV: &str = "TPGNN_RECOVER_SMOKE_CHILD";
const SPILL_ENV: &str = "TPGNN_RECOVER_SMOKE_SPILL";
const JOURNAL_ENV: &str = "TPGNN_RECOVER_SMOKE_JOURNAL";
const CUT_ENV: &str = "TPGNN_RECOVER_SMOKE_CUT";

fn fail(msg: &str) -> ! {
    eprintln!("recover_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn model() -> TpGnn {
    TpGnn::new(TpGnnConfig::gru(3).with_seed(19))
}

/// The shared seeded plan; parent and child must agree exactly, or the
/// recovery self-check would (correctly) refuse the forked history.
fn plan(spill: PathBuf, journal: PathBuf) -> LoadPlan {
    LoadPlan {
        sessions: 48,
        seed: 1719,
        fault: FaultPlan::mixed(0.15),
        batch_size: 32,
        session_spacing: 2.0,
        session_gap: 30.0,
        early_warning_every: 4,
        num_shards: 8,
        max_resident_sessions: 16,
        max_buffered_edges: 0,
        spill_dir: Some(spill),
        journal_dir: Some(journal),
        snapshot_every: 3,
    }
}

/// Bit-exact comparison key (float equality would misjudge NaN payloads).
fn key(r: &ScoreRecord) -> String {
    let q = r.quarantine.as_ref().map(|q| q.render());
    format!("{} {:?} {:08x} {} {:?} {:?}", r.session, r.kind, r.proba.to_bits(), r.edges, r.stats, q)
}

fn feed(
    server: &mut SessionServer<'_, TpGnn>,
    traffic: &Traffic,
    range: std::ops::Range<usize>,
) -> Vec<ScoreRecord> {
    let mut out = Vec::new();
    for b in &traffic.batches[range] {
        out.extend(server.ingest(b).unwrap_or_else(|e| fail(&e.to_string())));
    }
    out
}

/// Child role: serve the first `cut` batches (each one fsync-committed
/// before its results return), tear the journal tail as a crash mid-append
/// would, and die without any cleanup.
fn child() -> ! {
    let spill = PathBuf::from(std::env::var(SPILL_ENV).unwrap());
    let journal = PathBuf::from(std::env::var(JOURNAL_ENV).unwrap());
    let cut: usize = std::env::var(CUT_ENV).unwrap().parse().unwrap();
    let p = plan(spill, journal.clone());
    let traffic = generate(&p);
    let m = model();
    let mut server =
        SessionServer::new(&m, p.serve_config()).unwrap_or_else(|e| fail(&e.to_string()));
    for (sid, f) in &traffic.features {
        server.register(*sid, f.clone());
    }
    feed(&mut server, &traffic, 0..cut);
    // Torn tail: the half-written frame of the batch that was in flight.
    for name in ["shard-0.log", "commit.log"] {
        if let Ok(mut f) = OpenOptions::new().append(true).open(journal.join(name)) {
            let _ = f.write_all(b"ffffffffffffffff torn-mid-append");
        }
    }
    std::process::abort(); // no destructors, no flush — the hard stop
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        child();
    }

    let base = std::env::temp_dir().join(format!("tpgnn-recover-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let dirs = |tag: &str| {
        let s = base.join(format!("{tag}-spill"));
        let j = base.join(format!("{tag}-journal"));
        std::fs::create_dir_all(&s).unwrap();
        std::fs::create_dir_all(&j).unwrap();
        (s, j)
    };

    // Uninterrupted reference run.
    let (rs, rj) = dirs("ref");
    let rp = plan(rs, rj);
    let traffic = generate(&rp);
    let n = traffic.batches.len();
    let cut = n / 2;
    if cut == 0 {
        fail("traffic too small to cut");
    }
    let m = model();
    let rcfg = rp.serve_config();
    let mut reference =
        SessionServer::new(&m, rcfg).unwrap_or_else(|e| fail(&e.to_string()));
    for (sid, f) in &traffic.features {
        reference.register(*sid, f.clone());
    }
    let mut ref_records = feed(&mut reference, &traffic, 0..n);
    ref_records.extend(reference.close_all().unwrap_or_else(|e| fail(&e.to_string())));
    let ref_stats = *reference.stats();
    if ref_stats.evicted == 0 {
        fail("reference run never evicted — the budget knobs are not biting");
    }

    // Child process: serve half the stream, then die hard.
    let (cs, cj) = dirs("child");
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let status = Command::new(exe)
        .env(CHILD_ENV, "1")
        .env(SPILL_ENV, &cs)
        .env(JOURNAL_ENV, &cj)
        .env(CUT_ENV, cut.to_string())
        .status()
        .unwrap_or_else(|e| fail(&format!("spawning child: {e}")));
    if status.success() {
        fail("child was supposed to abort, but exited cleanly");
    }

    // Recover from the dead child's journal and finish the stream.
    let kcfg = plan(cs, cj).serve_config();
    let (mut server, report) = match SessionServer::recover(&m, kcfg) {
        Ok(x) => x,
        Err(e) => fail(&format!("recover: {e}")),
    };
    if report.last_committed != cut {
        fail(&format!("expected horizon {cut}, recovered {}", report.last_committed));
    }
    if report.torn_frames < 2 {
        fail(&format!("torn tail was not counted: {} torn frames", report.torn_frames));
    }
    let mut rec_records: Vec<ScoreRecord> =
        report.delivered.into_iter().flat_map(|b| b.records).collect();
    rec_records.extend(feed(&mut server, &traffic, cut..n));
    rec_records.extend(server.close_all().unwrap_or_else(|e| fail(&e.to_string())));
    let rec_stats = *server.stats();

    // Bitwise-identical history, including every Final score.
    if ref_records.len() != rec_records.len() {
        fail(&format!(
            "record counts diverge: {} uninterrupted vs {} recovered",
            ref_records.len(),
            rec_records.len()
        ));
    }
    for (i, (a, b)) in ref_records.iter().zip(&rec_records).enumerate() {
        if key(a) != key(b) {
            fail(&format!("record {i} diverged:\n  uninterrupted {}\n  recovered    {}", key(a), key(b)));
        }
    }
    if ref_stats != rec_stats {
        fail(&format!("serve counters diverge:\n  {ref_stats:?}\n  {rec_stats:?}"));
    }

    // Exact ledger reconciliation: offered == absorbed + dropped + shed,
    // and the quarantines cover the injected duplicate/corrupt faults.
    let absorbed: usize = rec_records
        .iter()
        .filter_map(|r| r.stats.as_ref())
        .map(|s| s.received)
        .sum();
    let accounted = absorbed
        + rec_stats.shed_refused_events
        + rec_stats.dropped_closed
        + rec_stats.dropped_refused
        + rec_stats.dropped_poisoned;
    if rec_stats.events != accounted {
        fail(&format!(
            "event conservation broken: offered {} vs accounted {accounted}",
            rec_stats.events
        ));
    }
    // Every injected duplicate/corrupt event is either quarantined by the
    // builder it reached or attributed as shed/dropped — never unaccounted.
    let quarantined: usize = rec_records
        .iter()
        .filter_map(|r| r.stats.as_ref())
        .map(|s| s.quarantined)
        .sum();
    let not_absorbed = accounted - absorbed;
    if quarantined + not_absorbed < traffic.ledger.duplicated + traffic.ledger.corrupted {
        fail(&format!(
            "injected faults unaccounted: {quarantined} quarantined + {not_absorbed} shed/dropped \
             < {} duplicated + {} corrupted",
            traffic.ledger.duplicated, traffic.ledger.corrupted
        ));
    }

    println!(
        "recover_smoke: OK — killed at batch {cut}/{n}, replayed {} batch(es) past snapshot {:?}, \
         {} torn frames absorbed, {} records bitwise-identical, {} evictions / {} restores reproduced",
        report.batches_replayed,
        report.snapshot_batch,
        report.torn_frames,
        rec_records.len(),
        rec_stats.evicted,
        rec_stats.restored,
    );

    // Faulted-journal leg: instead of a process kill, the "crash" is an
    // injected ENOSPC mid-journal-frame — the batch whose commit failed was
    // never acked, so recovery must treat it exactly like the torn tail
    // above and the finished history must match the reference bitwise.
    let mut proved = false;
    for seed in [0x5151u64, 0x9b02, 0xc0de, 0x1eaf, 0x7e57, 0xfade] {
        let (fs_dir, fj_dir) = dirs(&format!("fault-{seed:x}"));
        let fp = plan(fs_dir, fj_dir);
        let io_plan = IoFaultPlan::new(seed)
            .with(IoFaultKind::NoSpace, 0.05)
            .only_files(&["shard-", "commit.log"])
            .cap(1);
        let injector = FaultVfs::new(Arc::new(StdVfs), io_plan);
        let stack: Arc<dyn Vfs> = Arc::new(RetryVfs::new(Arc::new(injector.clone())));
        let mut fcfg = fp.serve_config();
        fcfg.vfs = Some(stack);

        let mut acked: Vec<ScoreRecord> = Vec::new();
        let fail_batch;
        {
            let mut server =
                SessionServer::new(&m, fcfg).unwrap_or_else(|e| fail(&e.to_string()));
            for (sid, f) in &traffic.features {
                server.register(*sid, f.clone());
            }
            let mut failed_at = None;
            for (i, b) in traffic.batches.iter().enumerate() {
                match server.ingest(b) {
                    Ok(records) => acked.extend(records),
                    Err(ServeError::Io(_)) => {
                        failed_at = Some(i + 1);
                        break;
                    }
                    Err(e) => fail(&format!("faulted leg: wanted typed Io, got {e}")),
                }
            }
            fail_batch = failed_at;
            // Crash: drop the server with the failed batch unacked.
        }
        let Some(fail_batch) = fail_batch else { continue };
        if fail_batch < 2 {
            continue; // fired before any commit — try the next seed
        }
        let (mut server, freport) = match SessionServer::recover(&m, fp.serve_config()) {
            Ok(x) => x,
            Err(e) => fail(&format!("faulted leg: recover: {e}")),
        };
        if freport.last_committed != fail_batch - 1 {
            fail(&format!(
                "faulted leg: failed batch {fail_batch} leaked into horizon {}",
                freport.last_committed
            ));
        }
        let mut frecords: Vec<ScoreRecord> =
            freport.delivered.into_iter().flat_map(|b| b.records).collect();
        for (a, b) in acked.iter().zip(&frecords) {
            if key(a) != key(b) {
                fail("faulted leg: recovered history diverges from the acked prefix");
            }
        }
        frecords.extend(feed(&mut server, &traffic, freport.last_committed..n));
        frecords.extend(server.close_all().unwrap_or_else(|e| fail(&e.to_string())));
        if frecords.len() != ref_records.len() {
            fail(&format!(
                "faulted leg: record counts diverge: {} vs {}",
                frecords.len(),
                ref_records.len()
            ));
        }
        for (a, b) in ref_records.iter().zip(&frecords) {
            if key(a) != key(b) {
                fail("faulted leg: finished history diverges from the uninterrupted run");
            }
        }
        println!(
            "recover_smoke: OK — injected journal ENOSPC at batch {fail_batch}/{n} \
             (seed {seed:#x}), recovery matched the acked prefix and finished bitwise"
        );
        proved = true;
        break;
    }
    if !proved {
        fail("faulted-journal leg: no seed landed a mid-stream journal fault");
    }
    std::fs::remove_dir_all(&base).ok();
}
