//! Traced serving smoke for CI: one healthy (clean-traffic) and one
//! fault-injected load-generator run through the resident `SessionServer`,
//! then validation of the emitted telemetry from the outside — the trace
//! JSONL via the snapshot reader, the `serve.*` series via the metrics
//! sidecar.
//!
//! Exit codes: 0 = runs completed and telemetry is valid; 1 = validation
//! failed; 2 = tracing is disabled (`TPGNN_TRACE` unset) — the run is
//! meaningless.
//!
//! `scripts/ci.sh` runs this as `TPGNN_TRACE=1 cargo run --bin serve_smoke`
//! next to `obs_smoke` and `chaos_smoke`, and additionally asserts the
//! trace file is non-empty JSONL.

use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_data::chaos::FaultPlan;
use tpgnn_obs::{reader, trace};
use tpgnn_serve::loadgen::{run, LoadPlan};
use tpgnn_serve::ScoreKind;

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    if !trace::init("serve-smoke") {
        eprintln!("serve_smoke: TPGNN_TRACE is not set; nothing to validate (exit 2)");
        std::process::exit(2);
    }

    let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));

    // Healthy run: clean traffic, every session scores exactly once and
    // nothing is quarantined.
    let clean_plan = LoadPlan {
        sessions: 8,
        seed: 5,
        fault: FaultPlan::clean(),
        batch_size: 32,
        ..LoadPlan::default()
    };
    let healthy = run(&model, &clean_plan).unwrap_or_else(|e| fail(&e.to_string()));
    if healthy.stats.final_scores != clean_plan.sessions {
        fail("healthy run lost sessions");
    }
    for r in &healthy.records {
        let stats = r.stats.as_ref().unwrap_or_else(|| fail("final record without stats"));
        if stats.quarantined != 0 {
            fail("clean traffic was quarantined");
        }
        if !(0.0..=1.0).contains(&r.proba) {
            fail("score escaped [0, 1]");
        }
    }

    // Faulted run: mixed chaos traffic with a finite lateness horizon (the
    // delay component) so early warnings fire mid-session. Zero panics,
    // exact per-session accounting.
    let fault = FaultPlan { delay_rate: 0.1, delay_margin: 3.0, ..FaultPlan::mixed(0.25) };
    let dirty_plan = LoadPlan {
        sessions: 8,
        seed: 6,
        fault,
        batch_size: 32,
        early_warning_every: 6,
        ..LoadPlan::default()
    };
    let dirty = run(&model, &dirty_plan).unwrap_or_else(|e| fail(&e.to_string()));
    if dirty.stats.final_scores != dirty_plan.sessions {
        fail("faulted run lost sessions");
    }
    if dirty.stats.early_scores == 0 {
        fail("faulted run produced no early warnings");
    }
    let mut quarantined = 0;
    for r in dirty.records.iter().filter(|r| r.kind == ScoreKind::Final) {
        let stats = r.stats.as_ref().unwrap_or_else(|| fail("final record without stats"));
        if stats.received != stats.released + stats.quarantined {
            fail("per-session ingestion accounting leaked events");
        }
        quarantined += stats.quarantined;
    }
    if quarantined < dirty.ledger.duplicated + dirty.ledger.corrupted {
        fail("quarantine undercounts the injected duplicate/corrupt faults");
    }

    let path = trace::finish().unwrap_or_else(|| fail("trace::finish returned no path"));

    // Validate the trace from the outside, exactly as CI does.
    let records = reader::read_trace(&path)
        .unwrap_or_else(|e| fail(&format!("trace does not parse: {e}")));
    let request_spans: Vec<_> = records
        .iter()
        .filter(|r| r.kind == "span" && r.name == "serve.request")
        .collect();
    let expected_requests = healthy.latencies_us.len() + dirty.latencies_us.len();
    if request_spans.len() < expected_requests {
        fail(&format!(
            "expected at least {expected_requests} serve.request spans, found {}",
            request_spans.len()
        ));
    }
    if !request_spans
        .iter()
        .any(|s| s.field("events").is_some() && s.field("resident").is_some())
    {
        fail("serve.request spans carry no events/resident fields");
    }

    // The metrics sidecar must carry the serving series.
    let metrics_path = path.with_file_name("metrics-serve-smoke.json");
    let metrics = std::fs::read_to_string(&metrics_path)
        .unwrap_or_else(|e| fail(&format!("metrics sidecar unreadable: {e}")));
    for series in [
        "serve.requests",
        "serve.events",
        "serve.advanced",
        "serve.closed",
        "serve.sessions_resident",
        "serve.request_us",
    ] {
        if !metrics.contains(series) {
            fail(&format!("metrics sidecar is missing the {series} series"));
        }
    }

    println!(
        "serve_smoke: OK — {} serve.request spans, {} early + {} final scores, \
         {quarantined} quarantined, trace in {}",
        request_spans.len(),
        dirty.stats.early_scores,
        healthy.stats.final_scores + dirty.stats.final_scores,
        path.display()
    );
}
