//! Storage-chaos smoke for CI: drives every durability path in the repo —
//! checkpoint atomic writes, dataset save/load, telemetry snapshot ticks,
//! raw vfs append/sync/rename traffic, and the serving journal — under a
//! matrix of seeded [`FaultVfs`] schedules covering every injector kind
//! (short writes, ENOSPC, fsync failure, rename failure, transient errors,
//! read-back bit corruption), and asserts that
//!
//! 1. nothing panics,
//! 2. there is no silent corruption: every artifact is either readable and
//!    bitwise-correct, or fails with a typed error, or (for artifacts with
//!    no checksum of their own) any bitwise drift is attributable to an
//!    injected `Corrupt` fault in the schedule's exact ledger,
//! 3. the injector's [`IoFaultLedger`] reconciles exactly with the
//!    `io.fault.*` observability counters for every schedule,
//! 4. telemetry degrades to notes — a faulted snapshot tick never kills
//!    the writer, it serves the previous exposition file and retries, and
//! 5. a server whose journal write fails mid-frame was never acked for
//!    that batch: recovery reproduces the acked history bitwise and the
//!    stream finishes identically at pool widths 1 and 4.
//!
//! Exit codes: 0 = all schedules pass; 1 = any reconciliation or
//! durability check failed. `--smoke` shrinks the serve legs for CI
//! (`scripts/ci.sh` runs this next to `chaos_smoke` / `recover_smoke`).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tpgnn_data::chaos::FaultPlan as StreamFaultPlan;
use tpgnn_data::{io as dataio, DatasetKind, GraphDataset};
use tpgnn_obs::metrics::DeltaCursor;
use tpgnn_obs::snapshot::SnapshotWriter;
use tpgnn_obs::vfs::{
    self, FaultPlan, FaultVfs, IoFaultKind, IoFaultLedger, RetryVfs, StdVfs, Vfs,
};
use tpgnn_par::with_thread_override;
use tpgnn_serve::loadgen::{generate, LoadPlan};
use tpgnn_serve::{ScoreRecord, ServeError, SessionServer};
use tpgnn_tensor::ckpt;

fn fail(schedule: &str, msg: &str) -> ! {
    eprintln!("storage_chaos: FAIL [{schedule}]: {msg}");
    std::process::exit(1);
}

/// Build the canonical chaos stack: retry/backoff over a seeded injector
/// over the real filesystem. The returned [`FaultVfs`] clone shares the
/// injector's ledger, so the exact fault history stays readable after the
/// stack is type-erased.
fn stack(plan: FaultPlan) -> (Arc<dyn Vfs>, FaultVfs) {
    let injector = FaultVfs::new(Arc::new(StdVfs), plan);
    let stacked: Arc<dyn Vfs> = Arc::new(RetryVfs::new(Arc::new(injector.clone())));
    (stacked, injector)
}

/// The workload schedule matrix: every injector kind alone, then mixed.
fn schedules() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("short-write", FaultPlan::new(0xA001).with(IoFaultKind::ShortWrite, 0.25)),
        ("no-space", FaultPlan::new(0xA002).with(IoFaultKind::NoSpace, 0.25)),
        ("sync-failed", FaultPlan::new(0xA003).with(IoFaultKind::SyncFailed, 0.25)),
        ("rename-failed", FaultPlan::new(0xA004).with(IoFaultKind::RenameFailed, 0.25)),
        ("transient", FaultPlan::new(0xA005).with(IoFaultKind::Transient, 0.30)),
        ("corrupt", FaultPlan::new(0xA006).with(IoFaultKind::Corrupt, 0.30)),
        ("mixed", FaultPlan::uniform(0xA007, 0.12)),
        ("mixed-capped", FaultPlan::uniform(0xA008, 0.20).cap(24)),
    ]
}

/// Exact ledger ↔ counter reconciliation for one schedule: the window's
/// `io.fault.<kind>` deltas must equal the injector's ledger, kind by kind.
/// (Every injected error is observed exactly once by the retry layer;
/// corruption is counted at injection since it never surfaces as an error.)
fn reconcile(name: &str, cursor: &mut DeltaCursor, ledger: &IoFaultLedger) {
    let snap = cursor.take();
    for kind in IoFaultKind::ALL {
        let counted = snap.counter_delta(kind.counter_name());
        let injected = ledger.count(kind);
        if counted != injected {
            fail(
                name,
                &format!(
                    "{} counter saw {counted}, injector ledger says {injected} ({})",
                    kind.counter_name(),
                    ledger.render()
                ),
            );
        }
    }
}

/// Checkpoint leg: repeated atomic replaces of one file under fault. The
/// final path must always hold the last successfully acked body, bitwise —
/// a failed replace may damage only the temp sibling.
fn ckpt_leg(name: &str, v: &dyn Vfs, dir: &Path) -> (u64, u64) {
    let path = dir.join("model.ckpt");
    let (mut acked, mut failed) = (0u64, 0u64);
    let mut committed: Option<String> = None;
    for i in 0..8u32 {
        let body = format!("storage-chaos checkpoint generation {i}\npayload {}\n", i * 31 + 7);
        match ckpt::write_atomic_with(v, &path, &body) {
            Ok(()) => {
                committed = Some(body);
                acked += 1;
            }
            Err(_) => failed += 1, // typed — never a panic, never a half-file
        }
        // Read back through the faulted stack: either the exact committed
        // text, or a typed failure (the checksum trailer turns injected
        // bit-flips into errors — corruption is never silent here).
        // Err is fine here: a typed injected read fault, or nothing
        // written yet.
        if let Ok(text) = ckpt::read_atomic_with(v, &path) {
            match &committed {
                Some(want) if &text == want => {}
                Some(_) => fail(name, "checkpoint read back a body that was never acked"),
                None => fail(name, "checkpoint readable before any write was acked"),
            }
        }
        // Ground truth via the real filesystem: a failed replace must not
        // leave a torn body at the final path.
        if let Some(want) = &committed {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(name, &format!("final ckpt path unreadable: {e}")));
            let got = ckpt::verify_checksum_trailer(&raw)
                .unwrap_or_else(|e| fail(name, &format!("final ckpt path corrupt on disk: {e}")));
            if got != want {
                fail(name, "final ckpt path holds a body that was never acked");
            }
        }
    }
    (acked, failed)
}

/// Dataset-io leg: save/load a small corpus through the globally installed
/// faulted vfs. The format has no checksum, so bitwise drift on a
/// successful load is only acceptable when the schedule actually injected
/// read corruption.
fn dataset_leg(name: &str, dir: &Path, ds: &GraphDataset, injector: &FaultVfs) -> (u64, u64) {
    let truth = dataio::to_string(ds);
    let path = dir.join("dataset.txt");
    let (mut acked, mut failed) = (0u64, 0u64);
    for _ in 0..4 {
        match dataio::save(ds, &path) {
            Ok(()) => acked += 1,
            Err(_) => {
                failed += 1;
                continue;
            }
        }
        match dataio::load(&path) {
            Ok(back) => {
                if dataio::to_string(&back) != truth
                    && injector.ledger().count(IoFaultKind::Corrupt) == 0
                {
                    fail(name, "dataset drifted bitwise with no corruption injected");
                }
            }
            Err(_) => failed += 1, // typed: short/failed write left a torn file
        }
    }
    (acked, failed)
}

/// Telemetry leg: snapshot ticks under fault must never panic and must
/// keep the previous exposition file when a replace fails (stale, counted,
/// retried — degraded to a note, not an outage).
fn telemetry_leg(name: &str, dir: &Path, v: &Arc<dyn Vfs>) {
    let mut sw = SnapshotWriter::with_vfs("storage-chaos", dir.join("telemetry"), Arc::clone(v));
    for _ in 0..6 {
        let _ = sw.tick();
    }
    // The exposition file, if it ever materialized, must be whole text —
    // a faulted replace leaves the previous version, never a torn one.
    if let Ok(text) = std::fs::read_to_string(sw.expo_path()) {
        if !text.is_empty() && !text.lines().any(|l| l.starts_with('#') || l.contains(' ')) {
            fail(name, "exposition file is torn");
        }
    }
}

/// Raw vfs leg: append/sync/rename/list/remove traffic with ground-truth
/// verification through the real filesystem.
fn raw_leg(name: &str, v: &dyn Vfs, dir: &Path, injector: &FaultVfs) {
    let log = dir.join("raw.log");
    let mut expected = Vec::new();
    match v.open_append(&log) {
        Err(_) => {} // typed refusal to open — nothing to verify
        Ok(mut f) => {
            for i in 0..6u32 {
                let chunk = format!("chunk {i} {}\n", i * 17 + 3);
                match f.append(chunk.as_bytes()) {
                    Ok(()) => expected.extend_from_slice(chunk.as_bytes()),
                    Err(e) if e.fault() == Some(IoFaultKind::ShortWrite) => {
                        // A short write landed an unknown prefix; the file
                        // is torn past `expected` — stop treating it as
                        // exactly predictable.
                        expected.clear();
                        break;
                    }
                    Err(_) => {} // nothing landed
                }
                let _ = f.sync(); // sync faults are typed, durability is best-effort here
            }
        }
    }
    if !expected.is_empty() {
        let raw = std::fs::read(&log).unwrap_or_default();
        if raw != expected && injector.ledger().count(IoFaultKind::ShortWrite) == 0 {
            fail(name, "append-only log drifted from acked writes");
        }
    }
    // Rename either moves the file whole or leaves the source untouched.
    let dst = dir.join("raw.renamed");
    let before = std::fs::read(&log).ok();
    match v.rename(&log, &dst) {
        Ok(()) => {
            if log.exists() || (before.is_some() && std::fs::read(&dst).ok() != before) {
                fail(name, "rename tore the file");
            }
        }
        Err(_) => {
            if std::fs::read(&log).ok() != before {
                fail(name, "failed rename modified the source");
            }
        }
    }
    // List and remove: typed errors allowed, lies are not.
    if let Ok(names) = v.list(dir) {
        for n in ["model.ckpt", "dataset.txt"] {
            if dir.join(n).exists() && !names.iter().any(|x| x == n) {
                fail(name, &format!("list omitted existing file {n}"));
            }
        }
    }
    let victim = dir.join("raw.renamed");
    if victim.exists() {
        // A typed remove error is fine; an acked one that lies is not.
        if v.remove(&victim).is_ok() && victim.exists() {
            fail(name, "remove acked but the file survived");
        }
    }
}

/// One full workload schedule: install the stack globally (dataset io and
/// trace writers route through the global slot), run every leg, restore,
/// then reconcile the ledger against the counters.
fn run_workload(
    name: &str,
    plan: FaultPlan,
    base: &Path,
    ds: &GraphDataset,
    cursor: &mut DeltaCursor,
) -> IoFaultLedger {
    let dir = base.join(name);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(name, &e.to_string()));
    let (v, injector) = stack(plan);
    let previous = vfs::install(Arc::clone(&v));
    let (ck_ack, ck_fail) = ckpt_leg(name, &*v, &dir);
    let (ds_ack, ds_fail) = dataset_leg(name, &dir, ds, &injector);
    telemetry_leg(name, &dir, &v);
    raw_leg(name, &*v, &dir, &injector);
    vfs::install(previous);
    let ledger = injector.ledger();
    reconcile(name, cursor, &ledger);
    println!(
        "storage_chaos: [{name:<13}] ok — {:>3} faults over {:>4} ops ({}); \
         ckpt {ck_ack}+/{ck_fail}-, dataset {ds_ack}+/{ds_fail}-",
        ledger.total(),
        ledger.ops,
        ledger.render(),
    );
    ledger
}

// ---------------------------------------------------------------------------
// Serve kill/recover legs
// ---------------------------------------------------------------------------

fn serve_plan(smoke: bool, spill: PathBuf, journal: PathBuf) -> LoadPlan {
    LoadPlan {
        sessions: if smoke { 40 } else { 80 },
        seed: 20260808,
        fault: StreamFaultPlan::mixed(0.15),
        batch_size: 32,
        session_spacing: 2.0,
        session_gap: 30.0,
        early_warning_every: 4,
        num_shards: 8,
        max_resident_sessions: 14,
        max_buffered_edges: 0,
        spill_dir: Some(spill),
        journal_dir: Some(journal),
        snapshot_every: 3,
    }
}

/// Bit-exact comparison key (float equality would misjudge NaN payloads).
fn key(r: &ScoreRecord) -> String {
    let q = r.quarantine.as_ref().map(|q| q.render());
    format!(
        "{} {:?} {:08x} {} {:016x} {:?} {:?}",
        r.session,
        r.kind,
        r.proba.to_bits(),
        r.edges,
        r.trace,
        r.stats,
        q
    )
}

struct ServeLeg {
    fail_batch: usize,
    history: Vec<String>,
    ledger: IoFaultLedger,
}

/// Serve a seeded stream against a journal-scoped injector until the first
/// journal write fault kills a batch; "crash" (drop the server — a failed
/// commit leaves in-memory state untrusted by contract), recover on a
/// clean vfs, check the acked prefix came back bitwise, and finish the
/// stream. The ledger is returned even when the leg is unusable (the
/// schedule fired before any commit, or never) — those injections still
/// hit the counters and reconciliation must account for them.
fn serve_leg(
    name: &str,
    smoke: bool,
    base: &Path,
    kind: IoFaultKind,
    seed: u64,
    threads: usize,
) -> (IoFaultLedger, Option<ServeLeg>) {
    let spill = base.join(format!("{name}-spill"));
    let journal = base.join(format!("{name}-journal"));
    std::fs::create_dir_all(&spill).unwrap_or_else(|e| fail(name, &e.to_string()));
    std::fs::create_dir_all(&journal).unwrap_or_else(|e| fail(name, &e.to_string()));
    let p = serve_plan(smoke, spill.clone(), journal.clone());
    let traffic = generate(&p);
    let model = tpgnn_core::TpGnn::new(tpgnn_core::TpGnnConfig::gru(3).with_seed(19));

    let io_plan = FaultPlan::new(seed)
        .with(kind, 0.05)
        .only_files(&["shard-", "commit.log"])
        .cap(1);
    let (v, injector) = stack(io_plan);
    let mut fcfg = p.serve_config();
    fcfg.vfs = Some(v);

    let out = with_thread_override(threads, || {
        let mut acked: Vec<String> = Vec::new();
        let fail_batch;
        {
            let mut server = SessionServer::new(&model, fcfg.clone())
                .unwrap_or_else(|e| fail(name, &e.to_string()));
            for (sid, f) in &traffic.features {
                server.register(*sid, f.clone());
            }
            let mut failed_at = None;
            for (i, b) in traffic.batches.iter().enumerate() {
                match server.ingest(b) {
                    Ok(records) => acked.extend(records.iter().map(key)),
                    Err(ServeError::Io(_)) => {
                        failed_at = Some(i + 1);
                        break;
                    }
                    Err(e) => fail(name, &format!("wanted a typed Io error, got {e}")),
                }
            }
            fail_batch = failed_at?;
            // Crash: drop with the failed batch unacked and possibly torn
            // frames on disk.
        }
        if fail_batch < 2 {
            return None; // fault fired before any commit — caller tries the next seed
        }

        // Recover on a clean vfs, exactly as a restarted process would.
        let (mut server, report) = SessionServer::recover(&model, p.serve_config())
            .unwrap_or_else(|e| fail(name, &format!("recover refused: {e}")));
        if report.last_committed != fail_batch - 1 {
            fail(
                name,
                &format!(
                    "failed batch {fail_batch} leaked into the horizon {}",
                    report.last_committed
                ),
            );
        }
        // The acked prefix must come back bitwise — the committed history
        // is exactly what the caller was shown, torn frames and all.
        let replayed: Vec<String> =
            report.delivered.iter().flat_map(|b| b.records.iter().map(key)).collect();
        if replayed != acked {
            fail(name, "recovered history diverges from what was acked before the fault");
        }
        let mut history = acked;
        for b in &traffic.batches[report.last_committed..] {
            history.extend(
                server
                    .ingest(b)
                    .unwrap_or_else(|e| fail(name, &format!("post-recovery ingest: {e}")))
                    .iter()
                    .map(key),
            );
        }
        history.extend(
            server
                .close_all()
                .unwrap_or_else(|e| fail(name, &format!("close_all: {e}")))
                .iter()
                .map(key),
        );
        Some((fail_batch, history))
    });

    std::fs::remove_dir_all(&spill).ok();
    std::fs::remove_dir_all(&journal).ok();
    let ledger = injector.ledger();
    let leg =
        out.map(|(fail_batch, history)| ServeLeg { fail_batch, history, ledger: ledger.clone() });
    (ledger, leg)
}

fn main() {
    let _trace = tpgnn_bench::init_trace("storage-chaos");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base =
        std::env::temp_dir().join(format!("tpgnn-storage-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();

    let ds = DatasetKind::ForumJava.generate(if smoke { 6 } else { 16 }, 42);
    let mut cursor = DeltaCursor::new();
    cursor.take(); // drain startup noise so every window is schedule-exact

    let mut legs = 0usize;
    let mut injected = 0u64;

    // Workload schedules: every injector kind alone, then mixed.
    for (name, plan) in schedules() {
        let ledger = run_workload(name, plan, &base, &ds, &mut cursor);
        if name != "mixed-capped" && ledger.total() == 0 {
            fail(name, "schedule injected nothing — the leg proves nothing");
        }
        injected += ledger.total();
        legs += 1;
    }

    // Serve kill/recover legs: a journal write fault mid-stream, at pool
    // widths 1 and 4. The injector schedule is width-invariant (only
    // journal files consume slots, and journal writes are coordinator-
    // sequential), so both widths must fail at the same batch, inject the
    // same faults, and finish with bitwise-identical histories.
    let mut serve_expected = [0u64; 6];
    for kind in [IoFaultKind::NoSpace, IoFaultKind::ShortWrite] {
        let mut done = false;
        for seed in [0x5151u64, 0x9b02, 0xc0de, 0x1eaf, 0x7e57, 0xfade] {
            let name1 = format!("serve-{}-w1", kind.label());
            let (ledger1, leg1) = serve_leg(&name1, smoke, &base, kind, seed, 1);
            for (i, n) in ledger1.injected.iter().enumerate() {
                serve_expected[i] += n;
            }
            let Some(a) = leg1 else {
                continue; // fired before any commit, or never — next seed
            };
            let name4 = format!("serve-{}-w4", kind.label());
            let (ledger4, leg4) = serve_leg(&name4, smoke, &base, kind, seed, 4);
            for (i, n) in ledger4.injected.iter().enumerate() {
                serve_expected[i] += n;
            }
            let b = leg4
                .unwrap_or_else(|| fail(&name4, "schedule fired at width 1 but not width 4"));
            if a.fail_batch != b.fail_batch {
                fail(
                    &name4,
                    &format!(
                        "fault batch differs across widths: {} vs {}",
                        a.fail_batch, b.fail_batch
                    ),
                );
            }
            if a.ledger != b.ledger {
                fail(
                    &name4,
                    &format!(
                        "ledgers differ across widths: {} vs {}",
                        a.ledger.render(),
                        b.ledger.render()
                    ),
                );
            }
            if a.history != b.history {
                fail(&name4, "recovered histories diverge across pool widths");
            }
            for (w, leg) in [(1, &a), (4, &b)] {
                println!(
                    "storage_chaos: [serve-{:<9}] ok — width {w}: journal {} at batch {}, \
                     recovered + finished {} records bitwise",
                    kind.label(),
                    kind.label(),
                    leg.fail_batch,
                    leg.history.len(),
                );
                legs += 1;
                injected += leg.ledger.total();
            }
            done = true;
            break;
        }
        if !done {
            fail(&format!("serve-{}", kind.label()), "no seed landed a mid-stream journal fault");
        }
    }
    // One reconciliation window over the whole serve section: every fault
    // any probe injected (usable leg or not) must appear in the counters,
    // and nothing else may.
    let snap = cursor.take();
    for kind in IoFaultKind::ALL {
        let counted = snap.counter_delta(kind.counter_name());
        let want = serve_expected[IoFaultKind::ALL.iter().position(|k| *k == kind).unwrap()];
        if counted != want {
            fail(
                "serve-reconcile",
                &format!("{} counter saw {counted}, ledgers say {want}", kind.counter_name()),
            );
        }
    }

    std::fs::remove_dir_all(&base).ok();
    println!(
        "storage_chaos: OK — {legs} schedules, {injected} faults injected, \
         zero panics, every ledger reconciled"
    );
}
