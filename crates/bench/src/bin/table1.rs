//! Regenerates **Table I**: key statistics of the five datasets.
//!
//! Prints the simulated datasets' statistics side-by-side with the paper's
//! reported numbers. Graph counts are deliberately scaled down (see
//! DESIGN.md §2); the structural statistics (negative ratio, avg nodes /
//! edges, feature count) are the reproduction targets.

use tpgnn_eval::ExperimentConfig;

fn main() {
    let _trace = tpgnn_bench::init_trace("table1");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Table I: Key statistics of datasets", &cfg);

    println!(
        "{:<12} {:>10} {:>10} {:>11} {:>11} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "Dataset",
        "Graphs",
        "(paper)",
        "Neg ratio",
        "(paper)",
        "AvgNode",
        "(paper)",
        "AvgEdge",
        "(paper)",
        "#Feat"
    );
    println!("{}", "-".repeat(110));
    for kind in tpgnn_bench::selected_datasets() {
        let mut ds = kind.generate(cfg.num_graphs, cfg.base_seed);
        let stats = ds.stats();
        let (paper_n, paper_m) = kind.paper_avg_size();
        println!(
            "{:<12} {:>10} {:>10} {:>10.1}% {:>10.1}% {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7}",
            stats.name,
            stats.graph_number,
            kind.paper_graph_count(),
            stats.negative_ratio * 100.0,
            kind.negative_ratio() * 100.0,
            stats.avg_nodes,
            paper_n,
            stats.avg_edges,
            paper_m,
            stats.node_features,
        );
    }
    println!();
    println!("(graph counts are a deliberate scale-down; see DESIGN.md §2 and EXPERIMENTS.md)");
}
