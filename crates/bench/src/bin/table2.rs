//! Regenerates **Table II**: F₁ / Precision / Recall of the twelve baselines
//! and TP-GNN-GRU / TP-GNN-SUM on the five datasets, mean±std over runs.
//!
//! Expected shape (the reproduction target, not absolute numbers):
//! TP-GNN variants on top; continuous DGNNs > discrete DGNNs > static
//! models; Spectral Clustering worst.

use tpgnn_baselines::zoo::TABLE2_MODELS;
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

fn main() {
    let _trace = tpgnn_bench::init_trace("table2");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Table II: dynamic graph classification", &cfg);

    let models = tpgnn_bench::selected_models(&TABLE2_MODELS);
    let datasets = tpgnn_bench::selected_datasets();
    // The whole table is one flat (dataset × model × run) fan-out over the
    // worker pool; results come back in spec order, so each dataset's block
    // is a contiguous slice.
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| models.iter().map(move |model| CellSpec::zoo(*model, kind)))
        .collect();
    eprintln!("[table2] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    for (di, kind) in datasets.iter().enumerate() {
        let cells = &results[di * models.len()..(di + 1) * models.len()];
        println!("{}", tpgnn_eval::table::render_metric_table(kind.name(), cells));
        // Paper's headline: average F1 improvement of TP-GNN over the best
        // continuous baseline.
        let best_tp = cells
            .iter()
            .filter(|c| c.model.starts_with("TP-GNN"))
            .map(|c| c.f1.mean)
            .fold(0.0, f64::max);
        let best_baseline = cells
            .iter()
            .filter(|c| !c.model.starts_with("TP-GNN"))
            .map(|c| c.f1.mean)
            .fold(0.0, f64::max);
        if best_baseline > 0.0 {
            println!(
                "best TP-GNN F1 = {:.2}%, best baseline F1 = {:.2}%, improvement = {:+.2} pts\n",
                best_tp * 100.0,
                best_baseline * 100.0,
                (best_tp - best_baseline) * 100.0
            );
        }
    }
}
