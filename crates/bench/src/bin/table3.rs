//! Regenerates **Table III**: average F₁ of continuous DGNNs augmented with
//! TP-GNN's global temporal embedding extractor (`+G` variants) vs the full
//! TP-GNN, on the four figure datasets.
//!
//! Expected shape: every `+G` variant improves over its Table II base model,
//! and TP-GNN (with temporal propagation) still leads — isolating temporal
//! propagation's contribution.

use tpgnn_baselines::zoo::TABLE3_MODELS;
use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

fn main() {
    let _trace = tpgnn_bench::init_trace("table3");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Table III: extractor-augmented baselines (F1 %)", &cfg);

    let models = tpgnn_bench::selected_models(&TABLE3_MODELS);
    let datasets = tpgnn_bench::figure_datasets();

    // One flat (model × dataset × run) fan-out; results in spec order.
    let specs: Vec<CellSpec> = models
        .iter()
        .flat_map(|model| datasets.iter().map(move |&kind| CellSpec::zoo(*model, kind)))
        .collect();
    eprintln!("[table3] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);

    print!("{:<16}", "Model");
    for kind in &datasets {
        print!("{:>14}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(16 + 14 * datasets.len()));
    for (mi, model) in models.iter().enumerate() {
        print!("{model:<16}");
        for cell in &results[mi * datasets.len()..(mi + 1) * datasets.len()] {
            print!("{:>14}", format!("{:.2}", cell.f1.mean * 100.0));
        }
        println!();
    }
}
