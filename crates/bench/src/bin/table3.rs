//! Regenerates **Table III**: average F₁ of continuous DGNNs augmented with
//! TP-GNN's global temporal embedding extractor (`+G` variants) vs the full
//! TP-GNN, on the four figure datasets.
//!
//! Expected shape: every `+G` variant improves over its Table II base model,
//! and TP-GNN (with temporal propagation) still leads — isolating temporal
//! propagation's contribution.

use tpgnn_baselines::zoo::TABLE3_MODELS;
use tpgnn_eval::{run_cell, ExperimentConfig};

fn main() {
    let _trace = tpgnn_bench::init_trace("table3");
    let cfg = ExperimentConfig::default();
    tpgnn_bench::banner("Table III: extractor-augmented baselines (F1 %)", &cfg);

    let models = tpgnn_bench::selected_models(&TABLE3_MODELS);
    let datasets = tpgnn_bench::figure_datasets();

    print!("{:<16}", "Model");
    for kind in &datasets {
        print!("{:>14}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(16 + 14 * datasets.len()));
    for model in &models {
        print!("{model:<16}");
        for kind in &datasets {
            eprintln!("[table3] {} / {model} …", kind.name());
            let cell = run_cell(model, *kind, &cfg);
            print!("{:>14}", format!("{:.2}", cell.f1.mean * 100.0));
        }
        println!();
    }
}
