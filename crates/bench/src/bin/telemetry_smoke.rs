//! Live-telemetry smoke for CI: a traced serve run under seeded load with
//! a fast snapshot ticker, validated from the outside while and after it
//! runs, plus a child-abort leg proving the metrics artifacts survive a
//! mid-serve crash (the ticker refreshes them every tick, so an end-of-run
//! flush is never the only copy).
//!
//! Checks:
//! 1. `live-<run>.jsonl` gains parseable snapshot ticks **while the server
//!    is still serving** (read mid-run, before `close_all`), ≥ 2 ticks by
//!    the end, and the Prometheus-style exposition file parses.
//! 2. SLO burn-rate gauges appear in the snapshots (SLO config is on).
//! 3. `obs_report`'s library reconstructs a known session's timeline from
//!    the journal + trace purely on trace ids, and every score record's
//!    trace id equals `trace_id(session, batch)` re-derived offline.
//! 4. A hard-aborted child (`std::process::abort` mid-stream) still leaves
//!    a readable metrics sidecar and live snapshots on disk.
//!
//! Exit codes: 0 = all checks pass; 1 = validation failure; 2 = tracing
//! disabled (`TPGNN_TRACE` unset) — the run is meaningless.

use std::path::PathBuf;
use std::time::Duration;

use tpgnn_bench::report;
use tpgnn_core::{TpGnn, TpGnnConfig};
use tpgnn_data::chaos::FaultPlan;
use tpgnn_obs::{reader, trace};
use tpgnn_serve::loadgen::{generate, LoadPlan};
use tpgnn_serve::{slo, SessionServer, TelemetryConfig};

const CHILD_ENV: &str = "TPGNN_TELEMETRY_SMOKE_CHILD";
const DIR_ENV: &str = "TPGNN_TELEMETRY_SMOKE_DIR";
const RUN: &str = "telemetry-smoke";

fn fail(msg: &str) -> ! {
    eprintln!("telemetry_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn model() -> TpGnn {
    TpGnn::new(TpGnnConfig::sum(3).with_seed(23))
}

fn plan(base: &std::path::Path) -> LoadPlan {
    LoadPlan {
        sessions: 32,
        seed: 2608,
        fault: FaultPlan::mixed(0.1),
        batch_size: 24,
        session_spacing: 2.0,
        session_gap: 25.0,
        early_warning_every: 4,
        num_shards: 4,
        max_resident_sessions: 12,
        max_buffered_edges: 0,
        spill_dir: Some(base.join("spill")),
        journal_dir: Some(base.join("journal")),
        snapshot_every: 4,
    }
}

fn serve_config(base: &std::path::Path, tick_ms: u64) -> tpgnn_serve::ServeConfig {
    let mut cfg = plan(base).serve_config();
    cfg.slo = Some(slo::SloConfig::default());
    cfg.telemetry =
        Some(TelemetryConfig { dir: base.to_path_buf(), run: RUN.into(), tick_ms });
    cfg
}

/// Child role: start tracing + telemetry into the given directory, serve a
/// few batches so metrics accumulate, give the ticker time to publish,
/// then die with no destructors and no flush.
fn child() -> ! {
    let base = PathBuf::from(std::env::var(DIR_ENV).unwrap());
    trace::init_to(RUN, base.join(format!("trace-{RUN}.jsonl")));
    let p = plan(&base);
    let traffic = generate(&p);
    let m = model();
    let mut server = SessionServer::new(&m, serve_config(&base, 5))
        .unwrap_or_else(|e| fail(&e.to_string()));
    for (sid, f) in &traffic.features {
        server.register(*sid, f.clone());
    }
    for b in traffic.batches.iter().take(traffic.batches.len() / 2) {
        server.ingest(b).unwrap_or_else(|e| fail(&e.to_string()));
    }
    // Let the 5ms ticker publish at least once after the serving work.
    std::thread::sleep(Duration::from_millis(120));
    std::process::abort(); // no Drop, no finish(), no final tick
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        child();
    }
    if std::env::var("TPGNN_TRACE").map(|v| v.is_empty()).unwrap_or(true) {
        eprintln!("telemetry_smoke: TPGNN_TRACE is not set; nothing to validate (exit 2)");
        std::process::exit(2);
    }

    let base =
        std::env::temp_dir().join(format!("tpgnn-telemetry-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    let trace_path = base.join(format!("trace-{RUN}.jsonl"));
    trace::init_to(RUN, &trace_path);

    // Traced serve under load with a fast ticker and SLOs on.
    let p = plan(&base);
    let traffic = generate(&p);
    let m = model();
    let mut server = SessionServer::new(&m, serve_config(&base, 5))
        .unwrap_or_else(|e| fail(&e.to_string()));
    for (sid, f) in &traffic.features {
        server.register(*sid, f.clone());
    }
    let mut records = Vec::new();
    for b in &traffic.batches {
        records.extend(server.ingest(b).unwrap_or_else(|e| fail(&e.to_string())));
        std::thread::sleep(Duration::from_millis(2));
    }

    // Mid-run visibility: the live series and exposition must already be
    // readable while the server still holds open sessions.
    let live_path = base.join(format!("live-{RUN}.jsonl"));
    std::thread::sleep(Duration::from_millis(60));
    let mid = report::read_live(&live_path)
        .unwrap_or_else(|e| fail(&format!("mid-run live read: {e}")));
    if mid.ticks == 0 {
        fail("no live snapshot ticks while the server was still running");
    }
    if server.resident() + server.spilled() == 0 {
        fail("server already drained — the mid-run check proved nothing");
    }

    records.extend(server.close_all().unwrap_or_else(|e| fail(&e.to_string())));
    let stats = *server.stats();
    let slo_summary = slo::summary(&stats, &slo::SloConfig::default());
    drop(server); // Ticker Drop: final tick + join

    let live = report::read_live(&live_path)
        .unwrap_or_else(|e| fail(&format!("final live read: {e}")));
    if live.ticks < 2 {
        fail(&format!("want >= 2 snapshot ticks, got {}", live.ticks));
    }
    if live.ticks < mid.ticks {
        fail("live series shrank between mid-run and final reads");
    }
    let last = live.last.as_ref().unwrap_or_else(|| fail("no last snapshot"));
    for series in ["serve.requests", "serve.events"] {
        if last.get("counters").and_then(|c| c.get(series)).is_none() {
            fail(&format!("last snapshot is missing the {series} counter"));
        }
    }
    if last.get("gauges").and_then(|g| g.get("slo.latency.burn_long")).is_none() {
        fail("SLO burn gauges never reached the snapshots");
    }

    // Exposition file: atomically-replaced Prometheus text format.
    let expo = std::fs::read_to_string(base.join(format!("metrics-{RUN}.prom")))
        .unwrap_or_else(|e| fail(&format!("exposition unreadable: {e}")));
    if !expo.contains("# TYPE") || !expo.contains("serve_request_us_bucket{le=") {
        fail(&format!("exposition missing TYPE lines or histogram buckets:\n{expo}"));
    }

    // Trace-id correlation, re-derived offline: every delivered record's id
    // must equal trace_id(session, batch) for some journaled batch, and a
    // known session's timeline must reconstruct purely from the ids.
    trace::finish();
    let lossy = reader::read_trace_lossy(&trace_path)
        .unwrap_or_else(|e| fail(&format!("trace: {e}")));
    let data = report::load_journal(&base.join("journal"))
        .unwrap_or_else(|e| fail(&format!("journal: {e}")));
    let batches = data.commits.len();
    for r in &records {
        let ok = (1..=batches).any(|b| tpgnn_serve::trace_id(r.session, b) == r.trace);
        if !ok {
            fail(&format!(
                "record for session {} carries trace {} matching no committed batch",
                r.session,
                tpgnn_serve::trace_hex(r.trace)
            ));
        }
    }
    let probe = records.first().unwrap_or_else(|| fail("no records delivered")).session;
    let timeline = report::session_timeline(&data, &lossy.records, probe)
        .unwrap_or_else(|| fail(&format!("no timeline for session {probe}")));
    for needle in ["event arrival=", "score "] {
        if !timeline.contains(needle) {
            fail(&format!("session {probe} timeline lacks `{needle}`:\n{timeline}"));
        }
    }
    let score_events = lossy
        .records
        .iter()
        .filter(|r| r.kind == "event" && r.name == "serve.score")
        .count();
    if score_events == 0 {
        fail("trace carries no serve.score events");
    }

    // Crash leg: a hard abort mid-serve must still leave readable metrics
    // artifacts behind (the ticker refreshed them; nothing waited for an
    // end-of-run flush).
    let child_dir = base.join("child");
    std::fs::create_dir_all(&child_dir).unwrap();
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    let status = std::process::Command::new(exe)
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, &child_dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("spawning child: {e}")));
    if status.success() {
        fail("child was supposed to abort, but exited cleanly");
    }
    let child_live = report::read_live(&child_dir.join(format!("live-{RUN}.jsonl")))
        .unwrap_or_else(|e| fail(&format!("aborted child left no live series: {e}")));
    if child_live.ticks == 0 {
        fail("aborted child's live series holds no parseable ticks");
    }
    let sidecar = std::fs::read_to_string(child_dir.join(format!("metrics-{RUN}.json")))
        .unwrap_or_else(|e| fail(&format!("aborted child left no metrics sidecar: {e}")));
    let doc = tpgnn_obs::json::parse(&sidecar)
        .unwrap_or_else(|e| fail(&format!("child sidecar does not parse: {e}")));
    if doc.get("counters").and_then(|c| c.get("serve.events")).is_none() {
        fail("child sidecar is missing serve.* counters recorded before the abort");
    }

    println!(
        "telemetry_smoke: OK — {} live tick(s) ({} mid-run), {} records id-verified over {} \
         batch(es), session {} timeline joined on trace ids, {} serve.score event(s), child \
         abort left {} tick(s) + sidecar; {}",
        live.ticks,
        mid.ticks,
        records.len(),
        batches,
        probe,
        score_events,
        child_live.ticks,
        slo_summary.lines().nth(1).unwrap_or("").trim(),
    );
    std::fs::remove_dir_all(&base).ok();
}
