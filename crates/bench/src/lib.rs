//! # tpgnn-bench
//!
//! Reproduction harness: one binary per table / figure of the paper
//! (see DESIGN.md §3 for the experiment index) plus in-repo
//! micro-benchmarks ([`timing`]) validating the Sec. IV-E complexity
//! analysis — no Criterion: the workspace builds with zero external
//! dependencies (see the hermetic-build policy in README.md).
//!
//! Scale knobs (environment variables):
//! * `TPGNN_GRAPHS` — graphs per dataset per run (default 120),
//! * `TPGNN_RUNS` — repetitions (default 3; paper uses 5),
//! * `TPGNN_EPOCHS` — training epochs (default 10, as in the paper),
//! * `TPGNN_DATASETS` — comma-separated dataset filter (e.g. `HDFS,Gowalla`),
//! * `TPGNN_MODELS` — comma-separated model filter.

#![warn(missing_docs)]

pub mod report;
pub mod timing;

use tpgnn_data::DatasetKind;

/// RAII handle returned by [`init_trace`]: flushes the JSONL trace, writes
/// the metrics sidecar, and prints the end-of-run summary on drop.
pub struct TraceGuard {
    _priv: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        tpgnn_obs::trace::finish();
    }
}

/// Start a trace named `run_name` when `TPGNN_TRACE` is set (see
/// README.md § Tracing); every reproduction binary calls this first thing in
/// `main` and keeps the guard alive until exit.
pub fn init_trace(run_name: &str) -> TraceGuard {
    tpgnn_obs::trace::init(run_name);
    TraceGuard { _priv: () }
}

/// Print the standard experiment banner with the active scale settings.
pub fn banner(experiment: &str, cfg: &tpgnn_eval::ExperimentConfig) {
    println!("=== {experiment} ===");
    println!(
        "scale: {} graphs/dataset, {} runs, {} epochs (paper: full corpora, 5 runs, 10 epochs)",
        cfg.num_graphs, cfg.runs, cfg.epochs
    );
    println!();
}

/// Datasets selected by `TPGNN_DATASETS` (default: all five).
pub fn selected_datasets() -> Vec<DatasetKind> {
    filter_by_env("TPGNN_DATASETS", &DatasetKind::ALL, |k| k.name())
}

/// The four datasets used in Table III / Figs. 3–6.
pub fn figure_datasets() -> Vec<DatasetKind> {
    let four = [
        DatasetKind::ForumJava,
        DatasetKind::Hdfs,
        DatasetKind::Gowalla,
        DatasetKind::Brightkite,
    ];
    filter_by_env("TPGNN_DATASETS", &four, |k| k.name())
}

/// Model names selected by `TPGNN_MODELS` from `all`.
pub fn selected_models(all: &[&'static str]) -> Vec<&'static str> {
    filter_by_env("TPGNN_MODELS", all, |m| m)
}

fn filter_by_env<T: Copy>(var: &str, all: &[T], name: impl Fn(T) -> &'static str) -> Vec<T> {
    match std::env::var(var) {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .filter(|s| !s.is_empty())
                .collect();
            all.iter()
                .copied()
                .filter(|&x| wanted.iter().any(|w| name(x).to_ascii_lowercase() == *w))
                .collect()
        }
        Err(_) => all.to_vec(),
    }
}

/// Shared driver for the Fig. 3 / Fig. 4 ablation studies: runs the five
/// Sec. V-F variants of TP-GNN (with the given updater) on the four figure
/// datasets and prints one block per dataset.
pub fn run_ablation_figure(updater: tpgnn_core::UpdaterKind, figure_name: &str) {
    use tpgnn_core::{AblationVariant, TpGnn, TpGnnConfig, UpdaterKind};
    use tpgnn_eval::{run_cells, CellSpec, ExperimentConfig};

    let cfg = ExperimentConfig::default();
    let updater_name = match updater {
        UpdaterKind::Sum => "TP-GNN-SUM",
        UpdaterKind::Gru => "TP-GNN-GRU",
    };
    banner(&format!("{figure_name}: ablation study of {updater_name}"), &cfg);

    let datasets = figure_datasets();
    // One flat (dataset × variant × run) fan-out over the worker pool.
    let specs: Vec<CellSpec> = datasets
        .iter()
        .flat_map(|&kind| {
            AblationVariant::ALL.iter().map(move |&variant| {
                CellSpec::new(variant.label(), kind, move |fd, _snap, seed| {
                    let mut base = TpGnnConfig::sum(fd).with_seed(seed);
                    base.updater = updater;
                    Box::new(TpGnn::new(variant.apply(base)))
                })
            })
        })
        .collect();
    eprintln!("[{figure_name}] {} cells x {} runs on the worker pool …", specs.len(), cfg.runs);
    let results = run_cells(&specs, &cfg);
    let per_dataset = AblationVariant::ALL.len();
    for (di, kind) in datasets.iter().enumerate() {
        let rows: Vec<_> = results[di * per_dataset..(di + 1) * per_dataset]
            .iter()
            .map(|cell| (cell.model.clone(), cell.f1, cell.precision, cell.recall))
            .collect();
        println!("{}", tpgnn_eval::table::render_ablation(kind.name(), &rows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_filter_selects_by_name() {
        let four = [
            DatasetKind::ForumJava,
            DatasetKind::Hdfs,
            DatasetKind::Gowalla,
            DatasetKind::Brightkite,
        ];
        let all = filter_by_env("TPGNN_NOT_SET_EVER", &four, |k| k.name());
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn model_filter_no_env_returns_all() {
        let models = filter_by_env("TPGNN_NOT_SET_EVER_2", &["A", "B"], |m| m);
        assert_eq!(models, vec!["A", "B"]);
    }
}
