//! Offline analysis over the observability artifacts of a serve run: the
//! trace JSONL, the live telemetry snapshots, the metrics sidecar, and the
//! per-shard journal — everything the `obs_report` binary prints.
//!
//! The joins here are deliberately shallow: a session's lifecycle is
//! reconstructed **purely on trace ids** ([`tpgnn_serve::trace_id`] values
//! rendered as 16-digit hex). Step one collects the id set the session's
//! journal frames carry; step two selects journal frames and trace events
//! by id membership alone — no session-field matching on the second pass —
//! so the report doubles as an end-to-end check that the correlation ids
//! actually thread through every surface.

use std::collections::BTreeSet;
use std::path::Path;

use tpgnn_obs::json::{self, Json};
use tpgnn_obs::reader::TraceRecord;
use tpgnn_serve::journal::{Frame, JournalData};
use tpgnn_serve::loadgen::percentile;

/// Per-span-name latency aggregate over one trace.
#[derive(Clone, Debug)]
pub struct SpanRow {
    /// Span name (e.g. `serve.request`).
    pub name: String,
    /// Spans observed.
    pub count: usize,
    /// Sum of span durations, microseconds.
    pub total_us: f64,
    /// Median span duration, microseconds.
    pub p50_us: f64,
    /// 95th-percentile span duration, microseconds.
    pub p95_us: f64,
    /// Longest span, microseconds.
    pub max_us: f64,
}

/// Aggregate every span in `records` by name, sorted by total time
/// (hottest first).
pub fn span_breakdown(records: &[TraceRecord]) -> Vec<SpanRow> {
    let mut by_name: Vec<(String, Vec<f64>)> = Vec::new();
    for r in records.iter().filter(|r| r.kind == "span") {
        let Some(dur) = r.dur_us else { continue };
        match by_name.iter_mut().find(|(n, _)| *n == r.name) {
            Some((_, v)) => v.push(dur as f64),
            None => by_name.push((r.name.clone(), vec![dur as f64])),
        }
    }
    let mut rows: Vec<SpanRow> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_by(f64::total_cmp);
            SpanRow {
                name,
                count: durs.len(),
                total_us: durs.iter().sum(),
                p50_us: percentile(&durs, 50.0),
                p95_us: percentile(&durs, 95.0),
                max_us: durs.last().copied().unwrap_or(0.0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    rows
}

/// Render [`span_breakdown`] rows as an aligned text table.
pub fn render_spans(rows: &[SpanRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<24} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
        "span", "count", "total_ms", "p50_us", "p95_us", "max_us"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<24} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1}\n",
            r.name,
            r.count,
            r.total_us / 1e3,
            r.p50_us,
            r.p95_us,
            r.max_us
        ));
    }
    out
}

/// One line of a reconstructed session timeline, sortable by batch then
/// within-batch rank.
struct TimelineLine {
    batch: usize,
    rank: u8,
    sub: usize,
    text: String,
}

fn describe_frame(f: &Frame) -> (u8, usize, String) {
    match f {
        Frame::Register { session, features, .. } => (
            0,
            0,
            format!(
                "register session={} features={}x{}",
                session,
                features.num_nodes(),
                features.dim()
            ),
        ),
        Frame::Event { arrival, event, .. } => (
            1,
            *arrival,
            format!(
                "event arrival={} {}->{} t={}",
                arrival, event.event.src, event.event.dst, event.event.time
            ),
        ),
        Frame::Score { record, .. } => (
            2,
            0,
            format!(
                "score {:?} proba={:.6} edges={}{}",
                record.kind,
                record.proba,
                record.edges,
                record
                    .quarantine
                    .as_ref()
                    .map(|q| format!(" quarantined={}", q.len()))
                    .unwrap_or_default()
            ),
        ),
        Frame::Fault { fault, .. } => {
            (3, 0, format!("fault {}: {}", fault.kind, fault.detail))
        }
        Frame::Watchdog { session, elapsed_us, .. } => {
            (4, 0, format!("watchdog session={} elapsed_us={}", session, elapsed_us))
        }
    }
}

/// Reconstruct one session's lifecycle by joining journal frames and trace
/// events **purely on trace ids**: pass one collects the id set from the
/// session's own frames; pass two selects everything (frames and trace
/// events alike) by membership in that set, proving the ids thread through
/// both surfaces. Returns `None` when the journal carries no frame for the
/// session.
pub fn session_timeline(
    data: &JournalData,
    trace_records: &[TraceRecord],
    session: u64,
) -> Option<String> {
    let ids: BTreeSet<u64> = data
        .shards
        .iter()
        .flatten()
        .filter(|f| f.session() == session)
        .map(Frame::trace)
        .collect();
    if ids.is_empty() {
        return None;
    }
    let hexes: BTreeSet<String> = ids.iter().map(|t| tpgnn_serve::trace_hex(*t)).collect();

    let mut lines: Vec<TimelineLine> = Vec::new();
    for f in data.shards.iter().flatten() {
        if !ids.contains(&f.trace()) {
            continue;
        }
        let (rank, sub, text) = describe_frame(f);
        lines.push(TimelineLine {
            batch: f.batch(),
            rank,
            sub,
            text: format!("[{}] {}", tpgnn_serve::trace_hex(f.trace()), text),
        });
    }
    for r in trace_records.iter().filter(|r| r.kind == "event") {
        let Some(hex) = r.field("trace").and_then(Json::as_str) else { continue };
        if !hexes.contains(hex) {
            continue;
        }
        lines.push(TimelineLine {
            // Trace events sort after the journal frames of their batch;
            // the batch is recoverable from the id itself via the frames.
            batch: lines
                .iter()
                .find(|l| l.text.starts_with(&format!("[{hex}]")))
                .map_or(usize::MAX, |l| l.batch),
            rank: 5,
            sub: r.t_us as usize,
            text: format!("[{hex}] trace-event {} t_us={}", r.name, r.t_us),
        });
    }
    lines.sort_by_key(|a| (a.batch, a.rank, a.sub));

    let mut out = format!("session {session} — {} correlated trace id(s)\n", ids.len());
    let mut last_batch = usize::MAX;
    for l in &lines {
        if l.batch != last_batch {
            last_batch = l.batch;
            if l.batch == usize::MAX {
                out.push_str("  (trace events without a journaled batch)\n");
            } else {
                out.push_str(&format!("  batch {}\n", l.batch));
            }
        }
        out.push_str(&format!("    {}\n", l.text));
    }
    Some(out)
}

/// Summary of one live-telemetry JSONL time series.
#[derive(Clone, Debug, Default)]
pub struct LiveSummary {
    /// Parseable snapshot ticks.
    pub ticks: usize,
    /// Unparseable (torn/partial) lines skipped.
    pub skipped: usize,
    /// Last tick's `seq`.
    pub last_seq: u64,
    /// Last tick's full snapshot document.
    pub last: Option<Json>,
}

/// Parse a `live-<run>.jsonl` time series, skipping torn lines (the file
/// is written concurrently with the reader).
pub fn read_live(path: &Path) -> Result<LiveSummary, String> {
    let text = tpgnn_obs::vfs::read_to_string(&*tpgnn_obs::vfs::global(), path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut s = LiveSummary::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(doc) => {
                s.ticks += 1;
                s.last_seq =
                    doc.get("seq").and_then(Json::as_i64).map_or(s.last_seq, |v| v as u64);
                s.last = Some(doc);
            }
            Err(_) => s.skipped += 1,
        }
    }
    Ok(s)
}

/// Render the SLO view of the newest live snapshot: burn-rate gauges and
/// the cumulative breach counter, or a note when SLO tracking was off.
pub fn render_slo(live: &LiveSummary) -> String {
    let Some(last) = &live.last else {
        return "  no live snapshots\n".to_string();
    };
    let gauge = |name: &str| {
        last.get("gauges").and_then(|g| g.get(name)).and_then(Json::as_f64)
    };
    let breaches = last
        .get("counters")
        .and_then(|c| c.get("slo.breaches"))
        .and_then(|c| c.get("total"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    let mut out = String::new();
    let mut any = false;
    for (label, short, long) in [
        ("latency", "slo.latency.burn_short", "slo.latency.burn_long"),
        ("availability", "slo.availability.burn_short", "slo.availability.burn_long"),
    ] {
        if let (Some(s), Some(l)) = (gauge(short), gauge(long)) {
            any = true;
            out.push_str(&format!(
                "  {:<14} burn short={:.3} long={:.3}\n",
                label, s, l
            ));
        }
    }
    if !any {
        return "  SLO tracking was not enabled for this run\n".to_string();
    }
    out.push_str(&format!("  breaches (cumulative): {breaches}\n"));
    out
}

/// Render the hottest ops from a metrics sidecar's `ops` section.
pub fn render_top_ops_from_sidecar(path: &Path, limit: usize) -> Result<String, String> {
    let text = tpgnn_obs::vfs::read_to_string(&*tpgnn_obs::vfs::global(), path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text)?;
    let Some(Json::Arr(ops)) = doc.get("ops") else {
        return Ok("  sidecar carries no ops section\n".to_string());
    };
    let mut out = format!(
        "  {:<14} {:>10} {:>10} {:>10} {:>14}\n",
        "op", "calls", "fwd_us", "bwd_us", "out_elems"
    );
    for op in ops.iter().take(limit) {
        let s = |k: &str| op.get(k).and_then(Json::as_i64).unwrap_or(0);
        let name = op.get("op").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!(
            "  {:<14} {:>10} {:>10} {:>10} {:>14}\n",
            name,
            s("calls"),
            s("fwd_us"),
            s("bwd_us"),
            s("elems")
        ));
    }
    Ok(out)
}

/// Count the `shard-*.log` files of a journal directory (how
/// [`tpgnn_serve::journal::load`] learns the shard count offline).
pub fn probe_num_shards(dir: &Path) -> usize {
    let mut n = 0;
    while tpgnn_serve::journal::shard_log_path(dir, n).exists() {
        n += 1;
    }
    n
}

/// Load a journal directory, probing the shard count from the files.
pub fn load_journal(dir: &Path) -> Result<JournalData, String> {
    let n = probe_num_shards(dir);
    if n == 0 {
        return Err(format!("{} holds no shard-*.log files", dir.display()));
    }
    tpgnn_serve::journal::load(dir, n).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: &str, name: &str, dur_us: Option<u64>) -> TraceRecord {
        TraceRecord {
            kind: kind.into(),
            name: name.into(),
            level: "info".into(),
            id: 0,
            parent: None,
            thread: 0,
            t_us: 1,
            dur_us,
            fields: Json::Obj(Vec::new()),
        }
    }

    #[test]
    fn span_breakdown_groups_and_sorts_by_total() {
        let records = vec![
            rec("span", "a", Some(10)),
            rec("span", "b", Some(100)),
            rec("span", "a", Some(30)),
            rec("event", "a", None),
        ];
        let rows = span_breakdown(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "b");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_us, 40.0);
        let table = render_spans(&rows);
        assert!(table.contains("p95_us"), "{table}");
    }

    #[test]
    fn live_reader_skips_torn_tail() {
        let dir = std::env::temp_dir().join(format!("tpgnn-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("live-t.jsonl");
        std::fs::write(
            &p,
            "{\"seq\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}}\n{\"seq\":2,\"coun",
        )
        .unwrap();
        let s = read_live(&p).unwrap();
        assert_eq!((s.ticks, s.skipped, s.last_seq), (1, 1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slo_render_reports_absence() {
        let s = LiveSummary::default();
        assert!(render_slo(&s).contains("no live snapshots"));
    }
}
