//! In-repo micro-benchmark harness replacing Criterion, so `cargo bench`
//! runs fully offline with zero external dependencies.
//!
//! Protocol per benchmark: a wall-clock-bounded warmup, then `N` timed
//! iterations; the report gives min / mean / median / p95 over the
//! samples. Results print as a table and are appended to
//! `results/bench_<suite>.json` (one JSON document per run, machine
//! readable so future perf PRs can diff against it).
//!
//! Flags (after `cargo bench -- `):
//!
//! * `--smoke` — 1 warmup + 3 samples per benchmark: a seconds-long
//!   smoke pass for CI (`scripts/ci.sh`),
//! * any other flag (notably cargo's own `--bench`) is ignored.
//!
//! Environment: `TPGNN_BENCH_SAMPLES` overrides the sample count.

use std::time::{Duration, Instant};

/// Aggregated timings of one benchmark (all nanoseconds).
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark label, e.g. `propagation_vs_edges/sum_m/64`.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
    /// Median (p50).
    pub median_ns: u128,
    /// 95th percentile (nearest-rank).
    pub p95_ns: u128,
}

/// A benchmark suite: collects [`BenchStats`] and renders/persists them.
pub struct Suite {
    name: String,
    smoke: bool,
    samples_override: Option<usize>,
    /// Short git commit hash of the working tree, `"unknown"` when git is
    /// unavailable (offline tarballs, stripped checkouts).
    git_sha: String,
    /// RNG seed the benchmark data was generated from (see [`Suite::set_seed`]).
    seed: u64,
    /// Worker-pool width the run was configured for (`TPGNN_THREADS`).
    threads: usize,
    /// Physical parallelism of the machine (`available_parallelism`).
    cores: usize,
    /// Free-form derived numbers (e.g. speedups), serialized under `extras`.
    extras: Vec<(String, f64)>,
    results: Vec<BenchStats>,
}

/// Best-effort `git rev-parse --short HEAD` in the workspace; `"unknown"`
/// when git or the repository is unavailable.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Suite {
    /// Create a suite named `name`, reading `--smoke` from the process
    /// arguments (cargo passes everything after `cargo bench -- ` through)
    /// and `TPGNN_BENCH_SAMPLES` from the environment.
    pub fn from_args(name: &str) -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        let samples_override = std::env::var("TPGNN_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        let seed = std::env::var("TPGNN_BENCH_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        println!("suite {name}{}", if smoke { " (smoke mode)" } else { "" });
        Suite {
            name: name.to_string(),
            smoke,
            samples_override,
            git_sha: git_sha(),
            seed,
            threads: tpgnn_par::configured_threads(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            extras: Vec::new(),
            results: Vec::new(),
        }
    }

    /// True when running the abbreviated `--smoke` pass.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Record the RNG seed the benchmark inputs were generated from, so
    /// `results/*.json` entries are comparable across PRs. Defaults to
    /// `TPGNN_BENCH_SEED` (or 0) until overridden.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn sample_count(&self) -> usize {
        self.samples_override.unwrap_or(if self.smoke { 3 } else { 20 })
    }

    /// Median of an already-recorded benchmark, for deriving ratios
    /// (e.g. parallel speedup) inside a bench binary.
    pub fn median_ns(&self, name: &str) -> Option<u128> {
        self.results.iter().find(|s| s.name == name).map(|s| s.median_ns)
    }

    /// Attach a derived number (serialized under `"extras"` in the JSON).
    pub fn annotate(&mut self, key: &str, value: f64) {
        self.extras.push((key.to_string(), value));
    }

    /// Time `f`: warm up until ~200 ms have elapsed (smoke: one call),
    /// then record the configured number of samples.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        let warmup_budget =
            if self.smoke { Duration::ZERO } else { Duration::from_millis(200) };
        let warmup_start = Instant::now();
        loop {
            f();
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }

        let n = self.sample_count();
        let mut samples_ns: Vec<u128> = Vec::with_capacity(n);
        for _ in 0..n {
            let t0 = Instant::now();
            f();
            samples_ns.push(t0.elapsed().as_nanos());
        }
        samples_ns.sort_unstable();
        let stats = BenchStats {
            name: name.to_string(),
            samples: n,
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<u128>() / n as u128,
            median_ns: samples_ns[n / 2],
            p95_ns: samples_ns[(n * 95 / 100).min(n - 1)],
            };
        println!(
            "  {:<44} median {:>12}   p95 {:>12}   ({} samples)",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.samples
        );
        self.results.push(stats);
    }

    /// Render the final table and write `results/bench_<suite>.json`.
    /// Returns the JSON path on success.
    pub fn finish(self) -> Option<std::path::PathBuf> {
        let json = self.to_json();
        // Workspace root is two levels above this crate's manifest.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path = dir.join(format!("bench_{}.json", self.name));
        let vfs = tpgnn_obs::vfs::global();
        match vfs.create_dir_all(&dir).and_then(|()| vfs.write(&path, json.as_bytes())) {
            Ok(()) => {
                let shown = path.canonicalize().unwrap_or_else(|_| path.clone());
                println!("\nwrote {}", shown.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: could not persist bench results: {e}");
                None
            }
        }
    }

    /// Serialize the collected stats (hand-rolled: no serde in a hermetic
    /// build; names are controlled identifiers with no characters needing
    /// JSON escaping).
    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str(&format!("  \"git_sha\": \"{}\",\n", self.git_sha));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"default_samples\": {},\n", self.sample_count()));
        if !self.extras.is_empty() {
            out.push_str("  \"extras\": {");
            for (i, (k, v)) in self.extras.iter().enumerate() {
                out.push_str(&format!(
                    "\"{k}\": {v:.4}{}",
                    if i + 1 < self.extras.len() { ", " } else { "" }
                ));
            }
            out.push_str("},\n");
        }
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}}}{}\n",
                s.name,
                s.samples,
                s.min_ns,
                s.mean_ns,
                s.median_ns,
                s.p95_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Prevent the optimizer from deleting a benchmarked computation
/// (equivalent of `std::hint::black_box`, re-exported for benches).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_json_well_formed() {
        let mut suite = Suite {
            name: "selftest".into(),
            smoke: true,
            samples_override: Some(5),
            git_sha: git_sha(),
            seed: 7,
            threads: tpgnn_par::configured_threads(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            extras: Vec::new(),
            results: Vec::new(),
        };
        suite.annotate("speedup", 1.5);
        suite.bench("busy_loop", || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        let s = &suite.results[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        assert_eq!(s.samples, 5);
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"name\": \"busy_loop\""));
        assert!(json.contains("\"git_sha\": \""), "run metadata: git sha");
        assert!(json.contains("\"seed\": 7"), "run metadata: seed");
        assert!(json.contains("\"default_samples\": 5"), "run metadata: samples");
        assert!(json.contains("\"threads\": "), "run metadata: pool width");
        assert!(json.contains("\"cores\": "), "run metadata: machine cores");
        assert!(json.contains("\"speedup\": 1.5000"), "extras serialized");
        assert!(!json.contains("\"git_sha\": \"\""), "sha is non-empty or 'unknown'");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
