//! TP-GNN configuration.

use tpgnn_nn::EdgeAgg;

/// Which node-feature updater the temporal propagation layer uses
/// (Sec. IV-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdaterKind {
    /// Temporal Propagation-SUM (eqs. 3–5): additive aggregation with a
    /// separate temporal matrix.
    Sum,
    /// Temporal Propagation-GRU (eq. 6): gated aggregation of
    /// `[ĥ(u) ⊕ f(t)]`.
    Gru,
}

/// How node messages are routed before readout — the full model uses
/// [`PropagationKind::Temporal`]; the ablations of Sec. V-F replace or drop
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropagationKind {
    /// Full temporal propagation along the information flow (Algorithm 1).
    Temporal,
    /// The `rand` ablation: neighbors aggregated in a random order,
    /// timestamps ignored.
    Random,
    /// The `w/o tem` ablation: no propagation at all — embedded raw features
    /// go straight to the readout.
    None,
}

/// Graph-level readout after propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readout {
    /// The Global Temporal Embedding Extractor (Sec. IV-C): a GRU over the
    /// chronological edge-embedding sequence.
    Extractor,
    /// The Transformer alternative the paper suggests for large graphs
    /// (Sec. IV-C / Sec. VI): attention pooling over time-encoded edge
    /// embeddings.
    TransformerExtractor,
    /// *Mean* graph pooling over node embeddings — used by the ablation
    /// variants without the extractor.
    MeanPool,
}

/// Full TP-GNN hyperparameter set. Defaults follow Sec. V-D: GRU hidden
/// size `d = 32`, time dimension `d_t = 6`, Adam with `lr = 1e-3`,
/// 10 epochs.
#[derive(Clone, Debug)]
pub struct TpGnnConfig {
    /// Raw node-feature dimension `q` of the dataset.
    pub feature_dim: usize,
    /// Width of the node-feature embedding layer (eq. 1).
    pub embed_dim: usize,
    /// Time-encoding dimension `d_t` (eq. 2).
    pub time_dim: usize,
    /// GRU hidden size `d` of the global temporal embedding extractor.
    pub hidden_dim: usize,
    /// SUM or GRU node updater.
    pub updater: UpdaterKind,
    /// Temporal / random / no propagation (ablations).
    pub propagation: PropagationKind,
    /// Whether the time-embedding vector `f(t)` participates in message
    /// passing (`false` reproduces the `temp` ablation).
    pub use_time_encoding: bool,
    /// Graph-level readout.
    pub readout: Readout,
    /// EdgeAgg used to turn node embeddings into edge embeddings
    /// (paper default: Average).
    pub edge_agg: EdgeAgg,
    /// Constant pre-scaling of the SUM updater's embedded features and time
    /// encodings. Eqs. 3–4 accumulate unboundedly; at realistic interaction
    /// densities the sums saturate `tanh` within a few edges and freeze the
    /// gradients. The scale folds into the learnable embedding-layer /
    /// Time2Vec initialization (same model family) while keeping the sums
    /// in `tanh`'s active range. Ignored by the GRU updater.
    pub sum_scale: f32,
    /// Parameter-initialization / tie-shuffling seed.
    pub seed: u64,
}

impl TpGnnConfig {
    /// TP-GNN-SUM with the paper's default hyperparameters.
    pub fn sum(feature_dim: usize) -> Self {
        Self {
            feature_dim,
            embed_dim: 32,
            time_dim: 6,
            hidden_dim: 32,
            updater: UpdaterKind::Sum,
            propagation: PropagationKind::Temporal,
            use_time_encoding: true,
            readout: Readout::Extractor,
            edge_agg: EdgeAgg::Average,
            sum_scale: 0.05,
            seed: 0,
        }
    }

    /// TP-GNN-GRU with the paper's default hyperparameters.
    pub fn gru(feature_dim: usize) -> Self {
        Self { updater: UpdaterKind::Gru, ..Self::sum(feature_dim) }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Width `k` of the node embeddings produced by temporal propagation:
    /// `q + d_t` for SUM (eq. 5), `q` for GRU (Sec. IV-B2 (ii)).
    pub fn node_embed_dim(&self) -> usize {
        match (self.propagation, self.updater, self.use_time_encoding) {
            // `w/o tem`: raw embedded features only.
            (PropagationKind::None, _, _) => self.embed_dim,
            (_, UpdaterKind::Sum, true) => self.embed_dim + self.time_dim,
            (_, UpdaterKind::Sum, false) => self.embed_dim,
            (_, UpdaterKind::Gru, _) => self.embed_dim,
        }
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.feature_dim == 0 {
            return Err("feature_dim must be positive".into());
        }
        if self.embed_dim == 0 || self.hidden_dim == 0 {
            return Err("embed_dim and hidden_dim must be positive".into());
        }
        if self.use_time_encoding && self.time_dim < 2 {
            return Err("time_dim must be >= 2 when time encoding is enabled".into());
        }
        Ok(())
    }
}

/// The ablation variants of Sec. V-F.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AblationVariant {
    /// Random aggregation + Mean pooling (no temporal information at all).
    Rand,
    /// Extractor only, no temporal propagation.
    WithoutTemporalPropagation,
    /// Temporal propagation without `f(t)`, Mean pooling.
    Temp,
    /// Temporal propagation with `f(t)`, Mean pooling.
    Time2Vec,
    /// The full model.
    Full,
}

impl AblationVariant {
    /// All variants in the order plotted in Figs. 3–4.
    pub const ALL: [AblationVariant; 5] = [
        AblationVariant::Rand,
        AblationVariant::WithoutTemporalPropagation,
        AblationVariant::Temp,
        AblationVariant::Time2Vec,
        AblationVariant::Full,
    ];

    /// Label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::Rand => "rand",
            AblationVariant::WithoutTemporalPropagation => "w/o tem",
            AblationVariant::Temp => "temp",
            AblationVariant::Time2Vec => "time2Vec",
            AblationVariant::Full => "full",
        }
    }

    /// Apply the variant's modifications to a full-model config.
    pub fn apply(self, mut cfg: TpGnnConfig) -> TpGnnConfig {
        match self {
            AblationVariant::Rand => {
                cfg.propagation = PropagationKind::Random;
                cfg.use_time_encoding = false;
                cfg.readout = Readout::MeanPool;
            }
            AblationVariant::WithoutTemporalPropagation => {
                cfg.propagation = PropagationKind::None;
                cfg.readout = Readout::Extractor;
            }
            AblationVariant::Temp => {
                cfg.use_time_encoding = false;
                cfg.readout = Readout::MeanPool;
            }
            AblationVariant::Time2Vec => {
                cfg.readout = Readout::MeanPool;
            }
            AblationVariant::Full => {}
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_5d() {
        let cfg = TpGnnConfig::sum(3);
        assert_eq!(cfg.hidden_dim, 32);
        assert_eq!(cfg.time_dim, 6);
        assert_eq!(cfg.edge_agg, EdgeAgg::Average);
        assert_eq!(cfg.node_embed_dim(), 38); // q + d_t for SUM
        let gru = TpGnnConfig::gru(3);
        assert_eq!(gru.node_embed_dim(), 32); // q for GRU
    }

    #[test]
    fn ablation_dims() {
        let base = TpGnnConfig::sum(3);
        let temp = AblationVariant::Temp.apply(base.clone());
        assert_eq!(temp.node_embed_dim(), 32); // no time matrix
        assert!(!temp.use_time_encoding);
        let wo = AblationVariant::WithoutTemporalPropagation.apply(base.clone());
        assert_eq!(wo.propagation, PropagationKind::None);
        assert_eq!(wo.readout, Readout::Extractor);
        let rand = AblationVariant::Rand.apply(base);
        assert_eq!(rand.readout, Readout::MeanPool);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = TpGnnConfig::sum(3);
        assert!(cfg.validate().is_ok());
        cfg.time_dim = 1;
        assert!(cfg.validate().is_err());
        cfg.time_dim = 6;
        cfg.feature_dim = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn labels_match_figures() {
        let labels: Vec<&str> = AblationVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["rand", "w/o tem", "temp", "time2Vec", "full"]);
    }
}
