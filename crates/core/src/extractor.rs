//! Global Temporal Embedding Extractor — Sec. IV-C of the paper.
//!
//! Node embeddings from temporal propagation are converted into edge
//! embeddings (EdgeAgg *Average* by default), then fed into a GRU in the
//! chronological order of edge establishment (eqs. 7–10). The final hidden
//! state is the graph embedding `g ∈ R^d`.
//!
//! The paper notes the GRU "can be replaced by other sequential models …
//! for instance Transformer for large dynamic graphs"; the
//! [`Readout::TransformerExtractor`] variant implements that option as
//! attention pooling over time-encoded edge embeddings.

use tpgnn_rng::rngs::StdRng;
use tpgnn_graph::TemporalEdge;
use tpgnn_nn::{mean_pool, EdgeAgg, GruCell, Linear, MultiHeadAttention, Time2Vec};
use tpgnn_tensor::{ParamStore, Tape, Var};

use crate::config::{Readout, TpGnnConfig};

enum Inner {
    Gru(GruCell),
    Transformer {
        /// Time encoding appended to edge embeddings so attention sees order.
        t2v: Time2Vec,
        att: MultiHeadAttention,
        /// Learned query seed projected from the mean edge embedding.
        query: Linear,
        out: Linear,
    },
    MeanPool {
        /// Projects pooled node embeddings to the graph embedding width so
        /// every readout produces `(1, hidden_dim)`.
        proj: Linear,
    },
}

/// Graph-level readout producing the graph embedding `g` (Definition 2).
pub struct GlobalExtractor {
    inner: Inner,
    edge_agg: EdgeAgg,
    hidden_dim: usize,
}

impl GlobalExtractor {
    /// Register the readout's parameters per `cfg`. `node_dim` is the width
    /// `k` of the node embeddings produced by temporal propagation.
    pub fn new(store: &mut ParamStore, cfg: &TpGnnConfig, node_dim: usize, rng: &mut StdRng) -> Self {
        let edge_dim = cfg.edge_agg.out_dim(node_dim);
        let inner = match cfg.readout {
            Readout::Extractor => {
                Inner::Gru(GruCell::new(store, "ext.gru", edge_dim, cfg.hidden_dim, rng))
            }
            Readout::TransformerExtractor => {
                let t2v = Time2Vec::new(store, "ext.t2v", cfg.time_dim, rng);
                let width = edge_dim + cfg.time_dim;
                let att = MultiHeadAttention::new(store, "ext.att", width, width, cfg.hidden_dim, 2, rng);
                let query = Linear::new(store, "ext.query", width, width, rng);
                let out = Linear::new(store, "ext.out", cfg.hidden_dim, cfg.hidden_dim, rng);
                Inner::Transformer { t2v, att, query, out }
            }
            Readout::MeanPool => {
                Inner::MeanPool { proj: Linear::new(store, "ext.proj", node_dim, cfg.hidden_dim, rng) }
            }
        };
        Self { inner, edge_agg: cfg.edge_agg, hidden_dim: cfg.hidden_dim }
    }

    /// Graph-embedding width `d`.
    pub fn out_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Produce the graph embedding from per-node embeddings and the
    /// chronological edge list.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        node_embeds: &[Var],
        edges: &[TemporalEdge],
    ) -> Var {
        match &self.inner {
            Inner::Gru(cell) => {
                let mut state = cell.zero_state(tape);
                for e in edges {
                    // S_loc(u, v, t) = average of the endpoint embeddings.
                    let s_loc = self.edge_agg.combine(tape, node_embeds[e.src], node_embeds[e.dst]);
                    state = cell.forward(tape, store, state, s_loc);
                }
                state
            }
            Inner::Transformer { t2v, att, query, out } => {
                if edges.is_empty() {
                    // Mirror the GRU variant: an edgeless graph reads out as
                    // the zero embedding.
                    return tape.input(tpgnn_tensor::Tensor::zeros(1, self.hidden_dim));
                }
                let rows: Vec<Var> = edges
                    .iter()
                    .map(|e| {
                        let s_loc = self.edge_agg.combine(tape, node_embeds[e.src], node_embeds[e.dst]);
                        let ft = t2v.encode(tape, store, e.time);
                        tape.concat_cols(s_loc, ft)
                    })
                    .collect();
                let seq = tape.stack_rows(&rows); // (m, k + d_t)
                let pooled = tape.mean_rows(seq);
                let q = query.forward(tape, store, pooled);
                let attended = att.forward(tape, store, q, seq, seq); // (1, d)
                let act = tape.tanh(attended);
                out.forward(tape, store, act)
            }
            Inner::MeanPool { proj } => {
                let pooled = mean_pool(tape, node_embeds);
                proj.forward(tape, store, pooled)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;
    use tpgnn_tensor::Tensor;

    fn node_rows(tape: &mut Tape, n: usize, k: usize) -> Vec<Var> {
        (0..n)
            .map(|v| tape.input(Tensor::from_fn(1, k, |_, j| ((v * 3 + j) as f32 * 0.37).sin())))
            .collect()
    }

    fn edges(m: usize, n: usize) -> Vec<TemporalEdge> {
        (0..m)
            .map(|i| TemporalEdge::new(i % n, (i + 1) % n, (i + 1) as f64))
            .collect()
    }

    fn cfg_with(readout: Readout) -> TpGnnConfig {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.readout = readout;
        cfg
    }

    #[test]
    fn gru_extractor_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cfg_with(Readout::Extractor);
        let ext = GlobalExtractor::new(&mut store, &cfg, 38, &mut rng);
        assert_eq!(ext.out_dim(), 32);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 5, 38);
        let g = ext.forward(&mut tape, &store, &nodes, &edges(7, 5));
        assert_eq!(g.shape(), (1, 32));
    }

    #[test]
    fn gru_extractor_is_order_sensitive() {
        // The whole point of Sec. IV-C: edge sequence order matters.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = cfg_with(Readout::Extractor);
        let ext = GlobalExtractor::new(&mut store, &cfg, 8, &mut rng);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 4, 8);
        let fwd = edges(5, 4);
        let mut rev = fwd.clone();
        rev.reverse();
        // Keep timestamps ascending in both (only the src/dst sequence flips).
        for (i, e) in rev.iter_mut().enumerate() {
            e.time = (i + 1) as f64;
        }
        let ga = ext.forward(&mut tape, &store, &nodes, &fwd);
        let gb = ext.forward(&mut tape, &store, &nodes, &rev);
        assert!(tape.value(ga).sub(tape.value(gb)).max_abs() > 1e-6);
    }

    #[test]
    fn gru_extractor_empty_edge_list_returns_zero_state() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = cfg_with(Readout::Extractor);
        let ext = GlobalExtractor::new(&mut store, &cfg, 8, &mut rng);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 3, 8);
        let g = ext.forward(&mut tape, &store, &nodes, &[]);
        assert_eq!(tape.value(g).max_abs(), 0.0);
    }

    #[test]
    fn transformer_extractor_shape_and_time_sensitivity() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = cfg_with(Readout::TransformerExtractor);
        let ext = GlobalExtractor::new(&mut store, &cfg, 10, &mut rng);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 4, 10);
        let e1 = edges(6, 4);
        let mut e2 = e1.clone();
        // Same pairs, different times -> time encoding must change the output.
        for e in &mut e2 {
            e.time *= 7.0;
        }
        let g1 = ext.forward(&mut tape, &store, &nodes, &e1);
        let g2 = ext.forward(&mut tape, &store, &nodes, &e2);
        assert_eq!(g1.shape(), (1, 32));
        assert!(tape.value(g1).sub(tape.value(g2)).max_abs() > 1e-6);
    }

    #[test]
    fn mean_pool_readout_ignores_edges() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = cfg_with(Readout::MeanPool);
        let ext = GlobalExtractor::new(&mut store, &cfg, 6, &mut rng);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 4, 6);
        let g1 = ext.forward(&mut tape, &store, &nodes, &edges(5, 4));
        let g2 = ext.forward(&mut tape, &store, &nodes, &edges(2, 4));
        assert_eq!(tape.value(g1).data(), tape.value(g2).data());
        assert_eq!(g1.shape(), (1, 32));
    }

    #[test]
    fn concatenation_edge_agg_widths_are_respected() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = cfg_with(Readout::Extractor);
        cfg.edge_agg = EdgeAgg::Concatenation;
        let ext = GlobalExtractor::new(&mut store, &cfg, 6, &mut rng);
        let mut tape = Tape::new();
        let nodes = node_rows(&mut tape, 3, 6);
        let g = ext.forward(&mut tape, &store, &nodes, &edges(4, 3));
        assert_eq!(g.shape(), (1, 32));
    }
}
