//! Training guardrails: fault reporting and recovery policy.
//!
//! The trainer (see [`train_guarded`](crate::trainer::train_guarded)) cannot
//! see inside a model — [`GraphClassifier`](crate::GraphClassifier) only
//! hands back a scalar loss per epoch. This module provides the side channel
//! that carries *attributed* numerical faults (which op produced the first
//! NaN, which parameter is poisoned) from the models' inner loops out to the
//! trainer, plus the [`GuardConfig`] knobs governing divergence detection and
//! recovery.
//!
//! ## Fault slot
//!
//! A thread-local "first fault wins" slot: model code calls [`record_fault`]
//! when a guarded tape or gradient sweep reports a non-finite value, and the
//! trainer drains it with [`take_fault`] after every epoch. Thread-local
//! because training a model is single-threaded by construction (one tape per
//! graph) while the eval harness may run several trainings on different
//! threads.

use std::cell::RefCell;

thread_local! {
    static FAULT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Record an attributed numerical fault (e.g. `"TGAT: non-finite value
/// produced by `exp` at tape node 17"`). Only the first fault since the last
/// [`take_fault`] is kept — it is the root cause; later faults are fallout.
pub fn record_fault(detail: impl Into<String>) {
    FAULT.with(|f| {
        let mut slot = f.borrow_mut();
        if slot.is_none() {
            *slot = Some(detail.into());
        }
    });
}

/// Drain the fault slot, returning the first fault recorded since the last
/// drain (if any) and clearing it.
pub fn take_fault() -> Option<String> {
    FAULT.with(|f| f.borrow_mut().take())
}

/// Recovery policy for [`train_guarded`](crate::trainer::train_guarded).
///
/// Defaults: scan tapes for the first non-finite op, checkpoint the model
/// after every good epoch, declare divergence at a NaN/Inf loss or a loss
/// above 4× the best epoch so far, and recover up to 3 times by rolling back
/// to the last good checkpoint and halving the learning rate.
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Declare divergence when an epoch's loss exceeds this multiple of the
    /// best loss seen so far. The comparison floor is
    /// [`GuardConfig::BEST_FLOOR`] so near-zero best losses don't turn noise
    /// into a hair-trigger.
    pub divergence_factor: f32,
    /// Maximum number of rollback-and-retry recoveries before the run is
    /// abandoned (reported, never panicked).
    pub max_recoveries: usize,
    /// Learning-rate multiplier applied on every recovery (paper protocol
    /// uses Adam at `1e-3`; halving is the conventional backoff).
    pub lr_backoff: f32,
    /// Turn on the process-wide [`Tape`](tpgnn_tensor::Tape) non-finite scan
    /// for the duration of training, so blow-ups are attributed to the op
    /// that produced them and poisoned gradients never reach the optimizer.
    pub scan_tapes: bool,
    /// Verify after each epoch that every parameter value and gradient is
    /// finite (via `ParamStore::check_finite`), catching corruption that a
    /// finite epoch-mean loss can mask.
    pub check_params: bool,
    /// Wall-clock budget per epoch in milliseconds. An epoch that exceeds it
    /// abandons the run immediately (rollback-and-retry would just be slow
    /// again) with a `guard.timeout` trace warning. `None` disables the
    /// check — the default, since healthy epoch times vary by orders of
    /// magnitude across datasets and scale knobs.
    pub max_epoch_ms: Option<u64>,
}

impl GuardConfig {
    /// Divergence comparisons use `best.max(BEST_FLOOR)` so that a very
    /// small best loss (e.g. `1e-6` on an easy split) doesn't flag ordinary
    /// fluctuation as divergence.
    pub const BEST_FLOOR: f32 = 1e-3;
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            divergence_factor: 4.0,
            max_recoveries: 3,
            lr_backoff: 0.5,
            scan_tapes: true,
            check_params: true,
            max_epoch_ms: None,
        }
    }
}

/// Why the guarded trainer rejected an epoch.
#[derive(Clone, Debug, PartialEq)]
pub enum DivergenceReason {
    /// The epoch's mean loss was NaN or infinite.
    NonFiniteLoss {
        /// The offending loss value.
        loss: f32,
    },
    /// The epoch's loss exceeded `divergence_factor ×` the best loss so far.
    LossExploded {
        /// The offending loss value.
        loss: f32,
        /// Best (lowest) epoch loss seen before this epoch.
        best: f32,
    },
    /// A model-side guard fired: the tape scan attributed a non-finite value
    /// to a specific op, or a parameter buffer failed the finite check.
    ModelFault {
        /// Human-readable attribution (model, op/parameter, tape node).
        detail: String,
    },
    /// The epoch's wall-clock time exceeded
    /// [`GuardConfig::max_epoch_ms`] — a hung or pathologically slow model.
    EpochTimeout {
        /// Measured epoch wall-clock time (ms).
        elapsed_ms: u64,
        /// The configured budget (ms).
        budget_ms: u64,
    },
}

impl std::fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss { loss } => write!(f, "non-finite epoch loss {loss}"),
            DivergenceReason::LossExploded { loss, best } => {
                write!(f, "epoch loss {loss} exploded past best {best}")
            }
            DivergenceReason::ModelFault { detail } => write!(f, "model fault: {detail}"),
            DivergenceReason::EpochTimeout { elapsed_ms, budget_ms } => {
                write!(f, "epoch took {elapsed_ms} ms, over the {budget_ms} ms budget")
            }
        }
    }
}

/// One rollback-and-retry episode recorded in a
/// [`TrainReport`](crate::TrainReport).
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Zero-based index of the epoch whose attempt was rejected.
    pub epoch: usize,
    /// What tripped the guard.
    pub reason: DivergenceReason,
    /// Zero-based index of the last good epoch whose checkpoint was
    /// restored, or `None` when the model was rolled back to its
    /// pre-training state (or the run was abandoned, see
    /// [`RecoveryEvent::abandoned`]).
    pub rolled_back_to: Option<usize>,
    /// Learning rate in effect when the guard tripped, if the model exposes
    /// one.
    pub lr_before: Option<f32>,
    /// Learning rate after backoff — `None` when the run was abandoned
    /// instead of retried.
    pub lr_after: Option<f32>,
    /// `true` when this fault exhausted the recovery budget and the run was
    /// abandoned rather than rolled back.
    pub abandoned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_slot_keeps_first_and_drains() {
        assert_eq!(take_fault(), None);
        record_fault("root cause");
        record_fault("fallout");
        assert_eq!(take_fault().as_deref(), Some("root cause"));
        assert_eq!(take_fault(), None);
    }

    #[test]
    fn defaults_are_sane() {
        let g = GuardConfig::default();
        assert!(g.divergence_factor > 1.0);
        assert!(g.max_recoveries >= 1);
        assert!(g.lr_backoff > 0.0 && g.lr_backoff < 1.0);
        assert!(g.scan_tapes && g.check_params);
    }

    #[test]
    fn reasons_display() {
        let r = DivergenceReason::NonFiniteLoss { loss: f32::NAN };
        assert!(r.to_string().contains("non-finite"));
        let r = DivergenceReason::LossExploded { loss: 9.0, best: 0.5 };
        assert!(r.to_string().contains("9") && r.to_string().contains("0.5"));
        let r = DivergenceReason::ModelFault { detail: "exp at node 3".into() };
        assert!(r.to_string().contains("exp at node 3"));
    }
}
