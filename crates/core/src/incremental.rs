//! Incremental per-session scoring — the serving-path counterpart of the
//! batch forward pass.
//!
//! TP-GNN's temporal propagation (Algorithm 1) folds edges left-to-right in
//! chronological order, so a session's propagation state can be advanced
//! one step per arriving edge with no replay of the prefix. Scoring then
//! materializes the final node embeddings `H = tanh(Ĥ)` from the stored
//! accumulators and runs the global extractor + classifier over the
//! session's released edge log — the same arithmetic, op for op, as
//! [`GraphClassifier::predict_proba`] on the equivalent batch graph, which
//! makes the two paths **bitwise identical**. The replay-equivalence
//! property suite in `crates/serve/tests/replay_props.rs` pins that
//! contract across seeds, interleavings, and pool widths.
//!
//! The contract requires edges to arrive in the chronological order the
//! batch sweep would use; the streaming `CtdnBuilder` releases events in
//! exactly that order (time-sorted, arrival order for ties), so the serving
//! layer feeds `advance_session` straight from its release log.

use tpgnn_graph::{NodeFeatures, TemporalEdge};
use tpgnn_tensor::Tape;

use crate::model::TpGnn;
use crate::propagation::PropState;

/// Everything one live session carries between requests: the per-node
/// propagation accumulators (plain values — no tape references, so the
/// state survives across request tapes) plus the released edge log the
/// global extractor replays at score time.
///
/// Memory is `O(nodes × embed_dim + edges)` per session; the extractor
/// replay at score time is `O(edges)`, while each advance is `O(1)` in the
/// session length.
#[derive(Clone, Debug)]
pub struct SessionState {
    prop: PropState,
    edges: Vec<TemporalEdge>,
}

impl SessionState {
    /// Number of edges advanced into this state so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes the session covers.
    pub fn num_nodes(&self) -> usize {
        self.prop.num_nodes()
    }

    /// The edges advanced so far, in advance (= chronological) order.
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Serialize the full session — propagation accumulators plus the
    /// released edge log — to deterministic text. Floats are IEEE-754 bit
    /// patterns, so [`restore`](Self::restore) reproduces the state bitwise
    /// and a spilled-and-restored session scores identically to one that
    /// never left memory.
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        use tpgnn_tensor::ckpt::fmt_f64;
        let mut out = String::from("session-state v1\n");
        let _ = writeln!(out, "edges {}", self.edges.len());
        for e in &self.edges {
            let _ = writeln!(out, "e {} {} {}", e.src, e.dst, fmt_f64(e.time));
        }
        out.push_str(&self.prop.snapshot());
        out
    }

    /// Rebuild a session from [`snapshot`](Self::snapshot) output, bitwise.
    pub fn restore(text: &str) -> Result<Self, String> {
        use tpgnn_tensor::ckpt::parse_f64;
        let mut lines = text.lines();
        let header = lines.next().ok_or("session state: empty text")?;
        if header != "session-state v1" {
            return Err(format!("session state: bad header `{header}`"));
        }
        let count_line = lines.next().ok_or("session state: missing edges line")?;
        let n: usize = count_line
            .strip_prefix("edges ")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("session state: malformed edges line `{count_line}`"))?;
        let mut edges = Vec::with_capacity(n);
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("session state: truncated at edge {i}"))?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 4 || toks[0] != "e" {
                return Err(format!("session state: malformed edge row `{line}`"));
            }
            edges.push(TemporalEdge {
                src: toks[1].parse().map_err(|e| format!("session state: bad src: {e}"))?,
                dst: toks[2].parse().map_err(|e| format!("session state: bad dst: {e}"))?,
                time: parse_f64(toks[3]).map_err(|e| format!("session state: {e}"))?,
            });
        }
        let rest: String = lines.map(|l| format!("{l}\n")).collect();
        let prop = PropState::restore(&rest)?;
        Ok(Self { prop, edges })
    }
}

/// Models that can score a session incrementally, one edge at a time,
/// reproducing their batch prediction bitwise.
///
/// All methods take `&self`: like the batch forward pass, incremental
/// scoring is read-only on the model, so one model instance serves many
/// sessions from many worker threads concurrently (one [`Tape`] per
/// worker).
pub trait IncrementalScorer {
    /// Open a session over the nodes described by `features`.
    ///
    /// Fails when the model configuration has no well-defined incremental
    /// form (the `rand` ablation) or `features` does not match the model's
    /// input dimension. Never panics: the serving layer treats an error as
    /// a refused session, not a crash.
    fn open_session(&self, tape: &mut Tape, features: &NodeFeatures)
        -> Result<SessionState, String>;

    /// Advance the session one step for `edge` (Algorithm 1 loop body).
    ///
    /// Edges must be fed in the chronological order the batch sweep would
    /// use, and endpoints must be valid node indices of the session (the
    /// streaming builder validates both before releasing an event).
    fn advance_session(&self, tape: &mut Tape, state: &mut SessionState, edge: TemporalEdge);

    /// Probability that the session-so-far is a positive graph — bitwise
    /// equal to [`GraphClassifier::predict_proba`] on the batch graph
    /// holding exactly the advanced edges.
    ///
    /// [`GraphClassifier::predict_proba`]: crate::GraphClassifier::predict_proba
    fn score_session(&self, tape: &mut Tape, state: &SessionState) -> f32;
}

impl IncrementalScorer for TpGnn {
    fn open_session(
        &self,
        tape: &mut Tape,
        features: &NodeFeatures,
    ) -> Result<SessionState, String> {
        let prop = self.propagation.init_state(tape, &self.store, features)?;
        Ok(SessionState { prop, edges: Vec::new() })
    }

    fn advance_session(&self, tape: &mut Tape, state: &mut SessionState, edge: TemporalEdge) {
        self.propagation.advance_state(tape, &self.store, &mut state.prop, &edge);
        state.edges.push(edge);
    }

    fn score_session(&self, tape: &mut Tape, state: &SessionState) -> f32 {
        let node_embeds = self.propagation.finalize_state(tape, &state.prop);
        let graph_embed = self.extractor.forward(tape, &self.store, &node_embeds, &state.edges);
        let logit = self.classifier.forward(tape, &self.store, graph_embed);
        let z = tape.value(logit).item();
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AblationVariant, PropagationKind, Readout, TpGnnConfig};
    use crate::model::GraphClassifier;
    use tpgnn_graph::Ctdn;

    fn session_graph(n: usize, seed: u64) -> Ctdn {
        let mut feats = NodeFeatures::zeros(n, 3);
        for v in 0..n {
            let s = (seed as f32 + v as f32) * 0.37;
            feats.row_mut(v).copy_from_slice(&[s.sin(), s.cos(), 0.5]);
        }
        let mut g = Ctdn::new(feats);
        for i in 0..2 * n {
            let src = (i * 7 + seed as usize) % n;
            let dst = (src + 1 + i % (n - 1)) % n;
            g.try_add_edge(src, dst, (i + 1) as f64 * 1.25).unwrap();
        }
        g
    }

    /// The core contract: advancing per edge then scoring reproduces the
    /// batch forward pass bitwise, for every incremental-capable config.
    #[test]
    fn incremental_score_is_bitwise_equal_to_batch() {
        let configs = [
            ("sum", TpGnnConfig::sum(3).with_seed(5)),
            ("gru", TpGnnConfig::gru(3).with_seed(5)),
            ("temp (no f(t))", AblationVariant::Temp.apply(TpGnnConfig::sum(3))),
            ("w/o tem", {
                let mut c = TpGnnConfig::sum(3);
                c.propagation = PropagationKind::None;
                c
            }),
            ("transformer readout", {
                let mut c = TpGnnConfig::sum(3);
                c.readout = Readout::TransformerExtractor;
                c
            }),
            ("meanpool readout", {
                let mut c = TpGnnConfig::gru(3);
                c.readout = Readout::MeanPool;
                c
            }),
        ];
        for (label, cfg) in configs {
            let mut model = TpGnn::new(cfg);
            for seed in 0..4u64 {
                let mut g = session_graph(5, seed);
                let batch = model.predict_proba(&mut g);

                let mut tape = Tape::new();
                let mut state = model.open_session(&mut tape, g.features()).expect(label);
                for e in g.edges_chronological().to_vec() {
                    tape.reset();
                    model.advance_session(&mut tape, &mut state, e);
                }
                tape.reset();
                let inc = model.score_session(&mut tape, &state);
                assert_eq!(
                    batch.to_bits(),
                    inc.to_bits(),
                    "{label}, seed {seed}: batch {batch} vs incremental {inc}"
                );
            }
        }
    }

    /// Mid-session scores equal the batch prediction on the prefix graph —
    /// the early-warning contract of the serving layer.
    #[test]
    fn prefix_scores_match_prefix_batch() {
        let mut model = TpGnn::new(TpGnnConfig::gru(3).with_seed(9));
        let mut g = session_graph(4, 2);
        let edges = g.edges_chronological().to_vec();

        let mut tape = Tape::new();
        let mut state = model.open_session(&mut tape, g.features()).unwrap();
        for (i, e) in edges.iter().enumerate() {
            tape.reset();
            model.advance_session(&mut tape, &mut state, *e);
            tape.reset();
            let inc = model.score_session(&mut tape, &state);

            let mut prefix = Ctdn::new(g.features().clone());
            for p in &edges[..=i] {
                prefix.try_add_edge(p.src, p.dst, p.time).unwrap();
            }
            let batch = model.predict_proba(&mut prefix);
            assert_eq!(batch.to_bits(), inc.to_bits(), "prefix of {} edges", i + 1);
        }
    }

    /// An opened, never-advanced session scores like the edgeless graph.
    #[test]
    fn empty_session_scores_like_edgeless_graph() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3).with_seed(3));
        let g = session_graph(4, 0);
        let mut empty = Ctdn::new(g.features().clone());
        let batch = model.predict_proba(&mut empty);
        let mut tape = Tape::new();
        let state = model.open_session(&mut tape, g.features()).unwrap();
        let inc = model.score_session(&mut tape, &state);
        assert_eq!(batch.to_bits(), inc.to_bits());
    }

    /// The `rand` ablation has no incremental form and must be refused,
    /// not mis-served.
    #[test]
    fn rand_ablation_is_rejected() {
        let model = TpGnn::new(AblationVariant::Rand.apply(TpGnnConfig::sum(3)));
        let mut tape = Tape::new();
        let err = model.open_session(&mut tape, &NodeFeatures::zeros(3, 3)).unwrap_err();
        assert!(err.contains("rand"), "unhelpful error: {err}");
    }

    /// Mismatched feature width is a typed refusal, not a shape panic deep
    /// in a matmul.
    #[test]
    fn feature_dim_mismatch_is_rejected() {
        let model = TpGnn::new(TpGnnConfig::sum(3));
        let mut tape = Tape::new();
        let err = model.open_session(&mut tape, &NodeFeatures::zeros(3, 5)).unwrap_err();
        assert!(err.contains("feature dim 5"), "unhelpful error: {err}");
    }

    /// Spilling a session to text mid-stream and restoring it is bitwise
    /// invisible: the restored session advances the same suffix to the
    /// identical score as one that never left memory. This is the contract
    /// the serving layer's eviction/recovery path is built on.
    #[test]
    fn snapshot_restore_mid_session_is_bitwise_invisible() {
        let configs = [
            ("sum", TpGnnConfig::sum(3).with_seed(11)),
            ("gru", TpGnnConfig::gru(3).with_seed(11)),
            ("temp (no f(t))", AblationVariant::Temp.apply(TpGnnConfig::sum(3))),
            ("w/o tem", {
                let mut c = TpGnnConfig::sum(3);
                c.propagation = PropagationKind::None;
                c
            }),
        ];
        for (label, cfg) in configs {
            let model = TpGnn::new(cfg);
            let mut g = session_graph(5, 3);
            let edges = g.edges_chronological().to_vec();
            let cut = edges.len() / 2;

            let mut tape = Tape::new();
            let mut live = model.open_session(&mut tape, g.features()).expect(label);
            for e in &edges[..cut] {
                tape.reset();
                model.advance_session(&mut tape, &mut live, *e);
            }
            let text = live.snapshot();
            let mut restored = SessionState::restore(&text).expect(label);
            assert_eq!(restored.snapshot(), text, "{label}: re-snapshot is bitwise-stable");
            assert_eq!(restored.num_edges(), cut);

            for e in &edges[cut..] {
                tape.reset();
                model.advance_session(&mut tape, &mut live, *e);
                model.advance_session(&mut tape, &mut restored, *e);
            }
            tape.reset();
            let a = model.score_session(&mut tape, &live);
            tape.reset();
            let b = model.score_session(&mut tape, &restored);
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: spill changed the score");
        }
    }

    /// Corrupt or truncated session snapshots are typed errors, not panics.
    #[test]
    fn session_restore_rejects_corruption() {
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(1));
        let mut g = session_graph(4, 1);
        let mut tape = Tape::new();
        let mut state = model.open_session(&mut tape, g.features()).unwrap();
        for e in g.edges_chronological().to_vec() {
            tape.reset();
            model.advance_session(&mut tape, &mut state, e);
        }
        let text = state.snapshot();
        assert!(SessionState::restore("").is_err());
        assert!(SessionState::restore("wrong v9\n").is_err());
        assert!(SessionState::restore(&text[..text.len() / 3]).is_err());
        let tampered = text.replacen("prop-state v1", "prop-state v9", 1);
        assert!(SessionState::restore(&tampered).is_err());
    }

    /// `as_incremental` exposes the capability through the shared trait.
    #[test]
    fn as_incremental_is_some_for_tpgnn() {
        let model = TpGnn::new(TpGnnConfig::sum(3));
        assert!(model.as_incremental().is_some());
    }
}
