//! # tpgnn-core
//!
//! The paper's primary contribution: **TP-GNN**, a continuous dynamic graph
//! neural network for dynamic-graph classification.
//!
//! * [`TemporalPropagation`] — the novel message-passing mechanism of
//!   Sec. IV-B (Algorithm 1), with the SUM (eqs. 3–5) and GRU (eq. 6) node
//!   updaters and the Time2Vec time-encoding layer (eq. 2),
//! * [`GlobalExtractor`] — the Global Temporal Embedding Extractor of
//!   Sec. IV-C (GRU over the chronological edge-embedding sequence), plus
//!   the Transformer alternative the paper suggests for large graphs,
//! * [`TpGnn`] — the end-to-end model with the fully-connected classifier
//!   head and BCE loss (eqs. 11–12),
//! * [`GraphClassifier`] — the interface shared by TP-GNN and all twelve
//!   baselines,
//! * [`trainer`] — the Sec. V-D protocol (10 epochs of Adam at `1e-3`,
//!   same-timestamp edges re-shuffled each epoch), plus
//!   [`train_guarded`] — the production path with per-epoch checkpointing,
//!   divergence detection, and rollback + learning-rate backoff recovery
//!   (knobs in [`GuardConfig`], history in [`TrainReport::recoveries`]),
//! * [`AblationVariant`] — the `rand` / `w/o tem` / `temp` / `time2Vec`
//!   variants of Sec. V-F.
//!
//! ```
//! use tpgnn_core::{TpGnn, TpGnnConfig, GraphClassifier};
//! use tpgnn_graph::{Ctdn, NodeFeatures};
//!
//! // A 3-node dynamic network with 3-dimensional node features.
//! let mut g = Ctdn::new(NodeFeatures::zeros(3, 3));
//! g.try_add_edge(0, 1, 1.0).unwrap();
//! g.try_add_edge(1, 2, 2.0).unwrap();
//! g.try_add_edge(0, 2, 3.0).unwrap();
//!
//! let mut model = TpGnn::new(TpGnnConfig::sum(3));
//! let p = model.predict_proba(&mut g);
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![warn(missing_docs)]

mod config;
mod extractor;
pub mod guard;
mod incremental;
mod model;
mod propagation;
pub mod trainer;

pub use config::{AblationVariant, PropagationKind, Readout, TpGnnConfig, UpdaterKind};
pub use extractor::GlobalExtractor;
pub use guard::{DivergenceReason, GuardConfig, RecoveryEvent};
pub use incremental::{IncrementalScorer, SessionState};
pub use model::{GraphClassifier, TpGnn, GRAD_CLIP};
pub use propagation::TemporalPropagation;
pub use trainer::{predict_all, train, train_guarded, TrainConfig, TrainReport};
