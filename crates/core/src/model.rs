//! The end-to-end TP-GNN model (Sec. IV) and the [`GraphClassifier`]
//! interface shared with every baseline.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::Ctdn;
use tpgnn_nn::Linear;
use tpgnn_tensor::{Adam, Optimizer, ParamStore, Tape, Tensor, Var};

use crate::config::TpGnnConfig;
use crate::extractor::GlobalExtractor;
use crate::propagation::TemporalPropagation;

/// Maximum global gradient norm before clipping.
///
/// Loose on purpose: BPTT through a 100+-step extractor GRU produces
/// gradient norms that scale with the edge count, and a tight clip throttles
/// the effective learning rate on the dense trajectory datasets. 25 only
/// catches genuine spikes.
pub const GRAD_CLIP: f32 = 10.0;

/// Common interface for TP-GNN and all baselines: binary dynamic-graph
/// classification (Definition 3).
pub trait GraphClassifier {
    /// Human-readable model name as used in the paper's tables.
    fn name(&self) -> String;

    /// One training pass over `train` in the given order (each entry is a
    /// graph and its 0.0/1.0 target). Returns the mean loss over the pass.
    fn fit_epoch(&mut self, train: &mut [(Ctdn, f32)]) -> f32;

    /// Probability that `g` is a positive (label 1) graph.
    fn predict_proba(&mut self, g: &mut Ctdn) -> f32;

    /// Probabilities for a batch of graphs, in input order.
    ///
    /// The default runs [`GraphClassifier::predict_proba`] sequentially;
    /// models whose forward pass is `&self`-clean (TP-GNN) override this to
    /// fan out over the pool with one tape per worker. Implementations must
    /// return results bitwise-identical to the sequential loop.
    fn predict_proba_batch(&mut self, graphs: &mut [Ctdn]) -> Vec<f32> {
        graphs.iter_mut().map(|g| self.predict_proba(g)).collect()
    }

    /// Hard decision at the 0.5 threshold.
    fn predict(&mut self, g: &mut Ctdn) -> bool {
        self.predict_proba(g) >= 0.5
    }

    /// Override the optimizer learning rate (paper default `1e-3`).
    ///
    /// The evaluation harness raises this uniformly for every model to
    /// compensate for the deliberately scaled-down corpora (the paper takes
    /// ~1000× more gradient steps); a no-op for non-gradient models.
    fn set_learning_rate(&mut self, _lr: f32) {}

    /// The current optimizer learning rate, or `None` for non-gradient
    /// models. The guarded trainer reads this to compute the backoff rate
    /// after a rollback.
    fn learning_rate(&self) -> Option<f32> {
        None
    }

    /// Serialize the model's complete training state — weights, optimizer
    /// moments and step count — to the in-repo line format, or `None` for
    /// models without restorable state (e.g. the Spectral baseline).
    ///
    /// The guarded trainer snapshots this after every good epoch so a
    /// diverged epoch can be rolled back; restoring must resume training
    /// bitwise-identically.
    fn save_state(&self) -> Option<String> {
        None
    }

    /// Restore training state from a [`GraphClassifier::save_state`] string.
    ///
    /// The default (for models that don't checkpoint) reports an error
    /// rather than silently succeeding.
    fn load_state(&mut self, _state: &str) -> Result<(), String> {
        Err("model does not support state checkpointing".into())
    }

    /// Verify that the model's parameters and accumulated gradients are all
    /// finite, naming the poisoned buffer otherwise. Models without
    /// parameters are vacuously finite.
    fn check_finite(&self) -> Result<(), String> {
        Ok(())
    }

    /// Joint L2 norm of all parameter values, or `None` for models without
    /// a parameter store. Surfaced in per-epoch trace spans.
    fn param_norm(&self) -> Option<f32> {
        None
    }

    /// Pre-clip L2 norm of the most recent gradient, or `None` when the
    /// model has not computed one (or is gradient-free). Surfaced in
    /// per-epoch trace spans.
    fn grad_norm(&self) -> Option<f32> {
        None
    }

    /// The model's incremental per-session scoring interface, or `None`
    /// for batch-only models. The serving layer
    /// (`tpgnn-serve`) requires `Some`; every score it produces is bitwise
    /// equal to [`GraphClassifier::predict_proba`] on the equivalent batch
    /// graph.
    fn as_incremental(&self) -> Option<&dyn crate::IncrementalScorer> {
        None
    }
}

/// TP-GNN: temporal propagation → global temporal embedding extractor →
/// fully-connected classifier (eqs. 11–12).
pub struct TpGnn {
    cfg: TpGnnConfig,
    pub(crate) store: ParamStore,
    pub(crate) propagation: TemporalPropagation,
    pub(crate) extractor: GlobalExtractor,
    pub(crate) classifier: Linear,
    opt: Adam,
    /// Pre-clip gradient norm of the most recent `train_on` step — Adam
    /// zeroes the gradient buffers after stepping, so this is the only
    /// place the norm survives for the trace.
    last_grad_norm: Option<f32>,
    /// The model's reusable autodiff tape: reset (retaining its buffer
    /// pool) at the start of every `train_on`/`predict_proba`, so steady-
    /// state training and inference do not touch the global allocator.
    tape: Tape,
}

impl TpGnn {
    /// Build the model per `cfg` (parameters seeded from `cfg.seed`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`TpGnnConfig::validate`]).
    pub fn new(cfg: TpGnnConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TP-GNN config: {e}");
        }
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let propagation = TemporalPropagation::new(&mut store, &cfg, &mut rng);
        let extractor = GlobalExtractor::new(&mut store, &cfg, cfg.node_embed_dim(), &mut rng);
        let classifier = Linear::new(&mut store, "clf", extractor.out_dim(), 1, &mut rng);
        Self {
            cfg,
            store,
            propagation,
            extractor,
            classifier,
            opt: Adam::new(1e-3),
            last_grad_norm: None,
            tape: Tape::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TpGnnConfig {
        &self.cfg
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Forward pass to the classification logit (pre-sigmoid eq. 11).
    fn forward_logit(&self, tape: &mut Tape, g: &mut Ctdn) -> Var {
        let node_embeds = self.propagation.forward(tape, &self.store, g);
        let edges = g.edges_chronological().to_vec();
        let graph_embed = self.extractor.forward(tape, &self.store, &node_embeds, &edges);
        self.classifier.forward(tape, &self.store, graph_embed)
    }

    /// The graph embedding `g = f(G)` (Definition 2) as a plain tensor.
    pub fn embed_graph(&self, g: &mut Ctdn) -> Tensor {
        let mut tape = Tape::new();
        let node_embeds = self.propagation.forward(&mut tape, &self.store, g);
        let edges = g.edges_chronological().to_vec();
        let emb = self.extractor.forward(&mut tape, &self.store, &node_embeds, &edges);
        tape.value(emb).clone()
    }

    /// Serialize the model's weights to a plain-text checkpoint.
    pub fn save_weights(&self) -> String {
        self.store.to_checkpoint()
    }

    /// Restore weights from a checkpoint produced by
    /// [`TpGnn::save_weights`] for a model of the **same configuration**.
    /// Optimizer state is reset.
    pub fn load_weights(&mut self, checkpoint: &str) -> Result<(), String> {
        self.store.load_checkpoint(checkpoint)
    }

    /// One optimization step on a single graph; returns the BCE loss.
    ///
    /// When the tape's non-finite guard is active (see
    /// [`Tape::set_default_guard`] and `GuardConfig::scan_tapes`), a forward
    /// or backward pass that produces a NaN/Inf is reported through
    /// [`crate::guard::record_fault`] with op-level attribution and the
    /// optimizer step is skipped, so the blow-up cannot poison the
    /// parameters.
    pub fn train_on(&mut self, g: &mut Ctdn, target: f32) -> f32 {
        // Lease the model's tape out so `self` stays borrowable; reset
        // recycles the previous pass's buffers and re-samples the guard.
        let mut tape = std::mem::take(&mut self.tape);
        tape.reset();
        let loss_val = self.train_on_tape(&mut tape, g, target);
        self.tape = tape;
        loss_val
    }

    fn train_on_tape(&mut self, tape: &mut Tape, g: &mut Ctdn, target: f32) -> f32 {
        let logit = self.forward_logit(tape, g);
        let loss = tape.bce_with_logits(logit, target);
        let loss_val = tape.value(loss).item();
        if let Some(e) = tape.non_finite() {
            crate::guard::record_fault(format!("{}: {e}", self.name()));
            return loss_val;
        }
        let grads = tape.backward(loss);
        if let Some(e) = grads.non_finite() {
            crate::guard::record_fault(format!("{}: backward: {e}", self.name()));
            tape.absorb(grads);
            return loss_val;
        }
        tape.flush_grads(&grads, &mut self.store);
        tape.absorb(grads);
        self.last_grad_norm = Some(self.store.clip_grad_norm(GRAD_CLIP));
        self.opt.step(&mut self.store);
        loss_val
    }
}

impl GraphClassifier for TpGnn {
    fn name(&self) -> String {
        match self.cfg.updater {
            crate::config::UpdaterKind::Sum => "TP-GNN-SUM".to_string(),
            crate::config::UpdaterKind::Gru => "TP-GNN-GRU".to_string(),
        }
    }

    fn fit_epoch(&mut self, train: &mut [(Ctdn, f32)]) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (g, target) in train.iter_mut() {
            total += self.train_on(g, *target);
        }
        total / train.len() as f32
    }

    fn predict_proba(&mut self, g: &mut Ctdn) -> f32 {
        let mut tape = std::mem::take(&mut self.tape);
        tape.reset();
        let logit = self.forward_logit(&mut tape, g);
        let z = tape.value(logit).item();
        self.tape = tape;
        1.0 / (1.0 + (-z).exp())
    }

    fn predict_proba_batch(&mut self, graphs: &mut [Ctdn]) -> Vec<f32> {
        // The TP-GNN forward pass is `&self`-clean, so graphs fan out over
        // the pool with one worker-local tape each. `map_mut` collects in
        // input order and the per-graph arithmetic is untouched, so the
        // result is bitwise-identical to the sequential loop.
        let this: &TpGnn = self;
        tpgnn_par::map_mut(graphs, Tape::new, |tape, _i, g| {
            tape.reset();
            let logit = this.forward_logit(tape, g);
            let z = tape.value(logit).item();
            1.0 / (1.0 + (-z).exp())
        })
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.opt.lr = lr;
    }

    fn learning_rate(&self) -> Option<f32> {
        Some(self.opt.lr)
    }

    fn save_state(&self) -> Option<String> {
        Some(tpgnn_tensor::optim::save_training_state(&self.opt, &self.store))
    }

    fn load_state(&mut self, state: &str) -> Result<(), String> {
        tpgnn_tensor::optim::load_training_state(&mut self.opt, &mut self.store, state)
            .map_err(|e| e.to_string())
    }

    fn check_finite(&self) -> Result<(), String> {
        self.store.check_finite().map_err(|e| format!("{}: {e}", self.name()))
    }

    fn param_norm(&self) -> Option<f32> {
        Some(self.store.param_norm())
    }

    fn grad_norm(&self) -> Option<f32> {
        self.last_grad_norm
    }

    fn as_incremental(&self) -> Option<&dyn crate::IncrementalScorer> {
        // Except under the `rand` ablation, whose per-call edge shuffle has
        // no incremental form — `open_session` reports that as an error.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AblationVariant, UpdaterKind};
    use tpgnn_graph::NodeFeatures;

    fn toy_graph(order_flip: bool) -> Ctdn {
        let mut feats = NodeFeatures::zeros(4, 3);
        for v in 0..4 {
            feats.row_mut(v).copy_from_slice(&[0.2 * v as f32, 0.5, 1.0 - 0.1 * v as f32]);
        }
        let mut g = Ctdn::new(feats);
        if order_flip {
            g.try_add_edge(2, 3, 1.0).unwrap();
            g.try_add_edge(1, 2, 2.0).unwrap();
            g.try_add_edge(0, 1, 3.0).unwrap();
        } else {
            g.try_add_edge(0, 1, 1.0).unwrap();
            g.try_add_edge(1, 2, 2.0).unwrap();
            g.try_add_edge(2, 3, 3.0).unwrap();
        }
        g
    }

    #[test]
    fn construction_and_embedding_shape() {
        for cfg in [TpGnnConfig::sum(3), TpGnnConfig::gru(3)] {
            let model = TpGnn::new(cfg);
            assert!(model.num_params() > 1000);
            let mut g = toy_graph(false);
            let emb = model.embed_graph(&mut g);
            assert_eq!(emb.shape(), (1, 32));
            assert!(!emb.has_non_finite());
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TpGnn::new(TpGnnConfig::sum(3)).name(), "TP-GNN-SUM");
        assert_eq!(TpGnn::new(TpGnnConfig::gru(3)).name(), "TP-GNN-GRU");
    }

    #[test]
    fn predict_proba_batch_is_bitwise_identical_across_thread_counts() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3).with_seed(11));
        let mut graphs: Vec<Ctdn> = (0..6).map(|i| toy_graph(i % 2 == 1)).collect();
        let sequential: Vec<u32> = graphs
            .iter_mut()
            .map(|g| model.predict_proba(g).to_bits())
            .collect();
        for threads in [1, 4] {
            let batch: Vec<u32> = tpgnn_par::with_thread_override(threads, || {
                model.predict_proba_batch(&mut graphs)
            })
            .into_iter()
            .map(f32::to_bits)
            .collect();
            assert_eq!(sequential, batch, "threads={threads}");
        }
    }

    #[test]
    fn embedding_distinguishes_edge_order() {
        // The model's raison d'être: same static graph, different temporal
        // order, different embedding.
        for cfg in [TpGnnConfig::sum(3), TpGnnConfig::gru(3)] {
            let model = TpGnn::new(cfg);
            let mut a = toy_graph(false);
            let mut b = toy_graph(true);
            let ea = model.embed_graph(&mut a);
            let eb = model.embed_graph(&mut b);
            assert!(
                ea.sub(&eb).max_abs() > 1e-6,
                "{} cannot distinguish edge orders",
                model.name()
            );
        }
    }

    #[test]
    fn rand_ablation_cannot_distinguish_edge_order_distributionally() {
        // The `rand` variant shuffles the edge order per forward call, so its
        // embeddings are not a function of the temporal order at all —
        // verified here by checking that feeding the same graph twice already
        // varies as much as feeding the two differently-ordered graphs.
        let cfg = AblationVariant::Rand.apply(TpGnnConfig::sum(3));
        let model = TpGnn::new(cfg);
        let mut a = toy_graph(false);
        let e1 = model.embed_graph(&mut a);
        let e2 = model.embed_graph(&mut a);
        assert!(e1.sub(&e2).max_abs() > 0.0, "rand variant resamples orders");
    }

    #[test]
    fn learns_to_separate_order_flip() {
        // Train TP-GNN-SUM to classify chain direction — the minimal version
        // of the paper's task. 60 steps must push the loss well down.
        let mut model = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
        model.set_learning_rate(0.01);
        let mut train: Vec<(Ctdn, f32)> = (0..10)
            .map(|i| (toy_graph(i % 2 == 1), if i % 2 == 1 { 0.0 } else { 1.0 }))
            .collect();
        let first = model.fit_epoch(&mut train);
        let mut last = first;
        for _ in 0..30 {
            last = model.fit_epoch(&mut train);
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        let mut pos = toy_graph(false);
        let mut neg = toy_graph(true);
        assert!(model.predict_proba(&mut pos) > 0.5);
        assert!(model.predict_proba(&mut neg) < 0.5);
    }

    #[test]
    fn gru_updater_also_learns() {
        let mut model = TpGnn::new(TpGnnConfig::gru(3).with_seed(9));
        model.set_learning_rate(0.01);
        let mut train: Vec<(Ctdn, f32)> = (0..10)
            .map(|i| (toy_graph(i % 2 == 1), if i % 2 == 1 { 0.0 } else { 1.0 }))
            .collect();
        for _ in 0..40 {
            model.fit_epoch(&mut train);
        }
        let mut pos = toy_graph(false);
        let mut neg = toy_graph(true);
        assert!(model.predict_proba(&mut pos) > 0.5);
        assert!(model.predict_proba(&mut neg) < 0.5);
    }

    #[test]
    fn all_ablation_variants_run_end_to_end() {
        for variant in AblationVariant::ALL {
            for updater in [UpdaterKind::Sum, UpdaterKind::Gru] {
                let mut cfg = TpGnnConfig::sum(3);
                cfg.updater = updater;
                let cfg = variant.apply(cfg);
                let mut model = TpGnn::new(cfg);
                let mut train = vec![(toy_graph(false), 1.0), (toy_graph(true), 0.0)];
                let loss = model.fit_epoch(&mut train);
                assert!(loss.is_finite(), "{variant:?}/{updater:?} diverged");
                let p = model.predict_proba(&mut toy_graph(false));
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn transformer_readout_runs() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.readout = crate::config::Readout::TransformerExtractor;
        let mut model = TpGnn::new(cfg);
        let mut train = vec![(toy_graph(false), 1.0), (toy_graph(true), 0.0)];
        let loss = model.fit_epoch(&mut train);
        assert!(loss.is_finite());
    }

    #[test]
    fn weight_checkpoint_roundtrip_preserves_predictions() {
        let mut trained = TpGnn::new(TpGnnConfig::sum(3).with_seed(5));
        trained.set_learning_rate(0.01);
        let mut train = vec![(toy_graph(false), 1.0), (toy_graph(true), 0.0)];
        for _ in 0..10 {
            trained.fit_epoch(&mut train);
        }
        let checkpoint = trained.save_weights();

        let mut fresh = TpGnn::new(TpGnnConfig::sum(3).with_seed(99));
        fresh.load_weights(&checkpoint).expect("load");
        let mut g = toy_graph(false);
        assert!(
            (trained.predict_proba(&mut g) - fresh.predict_proba(&mut g)).abs() < 1e-6,
            "restored model must predict identically"
        );
        // Mismatched architecture must be rejected.
        let mut wrong = TpGnn::new(TpGnnConfig::gru(3));
        assert!(wrong.load_weights(&checkpoint).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid TP-GNN config")]
    fn invalid_config_rejected() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.embed_dim = 0;
        let _ = TpGnn::new(cfg);
    }
}
