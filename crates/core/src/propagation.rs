//! Temporal Propagation — Algorithm 1 / Sec. IV-B of the paper.
//!
//! Messages pass along each temporal edge in chronological order, following
//! the direction of information flow. Two node-feature updaters are
//! provided: SUM (eqs. 3–5) and GRU (eq. 6). The output is the local node
//! embedding matrix `H = tanh(Ĥ)` (line 19 of Algorithm 1), materialized as
//! one `Var` per node so downstream readouts can address endpoints directly.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, NodeFeatures, TemporalEdge};
use tpgnn_nn::{GruCell, Linear, Time2Vec};
use tpgnn_tensor::{ParamStore, Tape, Tensor, Var};

use crate::config::{PropagationKind, TpGnnConfig, UpdaterKind};

enum Updater {
    Sum,
    Gru(GruCell),
}

/// The temporal propagation module: node-feature embedding layer (eq. 1),
/// time encoding layer (eq. 2), and the propagation sweep.
pub struct TemporalPropagation {
    embed: Linear,
    t2v: Option<Time2Vec>,
    updater: Updater,
    kind: PropagationKind,
    time_dim: usize,
    /// Deterministic seed stream for the `rand` ablation's random edge
    /// order. Atomic (not `Cell`) so a shared model can run forward passes
    /// from several threads; the `rand` variant is per-call stochastic by
    /// design, so tick handout order does not need to be schedule-stable.
    rand_counter: std::sync::atomic::AtomicU64,
    rand_seed: u64,
    /// Constant pre-scaling of the SUM updater's inputs (see `sweep`).
    sum_scale: f32,
}

impl TemporalPropagation {
    /// Register the module's parameters per `cfg`.
    pub fn new(store: &mut ParamStore, cfg: &TpGnnConfig, rng: &mut StdRng) -> Self {
        let embed = Linear::new(store, "tp.embed", cfg.feature_dim, cfg.embed_dim, rng);
        let t2v = cfg
            .use_time_encoding
            .then(|| Time2Vec::new(store, "tp.t2v", cfg.time_dim, rng));
        let updater = match cfg.updater {
            UpdaterKind::Sum => Updater::Sum,
            UpdaterKind::Gru => {
                let in_dim = cfg.embed_dim + if cfg.use_time_encoding { cfg.time_dim } else { 0 };
                Updater::Gru(GruCell::new(store, "tp.gru", in_dim, cfg.embed_dim, rng))
            }
        };
        Self {
            embed,
            t2v,
            updater,
            kind: cfg.propagation,
            time_dim: cfg.time_dim,
            rand_counter: std::sync::atomic::AtomicU64::new(0),
            rand_seed: cfg.seed,
            sum_scale: cfg.sum_scale,
        }
    }

    /// Embed every node's raw features (eq. 1) and return one `(1, q)` `Var`
    /// per node. One matmul over the full feature matrix, then per-node row
    /// extraction — the incremental path reuses this verbatim so its initial
    /// states are bitwise-identical to the batch sweep's.
    fn embed_nodes(&self, tape: &mut Tape, store: &ParamStore, features: &NodeFeatures) -> Vec<Var> {
        let n = features.num_nodes();
        let q = features.dim();
        let raw = Tensor::from_vec(n, q, features.data().to_vec());
        let raw_var = tape.input(raw);
        let embedded = self.embed.forward(tape, store, raw_var); // (n, embed)
        (0..n).map(|v| tape.row(embedded, v)).collect()
    }

    /// Run the propagation sweep, returning the local node embedding vectors
    /// `h(v)` (already passed through `tanh`, line 19 of Algorithm 1).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let node_embeds = self.embed_nodes(tape, store, g.features());
        match self.kind {
            PropagationKind::None => {
                // `w/o tem`: the embedded raw features are the node states.
                node_embeds.iter().map(|&h| tape.tanh(h)).collect()
            }
            PropagationKind::Temporal => {
                let edges = g.edges_chronological().to_vec();
                self.sweep(tape, store, node_embeds, &edges)
            }
            PropagationKind::Random => {
                // `rand` ablation: neighbors aggregated in a random order;
                // timestamps carry no meaning, so the edge list is permuted.
                let mut edges = g.edges_chronological().to_vec();
                let tick = self.rand_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut rng = StdRng::seed_from_u64(self.rand_seed ^ (tick.wrapping_mul(0x9e37_79b9)));
                edges.shuffle(&mut rng);
                self.sweep(tape, store, node_embeds, &edges)
            }
        }
    }

    /// The inner message-passing loop of Algorithm 1 over a fixed edge order.
    fn sweep(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        node_embeds: Vec<Var>,
        edges: &[TemporalEdge],
    ) -> Vec<Var> {
        match &self.updater {
            Updater::Sum => {
                // X̂_{t_0} := X (line 5); M̂_{t_0} := 0 (line 4).
                // Numerical stability at laptop scale: eqs. 3–4 accumulate
                // unboundedly, and with the repeated-interaction density of
                // HDFS/Brightkite the accumulated sums leave tanh's active
                // range within a few edges, freezing gradients. Scaling the
                // (learnable) embedding and time-encoding outputs by a
                // constant folds into their initialization — same model
                // family, usable conditioning. See DESIGN.md §2.
                let mut x_hat: Vec<Var> = node_embeds
                    .iter()
                    .map(|&h| tape.scale(h, self.sum_scale))
                    .collect();
                let mut m_hat: Option<Vec<Var>> = self.t2v.as_ref().map(|_| {
                    (0..x_hat.len())
                        .map(|_| tape.input(Tensor::zeros(1, self.time_dim)))
                        .collect()
                });
                for e in edges {
                    // X̂(v) := X̂(u) + X̂(v)                         (eq. 3)
                    x_hat[e.dst] = tape.add(x_hat[e.src], x_hat[e.dst]);
                    if let (Some(t2v), Some(m)) = (self.t2v.as_ref(), m_hat.as_mut()) {
                        // M̂(v) := f(t) + M̂(v)                      (eq. 4)
                        let ft_raw = t2v.encode(tape, store, e.time);
                        let ft = tape.scale(ft_raw, self.sum_scale);
                        m[e.dst] = tape.add(ft, m[e.dst]);
                    }
                }
                // Ĥ := X̂ ⊕ M̂ (eq. 5); H := tanh(Ĥ) (line 19).
                x_hat
                    .into_iter()
                    .enumerate()
                    .map(|(v, x)| {
                        let h = match &m_hat {
                            Some(m) => tape.concat_cols(x, m[v]),
                            None => x,
                        };
                        tape.tanh(h)
                    })
                    .collect()
            }
            Updater::Gru(cell) => {
                // ĥ_{t_0}(v) := X(v) (line 13).
                let mut h = node_embeds;
                for e in edges {
                    // ĥ(v) := GRU(ĥ(v), [ĥ(u) ⊕ f(t)])              (eq. 6)
                    let msg = match self.t2v.as_ref() {
                        Some(t2v) => {
                            let ft = t2v.encode(tape, store, e.time);
                            tape.concat_cols(h[e.src], ft)
                        }
                        None => h[e.src],
                    };
                    h[e.dst] = cell.forward(tape, store, h[e.dst], msg);
                }
                h.into_iter().map(|hv| tape.tanh(hv)).collect()
            }
        }
    }

    /// Initialize incremental per-node propagation state for one session.
    ///
    /// Runs exactly the batch sweep's initialization — embed all node
    /// features in one matmul (eq. 1), then pre-scale (SUM) or keep (GRU)
    /// per-node rows — and stores the *values*, so per-edge
    /// [`advance_state`](Self::advance_state) calls continue the identical
    /// arithmetic. The `rand` ablation re-permutes the edge order on every
    /// forward call, so it has no well-defined incremental form and is
    /// rejected.
    pub(crate) fn init_state(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        features: &NodeFeatures,
    ) -> Result<PropState, String> {
        if matches!(self.kind, PropagationKind::Random) {
            return Err("the `rand` ablation re-shuffles edges per call and cannot be \
                        advanced incrementally"
                .to_string());
        }
        if features.dim() != self.embed.in_dim() {
            return Err(format!(
                "feature dim {} does not match the model's input dim {}",
                features.dim(),
                self.embed.in_dim()
            ));
        }
        let rows = self.embed_nodes(tape, store, features);
        let state = match (self.kind, &self.updater) {
            // `w/o tem`: edges never touch the node states.
            (PropagationKind::None, _) => PropState {
                frozen: true,
                sum: false,
                x: rows.iter().map(|&r| tape.value(r).clone()).collect(),
                m: None,
            },
            (_, Updater::Sum) => PropState {
                frozen: false,
                sum: true,
                // X̂_{t_0} := X (line 5), pre-scaled exactly as in `sweep`.
                x: rows
                    .iter()
                    .map(|&r| {
                        let s = tape.scale(r, self.sum_scale);
                        tape.value(s).clone()
                    })
                    .collect(),
                // M̂_{t_0} := 0 (line 4).
                m: self
                    .t2v
                    .as_ref()
                    .map(|_| (0..rows.len()).map(|_| Tensor::zeros(1, self.time_dim)).collect()),
            },
            (_, Updater::Gru(_)) => PropState {
                frozen: false,
                sum: false,
                // ĥ_{t_0}(v) := X(v) (line 13).
                x: rows.iter().map(|&r| tape.value(r).clone()).collect(),
                m: None,
            },
        };
        Ok(state)
    }

    /// Advance the incremental state one step for edge `e` — the loop body
    /// of Algorithm 1 (eqs. 3–4 for SUM, eq. 6 for GRU) applied to stored
    /// values. Edges must arrive in the chronological order the batch sweep
    /// would use; the streaming builder's release order guarantees this.
    pub(crate) fn advance_state(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        state: &mut PropState,
        e: &TemporalEdge,
    ) {
        if state.frozen {
            return; // `w/o tem`: node states ignore edges.
        }
        if state.sum {
            // X̂(v) := X̂(u) + X̂(v)                                  (eq. 3)
            let xs = tape.input(state.x[e.src].clone());
            let xd = tape.input(state.x[e.dst].clone());
            let sum = tape.add(xs, xd);
            state.x[e.dst] = tape.value(sum).clone();
            if let (Some(t2v), Some(m)) = (self.t2v.as_ref(), state.m.as_mut()) {
                // M̂(v) := f(t) + M̂(v)                               (eq. 4)
                let ft_raw = t2v.encode(tape, store, e.time);
                let ft = tape.scale(ft_raw, self.sum_scale);
                let md = tape.input(m[e.dst].clone());
                let acc = tape.add(ft, md);
                m[e.dst] = tape.value(acc).clone();
            }
        } else {
            // ĥ(v) := GRU(ĥ(v), [ĥ(u) ⊕ f(t)])                       (eq. 6)
            let Updater::Gru(cell) = &self.updater else {
                unreachable!("non-frozen, non-sum state implies the GRU updater");
            };
            let hs = tape.input(state.x[e.src].clone());
            let hd = tape.input(state.x[e.dst].clone());
            let msg = match self.t2v.as_ref() {
                Some(t2v) => {
                    let ft = t2v.encode(tape, store, e.time);
                    tape.concat_cols(hs, ft)
                }
                None => hs,
            };
            let out = cell.forward(tape, store, hd, msg);
            state.x[e.dst] = tape.value(out).clone();
        }
    }

    /// Materialize the final node embeddings `H = tanh(Ĥ)` (line 19, eq. 5
    /// concat for SUM) from the incremental state, as one `Var` per node in
    /// node-index order — the exact tensors the batch sweep hands the
    /// global extractor.
    pub(crate) fn finalize_state(&self, tape: &mut Tape, state: &PropState) -> Vec<Var> {
        (0..state.x.len())
            .map(|v| {
                let x = tape.input(state.x[v].clone());
                let h = match &state.m {
                    Some(m) => {
                        let mv = tape.input(m[v].clone());
                        tape.concat_cols(x, mv)
                    }
                    None => x,
                };
                tape.tanh(h)
            })
            .collect()
    }
}

/// Incremental per-session propagation state: the pre-activation node
/// accumulators of Algorithm 1 as plain values (no tape references), so a
/// session can live across thousands of request tapes.
///
/// For SUM this is `X̂` plus (with time encoding) `M̂`; for GRU the hidden
/// states `ĥ`; for the `w/o tem` ablation the embedded features, frozen.
#[derive(Clone, Debug)]
pub struct PropState {
    /// `w/o tem`: edges never modify the state.
    frozen: bool,
    /// SUM updater (eqs. 3–5) vs GRU (eq. 6).
    sum: bool,
    x: Vec<Tensor>,
    m: Option<Vec<Tensor>>,
}

impl PropState {
    /// Number of nodes the state covers.
    pub fn num_nodes(&self) -> usize {
        self.x.len()
    }

    /// Serialize the accumulators to deterministic text: every `f32` as its
    /// IEEE-754 bit pattern, so [`restore`](Self::restore) is bitwise — the
    /// contract the serving layer's spill/recovery path needs to keep
    /// evicted sessions indistinguishable from resident ones.
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        use tpgnn_tensor::ckpt::fmt_f32;
        let xd = self.x.first().map_or(0, |t| t.shape().1);
        let md = self.m.as_ref().and_then(|m| m.first()).map(|t| t.shape().1);
        let mut out = String::from("prop-state v1\n");
        let _ = writeln!(
            out,
            "meta {} {} {} {} {}",
            u8::from(self.frozen),
            u8::from(self.sum),
            self.x.len(),
            xd,
            md.map_or("-".to_string(), |d| d.to_string())
        );
        for row in &self.x {
            out.push('x');
            for v in row.data() {
                out.push(' ');
                out.push_str(&fmt_f32(*v));
            }
            out.push('\n');
        }
        if let Some(m) = &self.m {
            for row in m {
                out.push('m');
                for v in row.data() {
                    out.push(' ');
                    out.push_str(&fmt_f32(*v));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Rebuild a state from [`snapshot`](Self::snapshot) output, bitwise.
    pub fn restore(text: &str) -> Result<Self, String> {
        use tpgnn_tensor::ckpt::parse_f32;
        let mut lines = text.lines();
        let header = lines.next().ok_or("prop state: empty text")?;
        if header != "prop-state v1" {
            return Err(format!("prop state: bad header `{header}`"));
        }
        let meta = lines.next().ok_or("prop state: missing meta line")?;
        let toks: Vec<&str> = meta.split_whitespace().collect();
        if toks.len() != 6 || toks[0] != "meta" {
            return Err(format!("prop state: malformed meta line `{meta}`"));
        }
        let flag = |tok: &str| -> Result<bool, String> {
            match tok {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(format!("prop state: bad flag `{other}`")),
            }
        };
        let num = |tok: &str| -> Result<usize, String> {
            tok.parse().map_err(|e| format!("prop state: bad count `{tok}`: {e}"))
        };
        let (frozen, sum, n, xd) = (flag(toks[1])?, flag(toks[2])?, num(toks[3])?, num(toks[4])?);
        let md = if toks[5] == "-" { None } else { Some(num(toks[5])?) };

        let mut read_rows = |tag: &str, dim: usize| -> Result<Vec<Tensor>, String> {
            (0..n)
                .map(|i| {
                    let line = lines
                        .next()
                        .ok_or_else(|| format!("prop state: truncated at `{tag}` row {i}"))?;
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    if toks.first() != Some(&tag) || toks.len() != dim + 1 {
                        return Err(format!("prop state: malformed `{tag}` row `{line}`"));
                    }
                    let vals = toks[1..]
                        .iter()
                        .map(|t| parse_f32(t))
                        .collect::<Result<Vec<f32>, _>>()
                        .map_err(|e| format!("prop state: {e}"))?;
                    Ok(Tensor::from_vec(1, dim, vals))
                })
                .collect()
        };
        let x = read_rows("x", xd)?;
        let m = md.map(|d| read_rows("m", d)).transpose()?;
        Ok(Self { frozen, sum, x, m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_graph::NodeFeatures;

    fn make(cfg: &TpGnnConfig) -> (ParamStore, TemporalPropagation) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tp = TemporalPropagation::new(&mut store, cfg, &mut rng);
        (store, tp)
    }

    fn chain_graph(n: usize) -> Ctdn {
        let mut feats = NodeFeatures::zeros(n, 3);
        for v in 0..n {
            feats.row_mut(v).copy_from_slice(&[v as f32 / n as f32, 0.5, 0.0]);
        }
        let mut g = Ctdn::new(feats);
        for i in 0..n - 1 {
            g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
        }
        g
    }

    #[test]
    fn sum_output_dims() {
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(5);
        let mut tape = Tape::new();
        let h = tp.forward(&mut tape, &store, &mut g);
        assert_eq!(h.len(), 5);
        for hv in &h {
            assert_eq!(hv.shape(), (1, 38)); // embed 32 + time 6
            assert!(tape.value(*hv).data().iter().all(|&x| x.abs() <= 1.0));
        }
    }

    #[test]
    fn gru_output_dims() {
        let cfg = TpGnnConfig::gru(3);
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(4);
        let mut tape = Tape::new();
        let h = tp.forward(&mut tape, &store, &mut g);
        assert_eq!(h.len(), 4);
        for hv in &h {
            assert_eq!(hv.shape(), (1, 32));
        }
    }

    /// The operational half of Theorem 1: perturbing X(u) changes h(v) iff
    /// u is influential to v.
    #[test]
    fn theorem1_influence_iff_dependence() {
        for cfg in [TpGnnConfig::sum(3), TpGnnConfig::gru(3)] {
            let (mut store, tp) = make(&cfg);
            // Fig. 1-like graph: influence is partial.
            let mut feats = NodeFeatures::zeros(6, 3);
            for v in 0..6 {
                feats.row_mut(v).copy_from_slice(&[0.1 * v as f32, 0.3, 0.7]);
            }
            let mut g = Ctdn::new(feats);
            g.try_add_edge(0, 1, 1.0).unwrap();
            g.try_add_edge(1, 2, 2.0).unwrap();
            g.try_add_edge(3, 4, 3.0).unwrap();
            // Node 5 is isolated; nodes 3,4 form a separate component.
            let inf = tpgnn_graph::InfluenceAnalysis::compute(&mut g);

            let run = |store: &ParamStore, g: &mut Ctdn| -> Vec<Tensor> {
                let mut tape = Tape::new();
                let h = tp.forward(&mut tape, store, g);
                h.iter().map(|&hv| tape.value(hv).clone()).collect()
            };
            let base = run(&store, &mut g);

            for u in 0..6 {
                // Perturb X(u) strongly.
                let mut g2 = g.clone();
                for f in g2.features_mut().row_mut(u) {
                    *f += 2.5;
                }
                let pert = run(&store, &mut g2);
                for v in 0..6 {
                    let changed = base[v].sub(&pert[v]).max_abs() > 1e-6;
                    let expected = u == v || inf.is_influential(u, v);
                    assert_eq!(
                        changed, expected,
                        "updater {:?}: perturbing {u} {} h({v})",
                        cfg.updater,
                        if changed { "changed" } else { "did not change" }
                    );
                }
            }
            // Keep store "used" for both configs.
            store.zero_grads();
        }
    }

    #[test]
    fn edge_order_changes_embeddings() {
        // The Fig. 1 motivation: same static topology, different edge order,
        // different node embeddings.
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut feats = NodeFeatures::zeros(4, 3);
        for v in 0..4 {
            feats.row_mut(v).copy_from_slice(&[0.2 * v as f32 + 0.1, 0.5, 0.9]);
        }
        // Order A: 0->1 (t1), 1->2 (t2), 2->3 (t3): chain influence flows.
        let mut ga = Ctdn::new(feats.clone());
        ga.try_add_edge(0, 1, 1.0).unwrap();
        ga.try_add_edge(1, 2, 2.0).unwrap();
        ga.try_add_edge(2, 3, 3.0).unwrap();
        // Order B: same static edges, reversed times: no transitive flow.
        let mut gb = Ctdn::new(feats);
        gb.try_add_edge(2, 3, 1.0).unwrap();
        gb.try_add_edge(1, 2, 2.0).unwrap();
        gb.try_add_edge(0, 1, 3.0).unwrap();

        let run = |g: &mut Ctdn| -> Vec<Tensor> {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            h.iter().map(|&hv| tape.value(hv).clone()).collect()
        };
        let ha = run(&mut ga);
        let hb = run(&mut gb);
        // Node 3's embedding must differ: in A it aggregates 0,1,2; in B only 2.
        assert!(ha[3].sub(&hb[3]).max_abs() > 1e-5);
    }

    #[test]
    fn random_propagation_varies_between_calls() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.propagation = PropagationKind::Random;
        cfg.use_time_encoding = false;
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(8);
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            let vals: Vec<Tensor> = h.iter().map(|&hv| tape.value(hv).clone()).collect();
            Tensor::stack_rows(&vals)
        };
        let a = run(&mut g);
        let b = run(&mut g);
        // The random edge order is re-drawn per call (train-time stochasticity).
        assert!(a.sub(&b).max_abs() > 1e-7, "random aggregation should vary across calls");
    }

    #[test]
    fn no_propagation_ignores_edges() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.propagation = PropagationKind::None;
        let (store, tp) = make(&cfg);
        let mut g1 = chain_graph(5);
        let mut g2 = chain_graph(5);
        // Same features, extra edge in g2: `w/o tem` node states must match.
        g2.try_add_edge(0, 4, 10.0).unwrap();
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            let vals: Vec<Tensor> = h.iter().map(|&hv| tape.value(hv).clone()).collect();
            Tensor::stack_rows(&vals)
        };
        assert_eq!(run(&mut g1), run(&mut g2));
    }

    #[test]
    fn repeated_edges_accumulate_in_sum() {
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut feats = NodeFeatures::zeros(2, 3);
        feats.row_mut(0).copy_from_slice(&[0.5, 0.5, 0.5]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.try_add_edge(0, 1, 1.0).unwrap();
        let mut g2 = Ctdn::new(feats);
        g2.try_add_edge(0, 1, 1.0).unwrap();
        g2.try_add_edge(0, 1, 2.0).unwrap();
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            tape.value(h[1]).clone()
        };
        assert!(run(&mut g1).sub(&run(&mut g2)).max_abs() > 1e-6);
    }
}
