//! Temporal Propagation — Algorithm 1 / Sec. IV-B of the paper.
//!
//! Messages pass along each temporal edge in chronological order, following
//! the direction of information flow. Two node-feature updaters are
//! provided: SUM (eqs. 3–5) and GRU (eq. 6). The output is the local node
//! embedding matrix `H = tanh(Ĥ)` (line 19 of Algorithm 1), materialized as
//! one `Var` per node so downstream readouts can address endpoints directly.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::{Ctdn, TemporalEdge};
use tpgnn_nn::{GruCell, Linear, Time2Vec};
use tpgnn_tensor::{ParamStore, Tape, Tensor, Var};

use crate::config::{PropagationKind, TpGnnConfig, UpdaterKind};

enum Updater {
    Sum,
    Gru(GruCell),
}

/// The temporal propagation module: node-feature embedding layer (eq. 1),
/// time encoding layer (eq. 2), and the propagation sweep.
pub struct TemporalPropagation {
    embed: Linear,
    t2v: Option<Time2Vec>,
    updater: Updater,
    kind: PropagationKind,
    time_dim: usize,
    /// Deterministic seed stream for the `rand` ablation's random edge
    /// order. Atomic (not `Cell`) so a shared model can run forward passes
    /// from several threads; the `rand` variant is per-call stochastic by
    /// design, so tick handout order does not need to be schedule-stable.
    rand_counter: std::sync::atomic::AtomicU64,
    rand_seed: u64,
    /// Constant pre-scaling of the SUM updater's inputs (see `sweep`).
    sum_scale: f32,
}

impl TemporalPropagation {
    /// Register the module's parameters per `cfg`.
    pub fn new(store: &mut ParamStore, cfg: &TpGnnConfig, rng: &mut StdRng) -> Self {
        let embed = Linear::new(store, "tp.embed", cfg.feature_dim, cfg.embed_dim, rng);
        let t2v = cfg
            .use_time_encoding
            .then(|| Time2Vec::new(store, "tp.t2v", cfg.time_dim, rng));
        let updater = match cfg.updater {
            UpdaterKind::Sum => Updater::Sum,
            UpdaterKind::Gru => {
                let in_dim = cfg.embed_dim + if cfg.use_time_encoding { cfg.time_dim } else { 0 };
                Updater::Gru(GruCell::new(store, "tp.gru", in_dim, cfg.embed_dim, rng))
            }
        };
        Self {
            embed,
            t2v,
            updater,
            kind: cfg.propagation,
            time_dim: cfg.time_dim,
            rand_counter: std::sync::atomic::AtomicU64::new(0),
            rand_seed: cfg.seed,
            sum_scale: cfg.sum_scale,
        }
    }

    /// Embed every node's raw features (eq. 1) and return one `(1, q)` `Var`
    /// per node.
    fn embed_nodes(&self, tape: &mut Tape, store: &ParamStore, g: &Ctdn) -> Vec<Var> {
        let n = g.num_nodes();
        let q = g.feature_dim();
        let raw = Tensor::from_vec(n, q, g.features().data().to_vec());
        let raw_var = tape.input(raw);
        let embedded = self.embed.forward(tape, store, raw_var); // (n, embed)
        (0..n).map(|v| tape.row(embedded, v)).collect()
    }

    /// Run the propagation sweep, returning the local node embedding vectors
    /// `h(v)` (already passed through `tanh`, line 19 of Algorithm 1).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, g: &mut Ctdn) -> Vec<Var> {
        let node_embeds = self.embed_nodes(tape, store, g);
        match self.kind {
            PropagationKind::None => {
                // `w/o tem`: the embedded raw features are the node states.
                node_embeds.iter().map(|&h| tape.tanh(h)).collect()
            }
            PropagationKind::Temporal => {
                let edges = g.edges_chronological().to_vec();
                self.sweep(tape, store, node_embeds, &edges)
            }
            PropagationKind::Random => {
                // `rand` ablation: neighbors aggregated in a random order;
                // timestamps carry no meaning, so the edge list is permuted.
                let mut edges = g.edges_chronological().to_vec();
                let tick = self.rand_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut rng = StdRng::seed_from_u64(self.rand_seed ^ (tick.wrapping_mul(0x9e37_79b9)));
                edges.shuffle(&mut rng);
                self.sweep(tape, store, node_embeds, &edges)
            }
        }
    }

    /// The inner message-passing loop of Algorithm 1 over a fixed edge order.
    fn sweep(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        node_embeds: Vec<Var>,
        edges: &[TemporalEdge],
    ) -> Vec<Var> {
        match &self.updater {
            Updater::Sum => {
                // X̂_{t_0} := X (line 5); M̂_{t_0} := 0 (line 4).
                // Numerical stability at laptop scale: eqs. 3–4 accumulate
                // unboundedly, and with the repeated-interaction density of
                // HDFS/Brightkite the accumulated sums leave tanh's active
                // range within a few edges, freezing gradients. Scaling the
                // (learnable) embedding and time-encoding outputs by a
                // constant folds into their initialization — same model
                // family, usable conditioning. See DESIGN.md §2.
                let mut x_hat: Vec<Var> = node_embeds
                    .iter()
                    .map(|&h| tape.scale(h, self.sum_scale))
                    .collect();
                let mut m_hat: Option<Vec<Var>> = self.t2v.as_ref().map(|_| {
                    (0..x_hat.len())
                        .map(|_| tape.input(Tensor::zeros(1, self.time_dim)))
                        .collect()
                });
                for e in edges {
                    // X̂(v) := X̂(u) + X̂(v)                         (eq. 3)
                    x_hat[e.dst] = tape.add(x_hat[e.src], x_hat[e.dst]);
                    if let (Some(t2v), Some(m)) = (self.t2v.as_ref(), m_hat.as_mut()) {
                        // M̂(v) := f(t) + M̂(v)                      (eq. 4)
                        let ft_raw = t2v.encode(tape, store, e.time);
                        let ft = tape.scale(ft_raw, self.sum_scale);
                        m[e.dst] = tape.add(ft, m[e.dst]);
                    }
                }
                // Ĥ := X̂ ⊕ M̂ (eq. 5); H := tanh(Ĥ) (line 19).
                x_hat
                    .into_iter()
                    .enumerate()
                    .map(|(v, x)| {
                        let h = match &m_hat {
                            Some(m) => tape.concat_cols(x, m[v]),
                            None => x,
                        };
                        tape.tanh(h)
                    })
                    .collect()
            }
            Updater::Gru(cell) => {
                // ĥ_{t_0}(v) := X(v) (line 13).
                let mut h = node_embeds;
                for e in edges {
                    // ĥ(v) := GRU(ĥ(v), [ĥ(u) ⊕ f(t)])              (eq. 6)
                    let msg = match self.t2v.as_ref() {
                        Some(t2v) => {
                            let ft = t2v.encode(tape, store, e.time);
                            tape.concat_cols(h[e.src], ft)
                        }
                        None => h[e.src],
                    };
                    h[e.dst] = cell.forward(tape, store, h[e.dst], msg);
                }
                h.into_iter().map(|hv| tape.tanh(hv)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_graph::NodeFeatures;

    fn make(cfg: &TpGnnConfig) -> (ParamStore, TemporalPropagation) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tp = TemporalPropagation::new(&mut store, cfg, &mut rng);
        (store, tp)
    }

    fn chain_graph(n: usize) -> Ctdn {
        let mut feats = NodeFeatures::zeros(n, 3);
        for v in 0..n {
            feats.row_mut(v).copy_from_slice(&[v as f32 / n as f32, 0.5, 0.0]);
        }
        let mut g = Ctdn::new(feats);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, (i + 1) as f64);
        }
        g
    }

    #[test]
    fn sum_output_dims() {
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(5);
        let mut tape = Tape::new();
        let h = tp.forward(&mut tape, &store, &mut g);
        assert_eq!(h.len(), 5);
        for hv in &h {
            assert_eq!(hv.shape(), (1, 38)); // embed 32 + time 6
            assert!(tape.value(*hv).data().iter().all(|&x| x.abs() <= 1.0));
        }
    }

    #[test]
    fn gru_output_dims() {
        let cfg = TpGnnConfig::gru(3);
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(4);
        let mut tape = Tape::new();
        let h = tp.forward(&mut tape, &store, &mut g);
        assert_eq!(h.len(), 4);
        for hv in &h {
            assert_eq!(hv.shape(), (1, 32));
        }
    }

    /// The operational half of Theorem 1: perturbing X(u) changes h(v) iff
    /// u is influential to v.
    #[test]
    fn theorem1_influence_iff_dependence() {
        for cfg in [TpGnnConfig::sum(3), TpGnnConfig::gru(3)] {
            let (mut store, tp) = make(&cfg);
            // Fig. 1-like graph: influence is partial.
            let mut feats = NodeFeatures::zeros(6, 3);
            for v in 0..6 {
                feats.row_mut(v).copy_from_slice(&[0.1 * v as f32, 0.3, 0.7]);
            }
            let mut g = Ctdn::new(feats);
            g.add_edge(0, 1, 1.0);
            g.add_edge(1, 2, 2.0);
            g.add_edge(3, 4, 3.0);
            // Node 5 is isolated; nodes 3,4 form a separate component.
            let inf = tpgnn_graph::InfluenceAnalysis::compute(&mut g);

            let run = |store: &ParamStore, g: &mut Ctdn| -> Vec<Tensor> {
                let mut tape = Tape::new();
                let h = tp.forward(&mut tape, store, g);
                h.iter().map(|&hv| tape.value(hv).clone()).collect()
            };
            let base = run(&store, &mut g);

            for u in 0..6 {
                // Perturb X(u) strongly.
                let mut g2 = g.clone();
                for f in g2.features_mut().row_mut(u) {
                    *f += 2.5;
                }
                let pert = run(&store, &mut g2);
                for v in 0..6 {
                    let changed = base[v].sub(&pert[v]).max_abs() > 1e-6;
                    let expected = u == v || inf.is_influential(u, v);
                    assert_eq!(
                        changed, expected,
                        "updater {:?}: perturbing {u} {} h({v})",
                        cfg.updater,
                        if changed { "changed" } else { "did not change" }
                    );
                }
            }
            // Keep store "used" for both configs.
            store.zero_grads();
        }
    }

    #[test]
    fn edge_order_changes_embeddings() {
        // The Fig. 1 motivation: same static topology, different edge order,
        // different node embeddings.
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut feats = NodeFeatures::zeros(4, 3);
        for v in 0..4 {
            feats.row_mut(v).copy_from_slice(&[0.2 * v as f32 + 0.1, 0.5, 0.9]);
        }
        // Order A: 0->1 (t1), 1->2 (t2), 2->3 (t3): chain influence flows.
        let mut ga = Ctdn::new(feats.clone());
        ga.add_edge(0, 1, 1.0);
        ga.add_edge(1, 2, 2.0);
        ga.add_edge(2, 3, 3.0);
        // Order B: same static edges, reversed times: no transitive flow.
        let mut gb = Ctdn::new(feats);
        gb.add_edge(2, 3, 1.0);
        gb.add_edge(1, 2, 2.0);
        gb.add_edge(0, 1, 3.0);

        let run = |g: &mut Ctdn| -> Vec<Tensor> {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            h.iter().map(|&hv| tape.value(hv).clone()).collect()
        };
        let ha = run(&mut ga);
        let hb = run(&mut gb);
        // Node 3's embedding must differ: in A it aggregates 0,1,2; in B only 2.
        assert!(ha[3].sub(&hb[3]).max_abs() > 1e-5);
    }

    #[test]
    fn random_propagation_varies_between_calls() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.propagation = PropagationKind::Random;
        cfg.use_time_encoding = false;
        let (store, tp) = make(&cfg);
        let mut g = chain_graph(8);
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            let vals: Vec<Tensor> = h.iter().map(|&hv| tape.value(hv).clone()).collect();
            Tensor::stack_rows(&vals)
        };
        let a = run(&mut g);
        let b = run(&mut g);
        // The random edge order is re-drawn per call (train-time stochasticity).
        assert!(a.sub(&b).max_abs() > 1e-7, "random aggregation should vary across calls");
    }

    #[test]
    fn no_propagation_ignores_edges() {
        let mut cfg = TpGnnConfig::sum(3);
        cfg.propagation = PropagationKind::None;
        let (store, tp) = make(&cfg);
        let mut g1 = chain_graph(5);
        let mut g2 = chain_graph(5);
        // Same features, extra edge in g2: `w/o tem` node states must match.
        g2.add_edge(0, 4, 10.0);
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            let vals: Vec<Tensor> = h.iter().map(|&hv| tape.value(hv).clone()).collect();
            Tensor::stack_rows(&vals)
        };
        assert_eq!(run(&mut g1), run(&mut g2));
    }

    #[test]
    fn repeated_edges_accumulate_in_sum() {
        let cfg = TpGnnConfig::sum(3);
        let (store, tp) = make(&cfg);
        let mut feats = NodeFeatures::zeros(2, 3);
        feats.row_mut(0).copy_from_slice(&[0.5, 0.5, 0.5]);
        let mut g1 = Ctdn::new(feats.clone());
        g1.add_edge(0, 1, 1.0);
        let mut g2 = Ctdn::new(feats);
        g2.add_edge(0, 1, 1.0);
        g2.add_edge(0, 1, 2.0);
        let run = |g: &mut Ctdn| -> Tensor {
            let mut tape = Tape::new();
            let h = tp.forward(&mut tape, &store, g);
            tape.value(h[1]).clone()
        };
        assert!(run(&mut g1).sub(&run(&mut g2)).max_abs() > 1e-6);
    }
}
