//! Training protocol of Sec. V-D: 10 epochs of Adam, with same-timestamp
//! edge order re-shuffled before every epoch — plus the guarded variant
//! ([`train_guarded`]) that checkpoints after every good epoch, detects
//! divergence (non-finite or exploding loss, op-attributed tape faults,
//! poisoned parameters) and recovers by rolling back to the last good
//! checkpoint with a halved learning rate instead of panicking.

use std::sync::OnceLock;
use std::time::Instant;

use tpgnn_obs::metrics::{self, Counter, Histogram};
use tpgnn_obs::{trace, Json};
use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::Ctdn;
use tpgnn_tensor::{profile, Tape};

use crate::guard::{self, DivergenceReason, GuardConfig, RecoveryEvent};
use crate::model::GraphClassifier;

fn epochs_accepted() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("train.epochs_accepted"))
}

fn recoveries_total() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("train.recoveries"))
}

fn aborts_total() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("train.aborts"))
}

fn epoch_ms() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        metrics::histogram("train.epoch_ms", &metrics::exponential_buckets(1.0, 4.0, 10))
    })
}

/// Training-loop settings (paper defaults via [`Default`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of epochs (paper: 10).
    pub epochs: usize,
    /// Re-shuffle the order of same-timestamp edges before each epoch
    /// (Sec. V-D).
    pub shuffle_ties: bool,
    /// Seed for the tie shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, shuffle_ties: true, seed: 0 }
    }
}

/// Per-epoch mean losses and recovery history from a [`train`] /
/// [`train_guarded`] run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean BCE loss of each *accepted* epoch, in order. Epoch attempts
    /// rejected by the guard are not included — their story is in
    /// [`TrainReport::recoveries`].
    pub epoch_losses: Vec<f32>,
    /// Every rollback-and-retry episode, in order (empty for unguarded
    /// runs and healthy guarded runs).
    pub recoveries: Vec<RecoveryEvent>,
    /// `true` when the recovery budget was exhausted and training stopped
    /// before completing all requested epochs.
    pub aborted: bool,
}

impl TrainReport {
    /// Loss of the final accepted epoch, or `None` when no epoch completed
    /// (zero requested, or the guard abandoned the run before the first
    /// good epoch).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Best (lowest) accepted epoch loss, or `None` when no epoch completed.
    pub fn best_loss(&self) -> Option<f32> {
        self.epoch_losses.iter().copied().fold(None, |acc, l| {
            Some(acc.map_or(l, |a: f32| a.min(l)))
        })
    }
}

/// Train `model` on `(graph, target)` pairs under the paper's protocol,
/// with no guardrails: a NaN loss is recorded as-is and training continues.
/// Use [`train_guarded`] for the production path.
pub fn train(
    model: &mut dyn GraphClassifier,
    train_set: &[(Ctdn, f32)],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut working: Vec<(Ctdn, f32)> = train_set.to_vec();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        if cfg.shuffle_ties {
            for (g, _) in working.iter_mut() {
                g.shuffle_same_timestamp(&mut rng);
            }
        }
        epoch_losses.push(model.fit_epoch(&mut working));
    }
    TrainReport { epoch_losses, recoveries: Vec::new(), aborted: false }
}

/// Number of live guarded-training scopes across the process.
///
/// The tape-guard default is "on" while at least one scope is alive.
/// Refcounting (rather than save/restore of the previous value) makes the
/// scope safe under the parallel eval grid, where several guarded cells run
/// concurrently on pool workers: a plain save/restore pair racing another
/// scope could leave the flag stuck on (or snap it off under a still-live
/// scope).
static GUARD_SCOPES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Turns the process-wide tape guard on for its lifetime; the guard drops
/// back off when the *last* concurrent scope drops, so an early return (or
/// a panic inside a model) cannot leak the scan into unrelated code.
struct TapeGuardScope;

impl TapeGuardScope {
    fn enable() -> Self {
        use std::sync::atomic::Ordering;
        if GUARD_SCOPES.fetch_add(1, Ordering::SeqCst) == 0 {
            Tape::set_default_guard(true);
        }
        Self
    }
}

impl Drop for TapeGuardScope {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering;
        if GUARD_SCOPES.fetch_sub(1, Ordering::SeqCst) == 1 {
            Tape::set_default_guard(false);
        }
    }
}

/// Train under the paper's protocol with the full guardrail stack:
///
/// 1. **Checkpointing** — after every accepted epoch the model's complete
///    training state (weights + Adam moments + step count, via
///    `GraphClassifier::save_state`) is snapshotted in memory.
/// 2. **Detection** — an epoch is rejected when its loss is NaN/Inf, when it
///    exceeds `guard.divergence_factor ×` the best loss so far, when a
///    guarded tape attributed a non-finite value to an op
///    ([`guard::take_fault`]), or when a parameter buffer fails the finite
///    check.
/// 3. **Recovery** — the model is rolled back to the last good checkpoint,
///    the learning rate is multiplied by `guard.lr_backoff`, and the epoch
///    is retried — at most `guard.max_recoveries` times across the run,
///    after which the run is abandoned and reported (never panicked).
///
/// Models that don't support checkpointing (`save_state() == None`, e.g.
/// the non-gradient Spectral baseline) still get divergence detection and
/// LR backoff; rollback is skipped.
pub fn train_guarded(
    model: &mut dyn GraphClassifier,
    train_set: &[(Ctdn, f32)],
    cfg: &TrainConfig,
    guard_cfg: &GuardConfig,
) -> TrainReport {
    let _scope = guard_cfg.scan_tapes.then(TapeGuardScope::enable);
    let model_name = model.name();
    let tracing = trace::enabled();
    if tracing {
        // Each traced run gets its own op-profile window so the emitted
        // snapshot attributes tape time to this training run alone.
        profile::reset();
        profile::set_enabled(true);
    }
    let mut run_span = trace::span("train.run");
    run_span.set("model", model_name.as_str());
    run_span.set("epochs", cfg.epochs as i64);
    run_span.set("samples", train_set.len() as i64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut working: Vec<(Ctdn, f32)> = train_set.to_vec();

    // Clear any stale fault from a previous (possibly panicked) run on this
    // thread before trusting the slot.
    guard::take_fault();

    let mut checkpoint: Option<String> = model.save_state();
    let mut last_good_epoch: Option<usize> = None;
    let mut best = f32::INFINITY;
    let mut report = TrainReport::default();

    let mut epoch = 0;
    while epoch < cfg.epochs {
        if cfg.shuffle_ties {
            for (g, _) in working.iter_mut() {
                g.shuffle_same_timestamp(&mut rng);
            }
        }
        let mut epoch_span = trace::span("train.epoch");
        epoch_span.set("model", model_name.as_str());
        epoch_span.set("epoch", epoch as i64);
        let t_epoch = Instant::now();
        let loss = model.fit_epoch(&mut working);
        let elapsed_ms = t_epoch.elapsed().as_millis() as u64;
        epoch_ms().record(t_epoch.elapsed().as_secs_f64() * 1e3);
        epoch_span.set("loss", loss as f64);
        if let Some(lr) = model.learning_rate() {
            epoch_span.set("lr", lr as f64);
        }
        if let Some(n) = model.param_norm() {
            epoch_span.set("param_norm", n as f64);
        }
        if let Some(n) = model.grad_norm() {
            epoch_span.set("grad_norm", n as f64);
        }

        // A blown epoch-time budget abandons the run on the spot: unlike a
        // numerical fault, rolling back and retrying a hung or
        // pathologically slow epoch would just hang again.
        if let Some(budget_ms) = guard_cfg.max_epoch_ms {
            if elapsed_ms > budget_ms {
                epoch_span.set("accepted", false);
                aborts_total().inc();
                trace::warn(
                    "guard.timeout",
                    &[
                        ("model", Json::from(model_name.as_str())),
                        ("epoch", Json::from(epoch as i64)),
                        ("elapsed_ms", Json::from(elapsed_ms as i64)),
                        ("budget_ms", Json::from(budget_ms as i64)),
                    ],
                );
                report.recoveries.push(RecoveryEvent {
                    epoch,
                    reason: DivergenceReason::EpochTimeout { elapsed_ms, budget_ms },
                    rolled_back_to: None,
                    lr_before: model.learning_rate(),
                    lr_after: None,
                    abandoned: true,
                });
                report.aborted = true;
                break;
            }
        }

        let reason = if let Some(detail) = guard::take_fault() {
            Some(DivergenceReason::ModelFault { detail })
        } else if !loss.is_finite() {
            Some(DivergenceReason::NonFiniteLoss { loss })
        } else if loss > guard_cfg.divergence_factor * best.max(GuardConfig::BEST_FLOOR) {
            Some(DivergenceReason::LossExploded { loss, best })
        } else if guard_cfg.check_params {
            model
                .check_finite()
                .err()
                .map(|detail| DivergenceReason::ModelFault { detail })
        } else {
            None
        };

        match reason {
            None => {
                epoch_span.set("accepted", true);
                epochs_accepted().inc();
                report.epoch_losses.push(loss);
                if loss < best {
                    best = loss;
                }
                if let Some(state) = model.save_state() {
                    checkpoint = Some(state);
                    last_good_epoch = Some(epoch);
                    trace::event(
                        "train.checkpoint",
                        &[
                            ("model", Json::from(model_name.as_str())),
                            ("epoch", Json::from(epoch as i64)),
                        ],
                    );
                }
                epoch += 1;
            }
            Some(reason) => {
                epoch_span.set("accepted", false);
                let lr_before = model.learning_rate();
                if report.recoveries.len() >= guard_cfg.max_recoveries {
                    aborts_total().inc();
                    trace::warn(
                        "guard.abandon",
                        &[
                            ("model", Json::from(model_name.as_str())),
                            ("epoch", Json::from(epoch as i64)),
                            ("reason", Json::from(reason.to_string())),
                            ("recoveries", Json::from(report.recoveries.len() as i64)),
                        ],
                    );
                    report.recoveries.push(RecoveryEvent {
                        epoch,
                        reason,
                        rolled_back_to: None,
                        lr_before,
                        lr_after: None,
                        abandoned: true,
                    });
                    report.aborted = true;
                    break;
                }
                if let Some(cp) = &checkpoint {
                    // The checkpoint was produced by this very model, so a
                    // load failure is unreachable; still, never panic inside
                    // the guardrails — degrade to backoff-only recovery.
                    let _ = model.load_state(cp);
                }
                let lr_after = lr_before.map(|lr| lr * guard_cfg.lr_backoff);
                if let Some(lr) = lr_after {
                    model.set_learning_rate(lr);
                }
                let rolled_back_to = checkpoint.as_ref().and(last_good_epoch);
                recoveries_total().inc();
                trace::warn(
                    "guard.rollback",
                    &[
                        ("model", Json::from(model_name.as_str())),
                        ("epoch", Json::from(epoch as i64)),
                        ("reason", Json::from(reason.to_string())),
                        (
                            "rolled_back_to",
                            rolled_back_to.map(|e| Json::from(e as i64)).unwrap_or(Json::Null),
                        ),
                        ("lr_before", lr_before.map(Json::from).unwrap_or(Json::Null)),
                        ("lr_after", lr_after.map(Json::from).unwrap_or(Json::Null)),
                    ],
                );
                report.recoveries.push(RecoveryEvent {
                    epoch,
                    reason,
                    rolled_back_to,
                    lr_before,
                    lr_after,
                    abandoned: false,
                });
                // Retry the same epoch index with the restored state.
            }
        }
    }
    run_span.set("accepted_epochs", report.epoch_losses.len() as i64);
    run_span.set("recoveries", report.recoveries.len() as i64);
    run_span.set("aborted", report.aborted);
    if tracing {
        for p in profile::snapshot().iter().take(10) {
            trace::event(
                "tape.profile",
                &[
                    ("model", Json::from(model_name.as_str())),
                    ("op", Json::from(p.name)),
                    ("calls", Json::from(p.calls)),
                    ("fwd_us", Json::from(p.fwd_ns / 1_000)),
                    ("bwd_calls", Json::from(p.bwd_calls)),
                    ("bwd_us", Json::from(p.bwd_ns / 1_000)),
                    ("elems", Json::from(p.elems)),
                ],
            );
        }
    }
    report
}

/// Run `model` over `test_set`, returning `(probability, truth)` pairs.
///
/// Routed through [`GraphClassifier::predict_proba_batch`], so models with
/// a parallel batch path (TP-GNN) fan the test split out over the pool;
/// results are in input order and bitwise-identical at any thread count.
pub fn predict_all(
    model: &mut dyn GraphClassifier,
    test_set: &[(Ctdn, f32)],
) -> Vec<(f32, bool)> {
    let mut graphs: Vec<Ctdn> = test_set.iter().map(|(g, _)| g.clone()).collect();
    let probs = model.predict_proba_batch(&mut graphs);
    probs
        .into_iter()
        .zip(test_set)
        .map(|(p, (_, target))| (p, *target > 0.5))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpGnnConfig;
    use crate::model::TpGnn;
    use tpgnn_graph::NodeFeatures;

    fn graph(flip: bool) -> Ctdn {
        let mut feats = NodeFeatures::zeros(4, 3);
        for v in 0..4 {
            feats.row_mut(v).copy_from_slice(&[v as f32 * 0.25, 0.4, 0.6]);
        }
        let mut g = Ctdn::new(feats);
        let order: Vec<(usize, usize)> = if flip {
            vec![(2, 3), (1, 2), (0, 1)]
        } else {
            vec![(0, 1), (1, 2), (2, 3)]
        };
        for (i, (s, d)) in order.into_iter().enumerate() {
            g.try_add_edge(s, d, (i + 1) as f64).unwrap();
        }
        g
    }

    fn toy_data(n: usize) -> Vec<(Ctdn, f32)> {
        (0..n)
            .map(|i| (graph(i % 2 == 1), if i % 2 == 1 { 0.0 } else { 1.0 }))
            .collect()
    }

    #[test]
    fn train_reports_epoch_losses() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        model.set_learning_rate(0.01);
        let data = toy_data(8);
        let report = train(&mut model, &data, &TrainConfig { epochs: 15, ..TrainConfig::default() });
        assert_eq!(report.epoch_losses.len(), 15);
        assert!(report.final_loss().expect("epochs ran") < report.epoch_losses[0]);
        assert!(report.recoveries.is_empty() && !report.aborted);
    }

    #[test]
    fn predict_all_pairs_up() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        let data = vec![(graph(false), 1.0), (graph(true), 0.0)];
        let preds = predict_all(&mut model, &data);
        assert_eq!(preds.len(), 2);
        assert!(preds[0].1);
        assert!(!preds[1].1);
        for (p, _) in preds {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn empty_training_set_is_safe() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        let report = train(&mut model, &[], &TrainConfig::default());
        assert_eq!(report.epoch_losses, vec![0.0; 10]);
    }

    #[test]
    fn final_loss_is_none_when_no_epochs_ran() {
        let report = TrainReport::default();
        assert_eq!(report.final_loss(), None);
        assert_eq!(report.best_loss(), None);
    }

    #[test]
    fn guarded_healthy_run_matches_unguarded() {
        // On a healthy run the guard must be an observer: identical losses.
        let data = toy_data(8);
        let cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let mut a = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
        a.set_learning_rate(0.01);
        let ra = train(&mut a, &data, &cfg);
        let mut b = TpGnn::new(TpGnnConfig::sum(3).with_seed(7));
        b.set_learning_rate(0.01);
        let rb = train_guarded(&mut b, &data, &cfg, &GuardConfig::default());
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert!(rb.recoveries.is_empty() && !rb.aborted);
        assert!(!Tape::default_guard(), "guard scope must restore the default");
    }

    /// Delegates to an inner model but sabotages a chosen epoch by poisoning
    /// the inner model's parameters with NaN via its own checkpoint format —
    /// the corruption is real state corruption, exactly what a numerical
    /// blow-up leaves behind.
    struct SabotagedOnce {
        inner: TpGnn,
        fit_calls: usize,
        sabotage_at: usize,
    }

    impl SabotagedOnce {
        fn poison_inner(&mut self) {
            let state = self.inner.save_state().expect("tpgnn checkpoints");
            // Rewrite the first value row to NaN — real state corruption,
            // exactly what a numerical blow-up leaves behind.
            let mut lines: Vec<String> = state.lines().map(str::to_string).collect();
            for line in lines.iter_mut() {
                if !line.starts_with("adam")
                    && !line.starts_with("checkpoint")
                    && !line.starts_with("param")
                {
                    let width = line.split_whitespace().count();
                    *line = vec!["NaN"; width].join(" ");
                    break;
                }
            }
            self.inner.load_state(&(lines.join("\n") + "\n")).expect("poisoned state loads");
        }
    }

    impl GraphClassifier for SabotagedOnce {
        fn name(&self) -> String {
            "sabotaged".into()
        }
        fn fit_epoch(&mut self, train: &mut [(Ctdn, f32)]) -> f32 {
            self.fit_calls += 1;
            if self.fit_calls == self.sabotage_at {
                self.poison_inner();
            }
            self.inner.fit_epoch(train)
        }
        fn predict_proba(&mut self, g: &mut Ctdn) -> f32 {
            self.inner.predict_proba(g)
        }
        fn set_learning_rate(&mut self, lr: f32) {
            self.inner.set_learning_rate(lr);
        }
        fn learning_rate(&self) -> Option<f32> {
            self.inner.learning_rate()
        }
        fn save_state(&self) -> Option<String> {
            self.inner.save_state()
        }
        fn load_state(&mut self, state: &str) -> Result<(), String> {
            self.inner.load_state(state)
        }
        fn check_finite(&self) -> Result<(), String> {
            self.inner.check_finite()
        }
    }

    #[test]
    fn mid_training_nan_triggers_rollback_and_backoff() {
        let mut model = SabotagedOnce {
            inner: TpGnn::new(TpGnnConfig::sum(3).with_seed(7)),
            fit_calls: 0,
            sabotage_at: 3, // poison the third epoch's state
        };
        model.set_learning_rate(0.01);
        let data = toy_data(8);
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let report = train_guarded(&mut model, &data, &cfg, &GuardConfig::default());

        assert_eq!(report.epoch_losses.len(), 6, "training must complete after recovery");
        assert!(!report.aborted);
        assert_eq!(report.recoveries.len(), 1, "exactly one recovery: {:?}", report.recoveries);
        let ev = &report.recoveries[0];
        assert_eq!(ev.epoch, 2);
        assert!(
            matches!(ev.reason, DivergenceReason::ModelFault { .. } | DivergenceReason::NonFiniteLoss { .. }),
            "reason: {:?}",
            ev.reason
        );
        assert_eq!(ev.rolled_back_to, Some(1), "must roll back to the last good epoch");
        assert_eq!(ev.lr_before, Some(0.01));
        assert_eq!(ev.lr_after, Some(0.005), "LR must be halved");
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        // The model itself must be clean after training.
        assert!(model.check_finite().is_ok());
    }

    /// A model whose loss is permanently NaN (e.g. a poisoned sample the
    /// trainer cannot route around): the guard must exhaust its budget and
    /// abandon the run without panicking.
    struct AlwaysNan {
        lr: f32,
    }

    impl GraphClassifier for AlwaysNan {
        fn name(&self) -> String {
            "always-nan".into()
        }
        fn fit_epoch(&mut self, _train: &mut [(Ctdn, f32)]) -> f32 {
            f32::NAN
        }
        fn predict_proba(&mut self, _g: &mut Ctdn) -> f32 {
            0.5
        }
        fn set_learning_rate(&mut self, lr: f32) {
            self.lr = lr;
        }
        fn learning_rate(&self) -> Option<f32> {
            Some(self.lr)
        }
    }

    #[test]
    fn persistent_divergence_abandons_without_panicking() {
        let mut model = AlwaysNan { lr: 0.01 };
        let data = toy_data(4);
        let guard_cfg = GuardConfig { max_recoveries: 2, ..GuardConfig::default() };
        let report = train_guarded(&mut model, &data, &TrainConfig::default(), &guard_cfg);
        assert!(report.aborted);
        assert!(report.epoch_losses.is_empty());
        assert_eq!(report.final_loss(), None);
        assert_eq!(report.recoveries.len(), 3, "2 recoveries + 1 abandonment");
        assert!(report.recoveries[2].abandoned);
        assert!(report.recoveries.iter().take(2).all(|e| !e.abandoned));
        // Two backoffs happened before abandonment.
        assert!((model.lr - 0.0025).abs() < 1e-9);
    }

    #[test]
    fn exploding_loss_is_divergence() {
        // Losses: 1.0 (good), then 50.0 (explodes past 4×best), then good.
        struct Scripted {
            losses: Vec<f32>,
            i: usize,
        }
        impl GraphClassifier for Scripted {
            fn name(&self) -> String {
                "scripted".into()
            }
            fn fit_epoch(&mut self, _train: &mut [(Ctdn, f32)]) -> f32 {
                let l = self.losses[self.i.min(self.losses.len() - 1)];
                self.i += 1;
                l
            }
            fn predict_proba(&mut self, _g: &mut Ctdn) -> f32 {
                0.5
            }
        }
        let mut model = Scripted { losses: vec![1.0, 50.0, 0.9, 0.8], i: 0 };
        let data = toy_data(2);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let report = train_guarded(&mut model, &data, &cfg, &GuardConfig::default());
        assert_eq!(report.epoch_losses, vec![1.0, 0.9, 0.8]);
        assert_eq!(report.recoveries.len(), 1);
        assert!(matches!(
            report.recoveries[0].reason,
            DivergenceReason::LossExploded { loss, best } if loss == 50.0 && best == 1.0
        ));
        // Scripted has no save_state: rollback is skipped, backoff-only.
        assert_eq!(report.recoveries[0].rolled_back_to, None);
    }
}
