//! Training protocol of Sec. V-D: 10 epochs of Adam, with same-timestamp
//! edge order re-shuffled before every epoch.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::SeedableRng;
use tpgnn_graph::Ctdn;

use crate::model::GraphClassifier;

/// Training-loop settings (paper defaults via [`Default`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of epochs (paper: 10).
    pub epochs: usize,
    /// Re-shuffle the order of same-timestamp edges before each epoch
    /// (Sec. V-D).
    pub shuffle_ties: bool,
    /// Seed for the tie shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, shuffle_ties: true, seed: 0 }
    }
}

/// Per-epoch mean losses from a [`train`] run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean BCE loss of each epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch (0.0 when no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }
}

/// Train `model` on `(graph, target)` pairs under the paper's protocol.
pub fn train(
    model: &mut dyn GraphClassifier,
    train_set: &[(Ctdn, f32)],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut working: Vec<(Ctdn, f32)> = train_set.to_vec();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        if cfg.shuffle_ties {
            for (g, _) in working.iter_mut() {
                g.shuffle_same_timestamp(&mut rng);
            }
        }
        epoch_losses.push(model.fit_epoch(&mut working));
    }
    TrainReport { epoch_losses }
}

/// Run `model` over `test_set`, returning `(probability, truth)` pairs.
pub fn predict_all(
    model: &mut dyn GraphClassifier,
    test_set: &[(Ctdn, f32)],
) -> Vec<(f32, bool)> {
    test_set
        .iter()
        .map(|(g, target)| {
            let mut g = g.clone();
            (model.predict_proba(&mut g), *target > 0.5)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpGnnConfig;
    use crate::model::TpGnn;
    use tpgnn_graph::NodeFeatures;

    fn graph(flip: bool) -> Ctdn {
        let mut feats = NodeFeatures::zeros(4, 3);
        for v in 0..4 {
            feats.row_mut(v).copy_from_slice(&[v as f32 * 0.25, 0.4, 0.6]);
        }
        let mut g = Ctdn::new(feats);
        let order: Vec<(usize, usize)> = if flip {
            vec![(2, 3), (1, 2), (0, 1)]
        } else {
            vec![(0, 1), (1, 2), (2, 3)]
        };
        for (i, (s, d)) in order.into_iter().enumerate() {
            g.add_edge(s, d, (i + 1) as f64);
        }
        g
    }

    #[test]
    fn train_reports_epoch_losses() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        model.set_learning_rate(0.01);
        let data: Vec<(Ctdn, f32)> = (0..8)
            .map(|i| (graph(i % 2 == 1), if i % 2 == 1 { 0.0 } else { 1.0 }))
            .collect();
        let report = train(&mut model, &data, &TrainConfig { epochs: 15, ..TrainConfig::default() });
        assert_eq!(report.epoch_losses.len(), 15);
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn predict_all_pairs_up() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        let data = vec![(graph(false), 1.0), (graph(true), 0.0)];
        let preds = predict_all(&mut model, &data);
        assert_eq!(preds.len(), 2);
        assert!(preds[0].1);
        assert!(!preds[1].1);
        for (p, _) in preds {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn empty_training_set_is_safe() {
        let mut model = TpGnn::new(TpGnnConfig::sum(3));
        let report = train(&mut model, &[], &TrainConfig::default());
        assert_eq!(report.epoch_losses, vec![0.0; 10]);
    }
}
