//! Seeded chaos: reproducible fault injection for CTDN event streams.
//!
//! Each injector takes the clean chronological event stream of a graph and
//! emits a *dirty arrival sequence* — shuffled within windows, duplicated,
//! clock-skewed, truncated/corrupted, burst-dropped, or delayed — driven
//! entirely by the pinned `tpgnn-rng` stream, so a fault schedule is a pure
//! function of its seed. The [`FaultLedger`] records exactly what was
//! injected; the chaos harness reconciles it against the
//! [`QuarantineLog`](tpgnn_graph::QuarantineLog) the streaming builder
//! produces, proving that every rejected event is accounted for with the
//! right typed reason.
//!
//! Entry points: [`inject`] for one event stream,
//! [`rebuild_dataset`] to push a whole [`GraphDataset`] through the
//! streaming ingestion path under a [`FaultPlan`].

use std::collections::BTreeMap;

use tpgnn_graph::stream::{
    CtdnBuilder, QuarantineLog, RejectKind, StreamConfig, StreamEvent, StreamStats,
};
use tpgnn_graph::Ctdn;
use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::{Rng, SeedableRng};

use crate::dataset::{GraphDataset, LabeledGraph};

/// What faults to inject, at what rates. The default is the identity plan
/// (every rate zero): `inject` then emits the clean stream unchanged.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Arrival-order shuffle window size (events); `0` or `1` disables.
    /// Events are displaced at most `shuffle_window - 1` positions, so a
    /// reorder buffer of at least this capacity reconstructs the stream.
    pub shuffle_window: usize,
    /// Probability that each window is shuffled.
    pub shuffle_prob: f64,
    /// Probability an event is re-delivered (a copy inserted right after
    /// the original).
    pub dup_rate: f64,
    /// Probability an event is truncated/corrupted (NaN, non-positive, or
    /// negated timestamp; out-of-bounds endpoint).
    pub corrupt_rate: f64,
    /// Probability a drop burst starts at an event; the burst removes up to
    /// [`burst_len`](FaultPlan::burst_len) consecutive events.
    pub drop_rate: f64,
    /// Length of each drop burst.
    pub burst_len: usize,
    /// Probability an eligible event is delayed to the end of the stream.
    /// Only events more than [`delay_margin`](FaultPlan::delay_margin)
    /// behind the stream's final timestamp are eligible, so with a builder
    /// lateness of `delay_margin` every delayed event is provably late.
    pub delay_rate: f64,
    /// Lateness horizon used for delay eligibility (time units).
    pub delay_margin: f64,
    /// Number of logical origins events are attributed to (round-robin);
    /// `0` or `1` means a single origin.
    pub num_origins: u32,
    /// Constant clock skew: origin `o` emits timestamps offset by
    /// `skew * o`.
    pub skew: f64,
    /// Whether the skew offsets are declared to the builder (which then
    /// normalizes them away) or left undeclared.
    pub declare_skew: bool,
    /// Probability an event's origin clock regresses by
    /// [`regression`](FaultPlan::regression) time units.
    pub regress_rate: f64,
    /// Clock-regression magnitude (time units).
    pub regression: f64,
    /// Tolerance mirrored into the builder's `clock_tolerance` when
    /// regression is active; a regressed event is counted in the ledger
    /// only if it lands beyond this tolerance (i.e. will be quarantined).
    pub regress_tolerance: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            shuffle_window: 0,
            shuffle_prob: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            drop_rate: 0.0,
            burst_len: 3,
            delay_rate: 0.0,
            delay_margin: 2.0,
            num_origins: 1,
            skew: 0.0,
            declare_skew: true,
            regress_rate: 0.0,
            regression: 5.0,
            regress_tolerance: 0.0,
        }
    }
}

impl FaultPlan {
    /// The identity plan: nothing injected.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A mixed plan for degradation sweeps: duplication, corruption, and
    /// burst drops at `rate`, plus window shuffles. Exercises the builder's
    /// reordering, dedup, and malformed-record paths simultaneously while
    /// keeping fault counts exactly reconcilable.
    pub fn mixed(rate: f64) -> Self {
        Self {
            shuffle_window: 8,
            shuffle_prob: (rate * 2.0).min(1.0),
            dup_rate: rate,
            corrupt_rate: rate,
            drop_rate: rate * 0.5,
            burst_len: 3,
            ..Self::default()
        }
    }

    /// The per-origin offsets this plan declares to the builder.
    pub fn declared_offsets(&self) -> Vec<(u32, f64)> {
        if self.skew == 0.0 || !self.declare_skew {
            return Vec::new();
        }
        (1..self.num_origins.max(1)).map(|o| (o, self.skew * o as f64)).collect()
    }

    /// A [`StreamConfig`] matched to this plan: skew offsets declared when
    /// the plan declares them, lateness equal to `delay_margin` when delays
    /// are active (so every delayed event is provably late), and clock
    /// tolerance equal to `regress_tolerance` when regression is active.
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            origin_offsets: self.declared_offsets(),
            lateness: if self.delay_rate > 0.0 { self.delay_margin } else { f64::INFINITY },
            clock_tolerance: if self.regress_rate > 0.0 {
                self.regress_tolerance
            } else {
                f64::INFINITY
            },
            ..StreamConfig::default()
        }
    }
}

/// Exact accounting of what [`inject`] did to one stream (or, summed, to a
/// dataset). The chaos harness reconciles these counts against the
/// builder's quarantine log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Clean events in the input stream.
    pub input_events: usize,
    /// Events actually emitted (after drops, plus duplicate copies).
    pub emitted: usize,
    /// Duplicate copies inserted (each will be quarantined as `Duplicate`).
    pub duplicated: usize,
    /// Corrupted events (each will be quarantined as `Malformed`).
    pub corrupted: usize,
    /// Events removed by burst drops (never emitted; no quarantine).
    pub dropped: usize,
    /// Events delayed to the end of the stream (each will be quarantined as
    /// `LateEvent` under the plan's matched lateness).
    pub delayed: usize,
    /// Clock-regressed events that land beyond the tolerance (each will be
    /// quarantined as `NonMonotonicClock`). Valid when regression is not
    /// combined with reordering injectors.
    pub regressed: usize,
    /// Windows whose arrival order was shuffled (no quarantine expected
    /// within the reorder capacity).
    pub shuffled_windows: usize,
    /// Emitted events carrying a non-zero skew offset.
    pub skewed: usize,
}

impl FaultLedger {
    /// Sum another ledger into this one (`max`-free: all fields add).
    pub fn absorb(&mut self, other: &FaultLedger) {
        self.input_events += other.input_events;
        self.emitted += other.emitted;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.regressed += other.regressed;
        self.shuffled_windows += other.shuffled_windows;
        self.skewed += other.skewed;
    }
}

/// Aggregated per-kind quarantine counts across many graphs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuarantineCounts {
    counts: [usize; 5],
}

impl QuarantineCounts {
    /// Count for one reason kind.
    pub fn count(&self, kind: RejectKind) -> usize {
        self.counts[RejectKind::ALL.iter().position(|k| *k == kind).expect("known kind")]
    }

    /// Total quarantined events.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Add one graph's quarantine log.
    pub fn absorb(&mut self, log: &QuarantineLog) {
        for (slot, kind) in self.counts.iter_mut().zip(RejectKind::ALL) {
            *slot += log.count(kind);
        }
    }

    /// Merge another aggregate into this one.
    pub fn absorb_counts(&mut self, other: &QuarantineCounts) {
        for (slot, c) in self.counts.iter_mut().zip(other.counts) {
            *slot += c;
        }
    }

    /// One-line per-kind summary in `RejectKind::ALL` order.
    pub fn summary(&self) -> String {
        RejectKind::ALL
            .iter()
            .zip(self.counts)
            .map(|(k, c)| format!("{}={}", k.label(), c))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The dirty arrival sequence plus the ledger of injected faults.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Events in arrival order, faults applied.
    pub events: Vec<StreamEvent>,
    /// What was injected.
    pub ledger: FaultLedger,
}

/// The clean chronological event stream of `g`, with origins assigned
/// round-robin over `num_origins` (single origin `0` if `num_origins <= 1`).
pub fn events_of(g: &Ctdn, num_origins: u32) -> Vec<StreamEvent> {
    let mut sorted = g.clone();
    let origins = num_origins.max(1);
    sorted
        .edges_chronological()
        .iter()
        .enumerate()
        .map(|(i, e)| StreamEvent::from_origin(e.src, e.dst, e.time, (i as u32) % origins))
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tag {
    Clean,
    Corrupt,
    Dup,
    Delay,
    Regress,
    Drop,
}

/// Apply `plan` to a clean chronological stream over `num_nodes` nodes,
/// producing the dirty arrival sequence and its exact fault ledger.
///
/// Faults are mutually exclusive per event, so ledger counts reconcile
/// one-to-one with quarantine reasons. Deterministic in (`clean`, `plan`,
/// the RNG state).
pub fn inject(
    clean: &[StreamEvent],
    num_nodes: usize,
    plan: &FaultPlan,
    rng: &mut StdRng,
) -> ChaosOutcome {
    let n = clean.len();
    let t_max = clean.iter().map(|e| e.time).fold(f64::NEG_INFINITY, f64::max);

    // Pass 1: tag each event with at most one fault.
    let mut tags = vec![Tag::Clean; n];
    let mut i = 0;
    while i < n {
        if plan.drop_rate > 0.0 && rng.random_bool(plan.drop_rate) {
            let end = (i + plan.burst_len.max(1)).min(n);
            for t in tags[i..end].iter_mut() {
                *t = Tag::Drop;
            }
            i = end;
            continue;
        }
        let t = clean[i].time;
        if plan.corrupt_rate > 0.0 && rng.random_bool(plan.corrupt_rate) {
            tags[i] = Tag::Corrupt;
        } else if plan.dup_rate > 0.0 && rng.random_bool(plan.dup_rate) {
            tags[i] = Tag::Dup;
        } else if plan.delay_rate > 0.0
            && t < t_max - plan.delay_margin - 1e-9
            && rng.random_bool(plan.delay_rate)
        {
            tags[i] = Tag::Delay;
        } else if plan.regress_rate > 0.0
            && t - plan.regression > 1e-9
            && rng.random_bool(plan.regress_rate)
        {
            tags[i] = Tag::Regress;
        }
        i += 1;
    }

    // Pass 2: apply mutations and assemble the arrival sequence. The
    // regression mirror replays the builder's per-origin monotonicity rule
    // so `ledger.regressed` counts exactly the events that will be
    // quarantined (valid while regression is not combined with reordering
    // injectors, which the harness respects).
    let mut ledger = FaultLedger { input_events: n, ..FaultLedger::default() };
    let mut arrival: Vec<StreamEvent> = Vec::with_capacity(n + n / 8);
    let mut delayed: Vec<StreamEvent> = Vec::new();
    let mut origin_max: BTreeMap<u32, f64> = BTreeMap::new();
    for (ev, tag) in clean.iter().zip(&tags) {
        if *tag == Tag::Drop {
            ledger.dropped += 1;
            continue;
        }
        let offset = plan.skew * ev.origin as f64;
        if offset != 0.0 {
            ledger.skewed += 1;
        }
        let mut out = *ev;
        match tag {
            Tag::Corrupt => {
                ledger.corrupted += 1;
                match rng.random_range(0..5u32) {
                    0 => out.time = f64::NAN,
                    1 => out.time = -out.time,
                    // A truncated record: the timestamp field was lost.
                    2 => out.time = 0.0,
                    3 => out.src = num_nodes + rng.random_range(0..4usize),
                    _ => out.dst = num_nodes + rng.random_range(0..4usize),
                }
                out.time += if out.time.is_finite() { offset } else { 0.0 };
                arrival.push(out);
            }
            Tag::Regress => {
                let t_new = ev.time - plan.regression;
                let m = origin_max.get(&ev.origin).copied().unwrap_or(f64::NEG_INFINITY);
                if t_new < m - plan.regress_tolerance {
                    ledger.regressed += 1;
                } else {
                    origin_max.insert(ev.origin, m.max(t_new));
                }
                out.time = t_new + offset;
                arrival.push(out);
            }
            Tag::Delay => {
                ledger.delayed += 1;
                let m = origin_max.get(&ev.origin).copied().unwrap_or(f64::NEG_INFINITY);
                origin_max.insert(ev.origin, m.max(ev.time));
                out.time = ev.time + offset;
                delayed.push(out);
            }
            _ => {
                let m = origin_max.get(&ev.origin).copied().unwrap_or(f64::NEG_INFINITY);
                origin_max.insert(ev.origin, m.max(ev.time));
                out.time = ev.time + offset;
                arrival.push(out);
                if *tag == Tag::Dup {
                    ledger.duplicated += 1;
                    arrival.push(out);
                }
            }
        }
    }

    // Pass 3: shuffle arrival order within windows.
    if plan.shuffle_window >= 2 && plan.shuffle_prob > 0.0 {
        let w = plan.shuffle_window;
        let mut s = 0;
        while s < arrival.len() {
            let e = (s + w).min(arrival.len());
            if e - s >= 2 && rng.random_bool(plan.shuffle_prob) {
                arrival[s..e].shuffle(rng);
                ledger.shuffled_windows += 1;
            }
            s = e;
        }
    }

    // Pass 4: delayed events straggle in after everything else.
    arrival.extend(delayed);
    ledger.emitted = arrival.len();
    ChaosOutcome { events: arrival, ledger }
}

/// Aggregate outcome of pushing a whole dataset through the streaming
/// ingestion path under a fault plan.
#[derive(Clone, Debug, Default)]
pub struct DatasetChaosReport {
    /// Summed fault ledger across all graphs.
    pub ledger: FaultLedger,
    /// Summed ingestion stats (`max_buffer_depth` is the per-graph max).
    pub stats: StreamStats,
    /// Summed quarantine counts by reason kind.
    pub counts: QuarantineCounts,
}

/// Rebuild every graph of `ds` through [`CtdnBuilder`] with faults injected
/// per `plan`, under the builder config [`FaultPlan::stream_config`].
///
/// Graph `i` uses an RNG derived from `seed` and `i`, so the whole dataset
/// rebuild is a pure function of (`ds`, `plan`, `seed`).
pub fn rebuild_dataset(
    ds: &GraphDataset,
    plan: &FaultPlan,
    seed: u64,
) -> (GraphDataset, DatasetChaosReport) {
    let cfg = plan.stream_config();
    let mut report = DatasetChaosReport::default();
    let mut out = GraphDataset::new(ds.name.clone());
    for (i, lg) in ds.graphs.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        let clean = events_of(&lg.graph, plan.num_origins);
        let chaos = inject(&clean, lg.graph.num_nodes(), plan, &mut rng);
        let mut builder = CtdnBuilder::new(lg.graph.features().clone(), cfg.clone());
        builder.extend(chaos.events.iter().copied());
        let stream = builder.finish();
        report.ledger.absorb(&chaos.ledger);
        report.stats.received += stream.stats.received;
        report.stats.released += stream.stats.released;
        report.stats.quarantined += stream.stats.quarantined;
        report.stats.forced_releases += stream.stats.forced_releases;
        report.stats.max_buffer_depth =
            report.stats.max_buffer_depth.max(stream.stats.max_buffer_depth);
        report.counts.absorb(&stream.quarantine);
        out.graphs.push(LabeledGraph { graph: stream.graph, label: lg.label });
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn corpus(n: usize, seed: u64) -> GraphDataset {
        DatasetKind::ForumJava.generate(n, seed)
    }

    fn assert_graphs_identical(a: &GraphDataset, b: &GraphDataset) {
        assert_eq!(a.graphs.len(), b.graphs.len());
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.label, y.label);
            let mut gx = x.graph.clone();
            let mut gy = y.graph.clone();
            assert_eq!(gx.edges_chronological(), gy.edges_chronological());
            assert_eq!(gx.features(), gy.features());
        }
    }

    /// Identical up to permutation of same-timestamp edges. Tie order is
    /// non-semantic (training re-shuffles ties every epoch) and arrival-order
    /// shuffling destroys it irrecoverably.
    fn assert_graphs_equivalent(a: &GraphDataset, b: &GraphDataset) {
        let canon = |g: &Ctdn| {
            let mut edges: Vec<(u64, usize, usize)> =
                g.edges().iter().map(|e| (e.time.to_bits(), e.src, e.dst)).collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(a.graphs.len(), b.graphs.len());
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.label, y.label);
            assert_eq!(canon(&x.graph), canon(&y.graph));
            assert_eq!(x.graph.features(), y.graph.features());
        }
    }

    #[test]
    fn clean_plan_is_identity() {
        let ds = corpus(24, 42);
        let (rebuilt, report) = rebuild_dataset(&ds, &FaultPlan::clean(), 7);
        assert_graphs_identical(&ds, &rebuilt);
        assert_eq!(report.counts.total(), 0, "clean rebuild quarantined: {}", report.counts.summary());
        assert_eq!(report.stats.received, report.stats.released);
    }

    #[test]
    fn duplicates_reconcile_exactly() {
        let ds = corpus(16, 1);
        let plan = FaultPlan { dup_rate: 0.2, ..FaultPlan::default() };
        let (rebuilt, report) = rebuild_dataset(&ds, &plan, 11);
        assert!(report.ledger.duplicated > 0, "schedule injected nothing");
        assert_eq!(report.counts.count(RejectKind::Duplicate), report.ledger.duplicated);
        assert_eq!(report.counts.total(), report.ledger.duplicated);
        // Dedup restores the clean graphs exactly.
        assert_graphs_identical(&ds, &rebuilt);
    }

    #[test]
    fn corruption_reconciles_exactly() {
        let ds = corpus(16, 2);
        let plan = FaultPlan { corrupt_rate: 0.15, ..FaultPlan::default() };
        let (_, report) = rebuild_dataset(&ds, &plan, 12);
        assert!(report.ledger.corrupted > 0);
        assert_eq!(report.counts.count(RejectKind::Malformed), report.ledger.corrupted);
        assert_eq!(report.counts.total(), report.ledger.corrupted);
    }

    #[test]
    fn burst_drops_only_shrink_the_stream() {
        let ds = corpus(16, 3);
        let plan = FaultPlan { drop_rate: 0.1, burst_len: 4, ..FaultPlan::default() };
        let (_, report) = rebuild_dataset(&ds, &plan, 13);
        assert!(report.ledger.dropped > 0);
        assert_eq!(report.counts.total(), 0);
        assert_eq!(report.stats.released, report.ledger.input_events - report.ledger.dropped);
    }

    #[test]
    fn delays_become_late_events() {
        let ds = corpus(16, 4);
        let plan = FaultPlan { delay_rate: 0.3, delay_margin: 2.0, ..FaultPlan::default() };
        let (_, report) = rebuild_dataset(&ds, &plan, 14);
        assert!(report.ledger.delayed > 0);
        assert_eq!(report.counts.count(RejectKind::LateEvent), report.ledger.delayed);
        assert_eq!(report.counts.total(), report.ledger.delayed);
    }

    #[test]
    fn declared_skew_is_normalized_away() {
        let ds = corpus(12, 5);
        let plan = FaultPlan { num_origins: 4, skew: 50.0, declare_skew: true, ..FaultPlan::default() };
        let (rebuilt, report) = rebuild_dataset(&ds, &plan, 15);
        assert!(report.ledger.skewed > 0);
        assert_eq!(report.counts.total(), 0, "{}", report.counts.summary());
        // `(t + skew·o) − skew·o` is not bitwise `t`, so declared-skew
        // correction is exact only up to floating-point rounding: compare
        // the recovered timelines with a tolerance.
        for (x, y) in ds.graphs.iter().zip(&rebuilt.graphs) {
            assert_eq!(x.graph.num_edges(), y.graph.num_edges());
            let canon = |g: &Ctdn| {
                let mut edges: Vec<(usize, usize, f64)> =
                    g.edges().iter().map(|e| (e.src, e.dst, e.time)).collect();
                edges.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
                edges
            };
            for (ex, ey) in canon(&x.graph).iter().zip(canon(&y.graph)) {
                assert_eq!((ex.0, ex.1), (ey.0, ey.1));
                assert!((ex.2 - ey.2).abs() < 1e-9, "time drifted: {} vs {}", ex.2, ey.2);
            }
        }
    }

    #[test]
    fn undeclared_skew_shifts_but_never_panics() {
        let ds = corpus(12, 6);
        let plan =
            FaultPlan { num_origins: 4, skew: 50.0, declare_skew: false, ..FaultPlan::default() };
        let (rebuilt, report) = rebuild_dataset(&ds, &plan, 16);
        // Everything still ingests (per-origin streams remain monotonic and
        // lateness is unbounded) but the timelines are visibly shifted.
        assert_eq!(report.stats.released, report.ledger.emitted);
        let max_clean: f64 = ds.graphs[0].graph.edges().iter().map(|e| e.time).fold(0.0, f64::max);
        let max_dirty: f64 =
            rebuilt.graphs[0].graph.edges().iter().map(|e| e.time).fold(0.0, f64::max);
        assert!(max_dirty > max_clean);
    }

    #[test]
    fn clock_regression_reconciles_exactly() {
        let ds = corpus(16, 7);
        let plan = FaultPlan {
            num_origins: 2,
            regress_rate: 0.2,
            regression: 5.0,
            regress_tolerance: 0.0,
            ..FaultPlan::default()
        };
        let (_, report) = rebuild_dataset(&ds, &plan, 17);
        assert!(report.ledger.regressed > 0);
        assert_eq!(report.counts.count(RejectKind::NonMonotonicClock), report.ledger.regressed);
        assert_eq!(report.counts.total(), report.ledger.regressed);
    }

    #[test]
    fn shuffle_within_window_reconstructs() {
        let ds = corpus(16, 8);
        let plan = FaultPlan { shuffle_window: 8, shuffle_prob: 0.9, ..FaultPlan::default() };
        let (rebuilt, report) = rebuild_dataset(&ds, &plan, 18);
        assert!(report.ledger.shuffled_windows > 0);
        assert_eq!(report.counts.total(), 0);
        assert_graphs_equivalent(&ds, &rebuilt);
    }

    #[test]
    fn combined_schedule_reconciles_totals() {
        let ds = corpus(16, 9);
        let plan = FaultPlan {
            shuffle_window: 8,
            shuffle_prob: 0.5,
            dup_rate: 0.1,
            corrupt_rate: 0.1,
            ..FaultPlan::default()
        };
        let (_, report) = rebuild_dataset(&ds, &plan, 19);
        assert!(report.ledger.duplicated > 0 && report.ledger.corrupted > 0);
        assert_eq!(report.counts.count(RejectKind::Duplicate), report.ledger.duplicated);
        assert_eq!(report.counts.count(RejectKind::Malformed), report.ledger.corrupted);
        assert_eq!(report.counts.total(), report.ledger.duplicated + report.ledger.corrupted);
    }

    #[test]
    fn same_seed_same_chaos() {
        let ds = corpus(8, 10);
        let plan = FaultPlan::mixed(0.1);
        let (a, ra) = rebuild_dataset(&ds, &plan, 99);
        let (b, rb) = rebuild_dataset(&ds, &plan, 99);
        assert_eq!(ra.ledger, rb.ledger);
        assert_eq!(ra.counts, rb.counts);
        assert_graphs_identical(&a, &b);
        // A different seed lands different faults (deterministically so,
        // for this fixed corpus): chaos is keyed by the seed, not constant.
        let (_, rc) = rebuild_dataset(&ds, &plan, 100);
        assert_ne!(rc.ledger, ra.ledger);
    }

    #[test]
    fn inject_is_exclusive_per_event() {
        // emitted = input - dropped + duplicated, always.
        let ds = corpus(8, 11);
        for rate in [0.05, 0.2, 0.5] {
            let plan = FaultPlan::mixed(rate);
            let (_, r) = rebuild_dataset(&ds, &plan, 21);
            assert_eq!(
                r.ledger.emitted,
                r.ledger.input_events - r.ledger.dropped + r.ledger.duplicated
            );
            assert_eq!(r.stats.received, r.ledger.emitted);
        }
    }
}
