//! Labeled dynamic-graph datasets and the paper's train/test protocol.

use tpgnn_graph::{Ctdn, GraphStats};

/// One dynamic network with its ground-truth class (Definition 3):
/// positive = 1 (normal), negative = 0 (anomalous).
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The dynamic network.
    pub graph: Ctdn,
    /// Ground-truth label: `true` = positive (normal), `false` = negative.
    pub label: bool,
}

impl LabeledGraph {
    /// Label as the float target used by the BCE loss (1.0 / 0.0).
    pub fn target(&self) -> f32 {
        if self.label {
            1.0
        } else {
            0.0
        }
    }
}

/// A named collection of labeled dynamic networks.
#[derive(Clone, Debug, Default)]
pub struct GraphDataset {
    /// Dataset name (e.g. "Forum-java").
    pub name: String,
    /// The graphs, in generation order.
    pub graphs: Vec<LabeledGraph>,
}

impl GraphDataset {
    /// Creates an empty dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), graphs: Vec::new() }
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the dataset has no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Fraction of negative (label 0) graphs.
    pub fn negative_ratio(&self) -> f64 {
        if self.graphs.is_empty() {
            return 0.0;
        }
        let neg = self.graphs.iter().filter(|g| !g.label).count();
        neg as f64 / self.graphs.len() as f64
    }

    /// The paper's split: "the first 30% graphs of each dataset for training
    /// and the last 70% for testing" (Sec. V-D).
    pub fn split(&self, train_frac: f64) -> (&[LabeledGraph], &[LabeledGraph]) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac must be in [0, 1]");
        let cut = ((self.graphs.len() as f64) * train_frac).round() as usize;
        self.graphs.split_at(cut.min(self.graphs.len()))
    }

    /// Summary statistics across all graphs (feeds the Table I harness).
    pub fn stats(&mut self) -> DatasetStats {
        let n = self.graphs.len();
        // Per-graph stats are independent; fan out over the worker pool and
        // fold the (input-ordered) results sequentially.
        let per_graph =
            tpgnn_par::map_mut(&mut self.graphs, || (), |_, _i, lg| GraphStats::compute(&mut lg.graph));
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut feature_dim = 0usize;
        for s in &per_graph {
            nodes += s.active_nodes;
            edges += s.num_edges;
            feature_dim = s.feature_dim;
        }
        DatasetStats {
            name: self.name.clone(),
            graph_number: n,
            negative_ratio: self.negative_ratio(),
            avg_nodes: if n == 0 { 0.0 } else { nodes as f64 / n as f64 },
            avg_edges: if n == 0 { 0.0 } else { edges as f64 / n as f64 },
            node_features: feature_dim,
        }
    }
}

/// The Table I row for one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub graph_number: usize,
    /// Fraction of negative graphs.
    pub negative_ratio: f64,
    /// Average number of active nodes per graph.
    pub avg_nodes: f64,
    /// Average number of temporal edges per graph.
    pub avg_edges: f64,
    /// Node feature dimension.
    pub node_features: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(label: bool) -> LabeledGraph {
        let mut g = Ctdn::with_zero_features(3, 3);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        LabeledGraph { graph: g, label }
    }

    #[test]
    fn target_encoding() {
        assert_eq!(tiny(true).target(), 1.0);
        assert_eq!(tiny(false).target(), 0.0);
    }

    #[test]
    fn ratio_and_split() {
        let mut ds = GraphDataset::new("toy");
        for i in 0..10 {
            ds.graphs.push(tiny(i % 3 != 0)); // 4 negatives (0,3,6,9)
        }
        assert!((ds.negative_ratio() - 0.4).abs() < 1e-9);
        let (train, test) = ds.split(0.3);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 7);
    }

    #[test]
    fn stats_averages() {
        let mut ds = GraphDataset::new("toy");
        ds.graphs.push(tiny(true));
        ds.graphs.push(tiny(false));
        let s = ds.stats();
        assert_eq!(s.graph_number, 2);
        assert_eq!(s.avg_nodes, 3.0);
        assert_eq!(s.avg_edges, 2.0);
        assert_eq!(s.node_features, 3);
        assert!((s.negative_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_stats() {
        let mut ds = GraphDataset::new("empty");
        let s = ds.stats();
        assert_eq!(s.graph_number, 0);
        assert_eq!(s.avg_nodes, 0.0);
        assert_eq!(ds.split(0.3).0.len(), 0);
    }
}
