//! The paper's Fig. 1 session-network pair as a canonical library fixture.
//!
//! Two Forum-java log-session networks that are **topologically identical**
//! and differ only in when the second `v7 → v6` interaction happens: before
//! `v9 → v8` and `v8 → v7` in the normal session, after them in the
//! abnormal one. Static models provably cannot distinguish the pair; it is
//! the minimal witness of why temporal propagation exists, reused by the
//! examples, the integration tests, and the documentation.

use tpgnn_graph::{Ctdn, NodeFeatures};

/// Build the Fig. 1 pair: `(normal, abnormal)`.
pub fn fig1_pair() -> (Ctdn, Ctdn) {
    (fig1_graph(true), fig1_graph(false))
}

/// Build one of the Fig. 1 session networks (`normal = true` for the left
/// graph of the figure).
pub fn fig1_graph(normal: bool) -> Ctdn {
    let mut feats = NodeFeatures::zeros(10, 3);
    for v in 0..10 {
        feats.row_mut(v).copy_from_slice(&[v as f32 / 10.0, 0.5, 0.0]);
    }
    let mut g = Ctdn::new(feats);
    let add = |g: &mut Ctdn, s, d, t| {
        g.try_add_edge(s, d, t).expect("fig1 edges are hardcoded valid")
    };
    add(&mut g, 3, 1, 1.0);
    add(&mut g, 2, 1, 1.8);
    add(&mut g, 1, 0, 2.6);
    add(&mut g, 0, 5, 3.4);
    add(&mut g, 5, 6, 4.1);
    add(&mut g, 7, 6, 4.9);
    add(&mut g, 9, 8, 6.0);
    add(&mut g, 8, 7, 7.0);
    // The only difference between the two session networks: whether the
    // second v7 -> v6 interaction fires before or after v8/v9's information
    // has reached v7.
    add(&mut g, 7, 6, if normal { 5.5 } else { 7.4 });
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_graph::InfluenceAnalysis;

    #[test]
    fn pair_is_statically_identical() {
        let (mut normal, mut abnormal) = fig1_pair();
        let mut a: Vec<(usize, usize)> =
            normal.edges_chronological().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(usize, usize)> =
            abnormal.edges_chronological().iter().map(|e| (e.src, e.dst)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(normal.features(), abnormal.features());
    }

    #[test]
    fn abnormal_graph_extends_v6_influence() {
        // The figure's point: only in the abnormal graph do v8 and v9
        // influence v6 (through the late second v7 -> v6 interaction).
        let (mut normal, mut abnormal) = fig1_pair();
        let inf_n = InfluenceAnalysis::compute(&mut normal);
        let inf_a = InfluenceAnalysis::compute(&mut abnormal);
        for probe in [8usize, 9] {
            assert!(!inf_n.is_influential(probe, 6), "normal: v{probe} must not reach v6");
            assert!(inf_a.is_influential(probe, 6), "abnormal: v{probe} must reach v6");
        }
        // Shared upstream influence is identical in both graphs.
        assert!(inf_n.is_influential(5, 6) && inf_a.is_influential(5, 6));
        assert!(inf_n.is_influential(7, 6) && inf_a.is_influential(7, 6));
    }
}
