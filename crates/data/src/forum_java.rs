//! Forum-java dataset simulator.
//!
//! The paper's Forum-java dataset contains 172,443 dynamic session networks
//! parsed from the logs of an open-source Java forum system: nodes are log
//! events with invoking information, duration, and exception features; edges
//! record event order; negatives come from running four fault-injected
//! versions of the system. The real logs are not redistributable, so this
//! module generates the closest synthetic equivalent: sessions are sampled
//! from a Markov chain over event templates (requests flow through auth →
//! controller → service → DAO → render stages with occasional async
//! branches), and negatives are produced by injecting four fault types with
//! the same flavour as the paper's industrial case (crash truncation, event
//! reordering, missing event, spurious late edge).

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::Rng;
use tpgnn_graph::{Ctdn, NodeFeatures, TemporalEdge};

/// Number of distinct log-event templates in the synthetic catalog.
pub const NUM_EVENT_TYPES: usize = 12;

/// Tunables of the session generator; defaults match Table I
/// (avg ≈ 27 nodes, ≈ 30 edges, 3 node features).
#[derive(Clone, Debug)]
pub struct ForumJavaConfig {
    /// Mean number of events (nodes) per session.
    pub avg_events: f64,
    /// Minimum number of events.
    pub min_events: usize,
    /// Probability that a stage spawns an async branch (adds merge edges).
    pub branch_prob: f64,
}

impl Default for ForumJavaConfig {
    fn default() -> Self {
        Self { avg_events: 27.0, min_events: 6, branch_prob: 0.12 }
    }
}

/// The four injected fault types used to label sessions as negative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The session dies early: tail events dropped, a final exception event
    /// (exception feature = 1) is appended.
    CrashTruncation,
    /// A window of events executes in the wrong order (timestamps permuted;
    /// statically identical to the positive session — the Fig. 1 case).
    EventReorder,
    /// An intermediate event is skipped; its predecessor links straight to
    /// its successor.
    MissingEvent,
    /// A spurious repeat edge appears *after* later events, changing the
    /// information flow (the extra `v7 → v6` of Fig. 1).
    SpuriousLateEdge,
}

impl Fault {
    /// All fault kinds, for round-robin injection.
    pub const ALL: [Fault; 4] = [
        Fault::CrashTruncation,
        Fault::EventReorder,
        Fault::MissingEvent,
        Fault::SpuriousLateEdge,
    ];
}

/// Event-template transition table: `succ[t]` lists likely successors of
/// template `t`. Templates 0..3 are entry/auth stages, 4..8 service and DAO
/// stages, 9..10 render stages, 11 is the exception template.
fn successors(t: usize) -> &'static [usize] {
    const TABLE: [&[usize]; NUM_EVENT_TYPES] = [
        &[1, 2],       // 0 request-received -> auth / session-lookup
        &[2, 3],       // 1 auth
        &[3, 4],       // 2 session-lookup
        &[4, 5, 6],    // 3 controller-dispatch
        &[5, 6, 7],    // 4 service-call
        &[6, 7, 8],    // 5 cache-check
        &[7, 8],       // 6 dao-query
        &[8, 9, 4],    // 7 db-roundtrip (may loop back to service)
        &[9, 10],      // 8 result-assembly
        &[10, 9],      // 9 template-render
        &[10],         // 10 response-sent (absorbing)
        &[11],         // 11 exception (absorbing)
    ];
    TABLE[t]
}

fn duration_for(template: usize, rng: &mut StdRng) -> f32 {
    // DAO/db stages are slower; durations roughly log-uniform in (0, 1].
    let base: f32 = match template {
        6 | 7 => 0.55,
        4 | 5 => 0.35,
        _ => 0.2,
    };
    (base + rng.random_range(0.0..0.25)).min(1.0)
}

fn feature_row(template: usize, duration: f32, exception: f32) -> [f32; 3] {
    [template as f32 / NUM_EVENT_TYPES as f32, duration, exception]
}

/// Generate one *positive* session network.
pub fn generate_session(cfg: &ForumJavaConfig, rng: &mut StdRng) -> Ctdn {
    // Session length: geometric-ish around the mean.
    let spread = (cfg.avg_events * 0.35).max(1.0);
    let n_f = cfg.avg_events + rng.random_range(-spread..spread);
    let n = (n_f.round() as usize).max(cfg.min_events);

    // Walk the template chain, recording (template, timestamp).
    let mut templates = Vec::with_capacity(n);
    let mut t = 0usize;
    templates.push(t);
    while templates.len() < n {
        let succ = successors(t);
        t = succ[rng.random_range(0..succ.len())];
        templates.push(t);
    }

    let mut features = NodeFeatures::zeros(n, 3);
    for (i, &tpl) in templates.iter().enumerate() {
        let d = duration_for(tpl, rng);
        features.row_mut(i).copy_from_slice(&feature_row(tpl, d, 0.0));
    }
    let mut g = Ctdn::new(features);

    // Main chain edges with strictly increasing timestamps (small random
    // gaps; occasional ties to exercise the same-timestamp shuffling).
    let mut time = 0.0f64;
    let mut times = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.random_bool(0.05) {
            // tie with previous event
        } else {
            time += rng.random_range(0.2..1.2);
        }
        times.push(time);
    }
    for (i, &t) in times.iter().enumerate().skip(1) {
        g.try_add_edge(i - 1, i, t).expect("session chain uses in-bounds nodes and positive times");
    }

    // Async branches: an earlier event also links forward to a later one,
    // merging back into the main flow.
    for i in 1..n.saturating_sub(2) {
        if rng.random_bool(cfg.branch_prob) {
            let span = rng.random_range(2..=3.min(n - 1 - i));
            let j = i + span;
            g.try_add_edge(i - 1, j, times[j])
                .expect("branch target is clamped to the last session event");
        }
    }
    g
}

/// Inject `fault` into a positive session, producing a negative sample.
pub fn inject_fault(positive: &Ctdn, fault: Fault, rng: &mut StdRng) -> Ctdn {
    match fault {
        Fault::CrashTruncation => crash_truncation(positive, rng),
        Fault::EventReorder => event_reorder(positive, rng),
        Fault::MissingEvent => missing_event(positive, rng),
        Fault::SpuriousLateEdge => spurious_late_edge(positive, rng),
    }
}

fn crash_truncation(g: &Ctdn, rng: &mut StdRng) -> Ctdn {
    let edges = g.edges().to_vec();
    if edges.len() < 4 {
        return spurious_late_edge(g, rng);
    }
    let keep = rng.random_range(edges.len() / 2..edges.len() - 1);
    let mut kept: Vec<TemporalEdge> = edges[..keep].to_vec();
    // The crash shows up as an exception event: flag the last reached node
    // and reuse the exception template feature.
    let last = kept.last().expect("non-empty").dst;
    let t_crash = kept.last().expect("non-empty").time + 0.1;
    let mut out = g.clone();
    // Find a node index not used after truncation to act as the exception
    // event; reuse the final original node to keep the universe unchanged.
    let exc = g.num_nodes() - 1;
    out.features_mut()
        .row_mut(exc)
        .copy_from_slice(&feature_row(11, 0.9, 1.0));
    kept.push(TemporalEdge::new(last, exc, t_crash));
    out.set_edges(kept);
    out
}

fn event_reorder(g: &Ctdn, rng: &mut StdRng) -> Ctdn {
    let mut edges = g.edges().to_vec();
    if edges.len() < 4 {
        return spurious_late_edge(g, rng);
    }
    // Reverse the (src, dst) pairs of a random window while the timestamp
    // sequence stays fixed — statically identical, temporally anomalous.
    let w = rng.random_range(3..=edges.len().min(6));
    let start = rng.random_range(0..=edges.len() - w);
    let times: Vec<f64> = edges[start..start + w].iter().map(|e| e.time).collect();
    let mut pairs: Vec<(usize, usize)> = edges[start..start + w].iter().map(|e| (e.src, e.dst)).collect();
    pairs.reverse();
    for (k, ((s, d), t)) in pairs.into_iter().zip(times).enumerate() {
        edges[start + k] = TemporalEdge::new(s, d, t);
    }
    let mut out = g.clone();
    out.set_edges(edges);
    out
}

fn missing_event(g: &Ctdn, rng: &mut StdRng) -> Ctdn {
    let edges = g.edges().to_vec();
    if edges.len() < 4 {
        return spurious_late_edge(g, rng);
    }
    // Pick a consecutive chain pair (a -> b, b -> c) and splice out b.
    for _ in 0..16 {
        let i = rng.random_range(0..edges.len() - 1);
        let b = edges[i].dst;
        if let Some(j) = edges.iter().enumerate().position(|(k, e)| k > i && e.src == b) {
            let mut new_edges: Vec<TemporalEdge> = Vec::with_capacity(edges.len() - 1);
            for (k, e) in edges.iter().enumerate() {
                if k == i {
                    continue;
                }
                if k == j {
                    new_edges.push(TemporalEdge::new(edges[i].src, e.dst, e.time));
                } else {
                    new_edges.push(*e);
                }
            }
            let mut out = g.clone();
            out.set_edges(new_edges);
            return out;
        }
    }
    spurious_late_edge(g, rng)
}

fn spurious_late_edge(g: &Ctdn, rng: &mut StdRng) -> Ctdn {
    let mut edges = g.edges().to_vec();
    if edges.is_empty() {
        return g.clone();
    }
    // Repeat an early edge after the final timestamp — the extra v7 → v6 of
    // Fig. 1, which flips the information flow seen by temporal propagation.
    let pick = rng.random_range(0..edges.len().div_ceil(2));
    let e = edges[pick];
    let t_max = edges.iter().map(|x| x.time).fold(0.0, f64::max);
    edges.push(TemporalEdge::new(e.src, e.dst, t_max + rng.random_range(0.1..0.5)));
    let mut out = g.clone();
    out.set_edges(edges);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    #[test]
    fn sessions_have_expected_scale() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let reps = 200;
        for _ in 0..reps {
            let g = generate_session(&cfg, &mut rng);
            nodes += g.num_nodes();
            edges += g.num_edges();
        }
        let avg_n = nodes as f64 / reps as f64;
        let avg_m = edges as f64 / reps as f64;
        assert!((avg_n - 27.0).abs() < 4.0, "avg nodes = {avg_n}");
        assert!(avg_m > avg_n && avg_m < avg_n + 8.0, "avg edges = {avg_m}");
    }

    #[test]
    fn sessions_are_chronological_and_valid() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let mut g = generate_session(&cfg, &mut rng);
            let edges = g.edges_chronological();
            for w in edges.windows(2) {
                assert!(w[0].time <= w[1].time);
            }
            assert!(edges.iter().all(|e| e.time > 0.0));
        }
    }

    #[test]
    fn features_are_normalized() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate_session(&cfg, &mut rng);
        for v in 0..g.num_nodes() {
            for &f in g.features().row(v) {
                assert!((0.0..=1.0).contains(&f), "feature {f} out of range");
            }
        }
    }

    #[test]
    fn crash_truncation_sets_exception_flag() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let pos = generate_session(&cfg, &mut rng);
        let neg = inject_fault(&pos, Fault::CrashTruncation, &mut rng);
        assert!(neg.num_edges() < pos.num_edges() + 1);
        let has_exception = (0..neg.num_nodes()).any(|v| neg.features().row(v)[2] == 1.0);
        assert!(has_exception, "crash must flag an exception event");
    }

    #[test]
    fn event_reorder_is_statically_identical() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let pos = generate_session(&cfg, &mut rng);
        let neg = inject_fault(&pos, Fault::EventReorder, &mut rng);
        let mut a: Vec<(usize, usize)> = pos.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(usize, usize)> = neg.edges().iter().map(|e| (e.src, e.dst)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "reorder must keep the static multiset");
        assert_ne!(pos.edges(), neg.edges(), "but must change the sequence");
    }

    #[test]
    fn missing_event_removes_one_edge() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let pos = generate_session(&cfg, &mut rng);
        let neg = inject_fault(&pos, Fault::MissingEvent, &mut rng);
        assert!(neg.num_edges() <= pos.num_edges());
    }

    #[test]
    fn spurious_late_edge_extends_timeline() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut pos = generate_session(&cfg, &mut rng);
        let mut neg = inject_fault(&pos, Fault::SpuriousLateEdge, &mut rng);
        assert_eq!(neg.num_edges(), pos.num_edges() + 1);
        let t_pos = pos.time_span().expect("edges").1;
        let t_neg = neg.time_span().expect("edges").1;
        assert!(t_neg > t_pos);
    }

    #[test]
    fn all_faults_produce_different_graphs() {
        let cfg = ForumJavaConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        let pos = generate_session(&cfg, &mut rng);
        for fault in Fault::ALL {
            let neg = inject_fault(&pos, fault, &mut rng);
            assert!(
                neg.edges() != pos.edges() || neg.features() != pos.features(),
                "{fault:?} produced an identical graph"
            );
        }
    }
}
