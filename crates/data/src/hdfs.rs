//! HDFS dataset simulator.
//!
//! The paper's HDFS dataset holds 575,061 block-session networks parsed from
//! the public HDFS console logs [40], with expert anomaly labels. Each block
//! session is small (Table I: avg ≈ 12 nodes, ≈ 31 edges) — far more edges
//! than nodes, because block operations (allocate / write / replicate / ack)
//! repeat between the same pair of events for every replica and packet.
//!
//! The generator mimics that shape: a block lifecycle walks a small state
//! machine whose write/ack loop revisits the same node pairs many times.
//! Node features are the label-encoded (level, source module, thread id)
//! triple the paper uses. Negatives replay the lifecycle with anomalies
//! (reordered pipeline, dropped ack loop, duplicated tail operations),
//! mirroring the expert-labeled anomalous blocks.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::Rng;
use tpgnn_graph::{Ctdn, NodeFeatures, TemporalEdge};

/// Number of distinct HDFS event templates.
pub const NUM_EVENT_TYPES: usize = 9;

/// Generator tunables; defaults match Table I (avg ≈ 12 nodes, ≈ 31 edges).
#[derive(Clone, Debug)]
pub struct HdfsConfig {
    /// Mean number of replicas in the write pipeline.
    pub avg_replicas: f64,
    /// Mean number of write/ack rounds per replica.
    pub avg_rounds: f64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        Self { avg_replicas: 3.0, avg_rounds: 3.0 }
    }
}

// Event templates: 0 allocate, 1 addStoredBlock, 2 receiving, 3 received,
// 4 packet-responder, 5 write, 6 ack, 7 terminate, 8 error.
fn feature_row(template: usize, thread: usize, rng: &mut StdRng) -> [f32; 3] {
    let level = match template {
        8 => 1.0,               // ERROR
        4 | 6 => 0.5,           // DEBUG-ish responder chatter
        _ => 0.0,               // INFO
    };
    let module = template as f32 / NUM_EVENT_TYPES as f32;
    let thread_feat = (thread as f32 / 8.0 + rng.random_range(0.0..0.05)).min(1.0);
    [level, module, thread_feat]
}

/// Generate one *positive* block-session network.
pub fn generate_block_session(cfg: &HdfsConfig, rng: &mut StdRng) -> Ctdn {
    let replicas =
        ((cfg.avg_replicas + rng.random_range(-1.0..1.5)).round() as usize).max(2);
    let rounds = ((cfg.avg_rounds + rng.random_range(-1.0..2.0)).round() as usize).max(2);

    // Node layout: 0 allocate, 1 addStoredBlock, then per replica a
    // (receiving, write, ack) triple, finally received + terminate.
    let per_replica = 3;
    let n = 2 + replicas * per_replica + 2;
    let mut features = NodeFeatures::zeros(n, 3);
    features.row_mut(0).copy_from_slice(&feature_row(0, 0, rng));
    features.row_mut(1).copy_from_slice(&feature_row(1, 0, rng));
    for r in 0..replicas {
        let base = 2 + r * per_replica;
        features.row_mut(base).copy_from_slice(&feature_row(2, r + 1, rng));
        features.row_mut(base + 1).copy_from_slice(&feature_row(5, r + 1, rng));
        features.row_mut(base + 2).copy_from_slice(&feature_row(6, r + 1, rng));
    }
    let received = n - 2;
    let terminate = n - 1;
    features.row_mut(received).copy_from_slice(&feature_row(3, 0, rng));
    features.row_mut(terminate).copy_from_slice(&feature_row(7, 0, rng));

    let mut g = Ctdn::new(features);
    let mut t = 0.0f64;
    let mut tick = |rng: &mut StdRng| {
        t += rng.random_range(0.05..0.4);
        t
    };

    g.try_add_edge(0, 1, tick(rng)).expect("hdfs pipeline nodes are in bounds");
    let mut prev = 1;
    for r in 0..replicas {
        let base = 2 + r * per_replica;
        let (recv, write, ack) = (base, base + 1, base + 2);
        g.try_add_edge(prev, recv, tick(rng)).expect("hdfs pipeline nodes are in bounds");
        // Write/ack rounds revisit the same node pair — this is what pushes
        // the edge count far above the node count.
        for _ in 0..rounds {
            g.try_add_edge(recv, write, tick(rng)).expect("hdfs pipeline nodes are in bounds");
            g.try_add_edge(write, ack, tick(rng)).expect("hdfs pipeline nodes are in bounds");
        }
        g.try_add_edge(ack, received, tick(rng)).expect("hdfs pipeline nodes are in bounds");
        prev = recv;
    }
    g.try_add_edge(received, terminate, tick(rng)).expect("hdfs pipeline nodes are in bounds");
    g
}

/// Anomaly kinds used for the negative (anomalous) block sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HdfsAnomaly {
    /// The write pipeline acknowledges before writing (temporal inversion).
    PipelineReorder,
    /// A replica's ack loop is silently dropped (missing redundancy).
    DroppedAckLoop,
    /// Tail operations are duplicated after termination (stuck responder).
    DuplicatedTail,
}

impl HdfsAnomaly {
    /// All anomaly kinds, for round-robin injection.
    pub const ALL: [HdfsAnomaly; 3] = [
        HdfsAnomaly::PipelineReorder,
        HdfsAnomaly::DroppedAckLoop,
        HdfsAnomaly::DuplicatedTail,
    ];
}

/// Inject `anomaly` into a positive block session.
pub fn inject_anomaly(positive: &Ctdn, anomaly: HdfsAnomaly, rng: &mut StdRng) -> Ctdn {
    let edges = positive.edges().to_vec();
    let mut out = positive.clone();
    match anomaly {
        HdfsAnomaly::PipelineReorder => {
            // Reverse the (src,dst) sequence of a window of pipeline edges
            // while keeping the timestamp ladder fixed.
            if edges.len() < 6 {
                return out;
            }
            let w = rng.random_range(4..=edges.len().min(8));
            let start = rng.random_range(0..=edges.len() - w);
            let mut new_edges = edges.clone();
            let times: Vec<f64> = edges[start..start + w].iter().map(|e| e.time).collect();
            let mut pairs: Vec<(usize, usize)> =
                edges[start..start + w].iter().map(|e| (e.src, e.dst)).collect();
            pairs.reverse();
            for (k, ((s, d), tt)) in pairs.into_iter().zip(times).enumerate() {
                new_edges[start + k] = TemporalEdge::new(s, d, tt);
            }
            out.set_edges(new_edges);
        }
        HdfsAnomaly::DroppedAckLoop => {
            // Remove every other write->ack edge of one replica group.
            let ack_edges: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter_map(|(i, e)| (e.dst >= 2 && (e.dst - 2) % 3 == 2 && e.src + 1 == e.dst).then_some(i))
                .collect();
            if ack_edges.len() < 2 {
                return out;
            }
            let drop: Vec<usize> = ack_edges.iter().copied().step_by(2).collect();
            let new_edges: Vec<TemporalEdge> = edges
                .iter()
                .enumerate()
                .filter_map(|(i, e)| (!drop.contains(&i)).then_some(*e))
                .collect();
            out.set_edges(new_edges);
        }
        HdfsAnomaly::DuplicatedTail => {
            let mut new_edges = edges.clone();
            let t_max = edges.iter().map(|e| e.time).fold(0.0, f64::max);
            let k = rng.random_range(2..=4.min(edges.len()));
            for (j, e) in edges[edges.len() - k..].iter().enumerate() {
                new_edges.push(TemporalEdge::new(e.src, e.dst, t_max + 0.1 * (j + 1) as f64));
            }
            out.set_edges(new_edges);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    #[test]
    fn block_sessions_match_table1_scale() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let (mut nodes, mut edges) = (0usize, 0usize);
        let reps = 200;
        for _ in 0..reps {
            let g = generate_block_session(&cfg, &mut rng);
            nodes += g.num_nodes();
            edges += g.num_edges();
        }
        let avg_n = nodes as f64 / reps as f64;
        let avg_m = edges as f64 / reps as f64;
        assert!((avg_n - 12.0).abs() < 3.0, "avg nodes = {avg_n}");
        assert!((avg_m - 31.0).abs() < 8.0, "avg edges = {avg_m}");
        assert!(avg_m > 2.0 * avg_n, "HDFS sessions are edge-dense");
    }

    #[test]
    fn sessions_are_chronological() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = generate_block_session(&cfg, &mut rng);
        for w in g.edges_chronological().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn pipeline_reorder_keeps_static_multiset() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let pos = generate_block_session(&cfg, &mut rng);
        let neg = inject_anomaly(&pos, HdfsAnomaly::PipelineReorder, &mut rng);
        let mut a: Vec<(usize, usize)> = pos.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(usize, usize)> = neg.edges().iter().map(|e| (e.src, e.dst)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_ne!(pos.edges(), neg.edges());
    }

    #[test]
    fn dropped_ack_loop_reduces_edges() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let pos = generate_block_session(&cfg, &mut rng);
        let neg = inject_anomaly(&pos, HdfsAnomaly::DroppedAckLoop, &mut rng);
        assert!(neg.num_edges() < pos.num_edges());
    }

    #[test]
    fn duplicated_tail_appends_late_edges() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut pos = generate_block_session(&cfg, &mut rng);
        let mut neg = inject_anomaly(&pos, HdfsAnomaly::DuplicatedTail, &mut rng);
        assert!(neg.num_edges() > pos.num_edges());
        assert!(neg.time_span().expect("edges").1 > pos.time_span().expect("edges").1);
    }

    #[test]
    fn features_are_in_range() {
        let cfg = HdfsConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let g = generate_block_session(&cfg, &mut rng);
        for v in 0..g.num_nodes() {
            for &f in g.features().row(v) {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
