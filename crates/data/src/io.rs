//! Plain-text dataset serialization.
//!
//! A deliberately simple line format (no external serialization crates):
//!
//! ```text
//! dataset <name> <num_graphs>
//! graph <label:0|1> <num_nodes> <feature_dim> <num_edges>
//! node <f_0> <f_1> … <f_{q-1}>          (× num_nodes)
//! edge <src> <dst> <time>               (× num_edges)
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use tpgnn_graph::stream::{CtdnBuilder, StreamConfig, StreamEvent, StreamStats};
use tpgnn_graph::{Ctdn, NodeFeatures};

use crate::chaos::QuarantineCounts;
use crate::dataset::{GraphDataset, LabeledGraph};

/// Serialize a dataset to the line format described in the module docs.
pub fn to_string(ds: &GraphDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dataset {} {}", ds.name.replace(' ', "_"), ds.graphs.len());
    for lg in &ds.graphs {
        let g = &lg.graph;
        let _ = writeln!(
            out,
            "graph {} {} {} {}",
            u8::from(lg.label),
            g.num_nodes(),
            g.feature_dim(),
            g.num_edges()
        );
        for v in 0..g.num_nodes() {
            out.push_str("node");
            for f in g.features().row(v) {
                let _ = write!(out, " {f}");
            }
            out.push('\n');
        }
        for e in g.edges() {
            let _ = writeln!(out, "edge {} {} {}", e.src, e.dst, e.time);
        }
    }
    out
}

/// A parse failure, attributed to the 1-based input line that caused it.
///
/// Corrupt dataset files are a *reportable condition*, never a panic: every
/// failure mode of [`from_str`] — malformed headers, bad numbers, truncated
/// sections, out-of-bounds edges, non-finite values, absurd size claims —
/// maps to a `ParseError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong on that line.
    pub msg: String,
}

impl ParseError {
    fn new(line_idx0: usize, msg: impl Into<String>) -> Self {
        Self { line: line_idx0 + 1, msg: msg.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Ceiling on `num_nodes × feature_dim` per graph, so a corrupt header
/// claiming absurd dimensions is rejected instead of triggering a
/// multi-gigabyte allocation (16M floats = 64 MiB).
pub const MAX_FEATURE_ELEMS: usize = 1 << 24;

/// Summary of what the tolerant loader ([`from_str_streamed`]) quarantined
/// while ingesting a file through the streaming builder.
#[derive(Clone, Debug, Default)]
pub struct IngestReport {
    /// Summed builder stats across all graphs in the file
    /// (`max_buffer_depth` is the per-graph maximum).
    pub stats: StreamStats,
    /// Summed quarantine counts by reason kind.
    pub counts: QuarantineCounts,
}

/// How the parser turns `edge` lines into a graph.
enum EdgeSink {
    /// Strict: any bad edge fails the whole file with a [`ParseError`].
    Direct(Ctdn),
    /// Tolerant: edges stream through a [`CtdnBuilder`]; bad edges are
    /// quarantined, the file keeps loading.
    Builder(Box<CtdnBuilder>),
}

/// Parse a dataset from the line format. Never panics: malformed input of
/// any kind yields a line-numbered [`ParseError`].
pub fn from_str(text: &str) -> Result<GraphDataset, ParseError> {
    parse_impl(text, None).map(|(ds, _)| ds)
}

/// Parse a dataset tolerantly: the file *structure* (headers, node lines,
/// truncation) must still be sound — those failures are [`ParseError`]s —
/// but every `edge` line streams through a [`CtdnBuilder`] under `cfg`, so
/// dirty edges (out-of-bounds endpoints, bad timestamps, out-of-order or
/// duplicated records) are quarantined per graph instead of failing the
/// whole file. The report says what was dropped.
pub fn from_str_streamed(
    text: &str,
    cfg: &StreamConfig,
) -> Result<(GraphDataset, IngestReport), ParseError> {
    parse_impl(text, Some(cfg)).map(|(ds, report)| (ds, report.unwrap_or_default()))
}

fn parse_impl(
    text: &str,
    streamed: Option<&StreamConfig>,
) -> Result<(GraphDataset, Option<IngestReport>), ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseError::new(0, "empty input"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("dataset") {
        return Err(ParseError::new(0, "missing `dataset` header"));
    }
    let name = parts.next().ok_or_else(|| ParseError::new(0, "missing dataset name"))?.to_string();
    let count: usize = parts
        .next()
        .ok_or_else(|| ParseError::new(0, "missing graph count"))?
        .parse()
        .map_err(|e| ParseError::new(0, format!("bad graph count: {e}")))?;

    let mut ds = GraphDataset::new(name);
    let mut report = streamed.map(|_| IngestReport::default());
    let mut last_line = 0;
    for _ in 0..count {
        let (ln, gline) =
            lines.next().ok_or_else(|| ParseError::new(last_line, "unexpected end of input"))?;
        last_line = ln;
        let mut p = gline.split_whitespace();
        if p.next() != Some("graph") {
            return Err(ParseError::new(ln, "expected `graph`"));
        }
        let label: u8 = p
            .next()
            .ok_or_else(|| ParseError::new(ln, "missing label"))?
            .parse()
            .map_err(|e| ParseError::new(ln, format!("bad label: {e}")))?;
        let n: usize = p
            .next()
            .ok_or_else(|| ParseError::new(ln, "missing node count"))?
            .parse()
            .map_err(|e| ParseError::new(ln, format!("bad node count: {e}")))?;
        let q: usize = p
            .next()
            .ok_or_else(|| ParseError::new(ln, "missing feature dim"))?
            .parse()
            .map_err(|e| ParseError::new(ln, format!("bad feature dim: {e}")))?;
        let m: usize = p
            .next()
            .ok_or_else(|| ParseError::new(ln, "missing edge count"))?
            .parse()
            .map_err(|e| ParseError::new(ln, format!("bad edge count: {e}")))?;
        match n.checked_mul(q) {
            Some(elems) if elems <= MAX_FEATURE_ELEMS => {}
            _ => {
                return Err(ParseError::new(
                    ln,
                    format!("feature matrix {n}x{q} exceeds the {MAX_FEATURE_ELEMS}-element limit"),
                ))
            }
        }

        let mut feats = NodeFeatures::zeros(n, q);
        for v in 0..n {
            let (ln, nline) = lines
                .next()
                .ok_or_else(|| ParseError::new(last_line, "unexpected end of input in nodes"))?;
            last_line = ln;
            let mut p = nline.split_whitespace();
            if p.next() != Some("node") {
                return Err(ParseError::new(ln, "expected `node`"));
            }
            for (j, tok) in p.enumerate() {
                if j >= q {
                    return Err(ParseError::new(ln, "too many features"));
                }
                let f: f32 = tok
                    .parse()
                    .map_err(|e| ParseError::new(ln, format!("bad feature: {e}")))?;
                if !f.is_finite() {
                    return Err(ParseError::new(ln, format!("non-finite feature {f}")));
                }
                feats.row_mut(v)[j] = f;
            }
        }
        let mut sink = match streamed {
            None => EdgeSink::Direct(Ctdn::new(feats)),
            Some(cfg) => EdgeSink::Builder(Box::new(CtdnBuilder::new(feats, cfg.clone()))),
        };
        for _ in 0..m {
            let (ln, eline) = lines
                .next()
                .ok_or_else(|| ParseError::new(last_line, "unexpected end of input in edges"))?;
            last_line = ln;
            let mut p = eline.split_whitespace();
            if p.next() != Some("edge") {
                return Err(ParseError::new(ln, "expected `edge`"));
            }
            match &mut sink {
                EdgeSink::Direct(g) => {
                    let src: usize = p
                        .next()
                        .ok_or_else(|| ParseError::new(ln, "missing src"))?
                        .parse()
                        .map_err(|e| ParseError::new(ln, format!("bad src: {e}")))?;
                    let dst: usize = p
                        .next()
                        .ok_or_else(|| ParseError::new(ln, "missing dst"))?
                        .parse()
                        .map_err(|e| ParseError::new(ln, format!("bad dst: {e}")))?;
                    let t: f64 = p
                        .next()
                        .ok_or_else(|| ParseError::new(ln, "missing time"))?
                        .parse()
                        .map_err(|e| ParseError::new(ln, format!("bad time: {e}")))?;
                    // Route untrusted edges through the CTDN's fallible
                    // ingestion path; its typed error carries the
                    // endpoint/timestamp details.
                    g.try_add_edge(src, dst, t).map_err(|e| ParseError::new(ln, e.to_string()))?;
                }
                EdgeSink::Builder(b) => {
                    // A token that fails to parse degrades to a value the
                    // builder quarantines as malformed — the record is lost,
                    // the file is not.
                    let src = p.next().and_then(|t| t.parse().ok()).unwrap_or(usize::MAX);
                    let dst = p.next().and_then(|t| t.parse().ok()).unwrap_or(usize::MAX);
                    let t = p.next().and_then(|t| t.parse().ok()).unwrap_or(f64::NAN);
                    b.push(StreamEvent::new(src, dst, t));
                }
            }
        }
        let g = match sink {
            EdgeSink::Direct(g) => g,
            EdgeSink::Builder(b) => {
                let out = b.finish();
                let r = report.as_mut().expect("report exists in streamed mode");
                r.stats.received += out.stats.received;
                r.stats.released += out.stats.released;
                r.stats.quarantined += out.stats.quarantined;
                r.stats.forced_releases += out.stats.forced_releases;
                r.stats.max_buffer_depth =
                    r.stats.max_buffer_depth.max(out.stats.max_buffer_depth);
                r.counts.absorb(&out.quarantine);
                out.graph
            }
        };
        ds.graphs.push(LabeledGraph { graph: g, label: label != 0 });
    }
    if let Some((ln, trailing)) = lines.find(|(_, l)| !l.trim().is_empty()) {
        return Err(ParseError::new(ln, format!("trailing data after last graph: `{trailing}`")));
    }
    Ok((ds, report))
}

/// Write a dataset to `path` (through the process-global
/// [`tpgnn_obs::vfs`] stack, so transient failures retry and faults are
/// typed and counted).
pub fn save(ds: &GraphDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let vfs = tpgnn_obs::vfs::global();
    vfs.write(path.as_ref(), to_string(ds).as_bytes()).map_err(io::Error::from)
}

/// Read a dataset from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<GraphDataset> {
    let vfs = tpgnn_obs::vfs::global();
    let text = tpgnn_obs::vfs::read_to_string(&*vfs, path.as_ref())?;
    from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read a dataset from `path` tolerantly (see [`from_str_streamed`]).
pub fn load_streamed(
    path: impl AsRef<Path>,
    cfg: &StreamConfig,
) -> io::Result<(GraphDataset, IngestReport)> {
    let vfs = tpgnn_obs::vfs::global();
    let text = tpgnn_obs::vfs::read_to_string(&*vfs, path.as_ref())?;
    from_str_streamed(&text, cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDataset {
        let mut ds = GraphDataset::new("toy set");
        for label in [true, false] {
            let mut feats = NodeFeatures::zeros(3, 2);
            feats.row_mut(0).copy_from_slice(&[0.25, 0.5]);
            feats.row_mut(2).copy_from_slice(&[1.0, -0.125]);
            let mut g = Ctdn::new(feats);
            g.try_add_edge(0, 1, 1.5).unwrap();
            g.try_add_edge(1, 2, 2.0).unwrap();
            ds.graphs.push(LabeledGraph { graph: g, label });
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let text = to_string(&ds);
        let back = from_str(&text).expect("parse");
        assert_eq!(back.name, "toy_set");
        assert_eq!(back.len(), 2);
        for (a, b) in ds.graphs.iter().zip(&back.graphs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
            assert_eq!(a.graph.features(), b.graph.features());
            assert_eq!(a.graph.edges(), b.graph.edges());
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("nope 1 2").is_err());
        assert!(from_str("dataset x 1\nbogus").is_err());
        assert!(from_str("dataset x 1\ngraph 0 1 1 0\n").is_err()); // missing node line
        assert!(from_str("dataset x 1\ngraph 0 2 1 0\nnode 0.0").is_err()); // too few node lines
        assert!(from_str("dataset x 1\ngraph 0 1 1 1\nnode 0.0\nedge 0 5 1.0").is_err()); // bad endpoint
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_str("dataset x 1\ngraph 0 1 1 1\nnode 0.0\nedge 0 5 1.0").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().starts_with("line 4:"), "{err}");
        assert!(err.msg.contains("out of bounds"), "{err}");

        let err = from_str("dataset x 1\ngraph 0 1 1 0\nnode NaN").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("non-finite"), "{err}");

        let err = from_str("dataset x 1\ngraph 0 1 1 1\nnode 0.0\nedge 0 0 -3").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("finite and > 0"), "{err}");

        let err = from_str("dataset x 1\ngraph 0 1 1 0\nnode 0.5\nextra").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("trailing"), "{err}");
    }

    #[test]
    fn absurd_dimension_claims_rejected_without_allocating() {
        // A corrupt header claiming a petabyte feature matrix must be a
        // parse error, not an OOM or a capacity overflow.
        let err = from_str("dataset x 1\ngraph 0 99999999999 99999999 0").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("limit"), "{err}");
        let overflow = format!("dataset x 1\ngraph 0 {} {} 0", usize::MAX, usize::MAX);
        assert_eq!(from_str(&overflow).unwrap_err().line, 2);
    }

    #[test]
    fn label_parsing() {
        let text = "dataset d 1\ngraph 1 1 1 0\nnode 0.5\n";
        let ds = from_str(text).expect("parse");
        assert!(ds.graphs[0].label);
    }

    #[test]
    fn streamed_loader_matches_strict_on_clean_input() {
        let ds = sample();
        let text = to_string(&ds);
        let strict = from_str(&text).expect("strict parse");
        let (tolerant, report) = from_str_streamed(&text, &StreamConfig::default()).expect("parse");
        assert_eq!(report.counts.total(), 0);
        assert_eq!(report.stats.received, report.stats.released);
        for (a, b) in strict.graphs.iter().zip(&tolerant.graphs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.graph.features(), b.graph.features());
        }
    }

    #[test]
    fn streamed_loader_quarantines_dirty_edges_instead_of_failing() {
        // Strict parsing rejects this file (bad endpoint, bad time, garbage
        // tokens); the tolerant loader keeps the good edges.
        let text = "dataset d 1\ngraph 1 3 1 5\nnode 0\nnode 0\nnode 0\n\
                    edge 0 1 1.0\nedge 0 9 2.0\nedge 1 2 -3\nedge 1 x 2.5\nedge 1 2 3.0\n";
        assert!(from_str(text).is_err());
        let (ds, report) = from_str_streamed(text, &StreamConfig::default()).expect("parse");
        assert_eq!(ds.graphs[0].graph.num_edges(), 2);
        assert_eq!(report.stats.received, 5);
        assert_eq!(report.stats.released, 2);
        assert_eq!(report.counts.count(tpgnn_graph::RejectKind::Malformed), 3);
    }

    #[test]
    fn streamed_loader_still_rejects_broken_structure() {
        let cfg = StreamConfig::default();
        assert!(from_str_streamed("", &cfg).is_err());
        assert!(from_str_streamed("dataset x 1\nbogus", &cfg).is_err());
        assert!(from_str_streamed("dataset x 1\ngraph 0 1 1 1\nnode 0\nnope 0 0 1", &cfg).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("tpgnn_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("toy.ds");
        save(&ds, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(path).ok();
    }
}
