//! Plain-text dataset serialization.
//!
//! A deliberately simple line format (no external serialization crates):
//!
//! ```text
//! dataset <name> <num_graphs>
//! graph <label:0|1> <num_nodes> <feature_dim> <num_edges>
//! node <f_0> <f_1> … <f_{q-1}>          (× num_nodes)
//! edge <src> <dst> <time>               (× num_edges)
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use tpgnn_graph::{Ctdn, NodeFeatures};

use crate::dataset::{GraphDataset, LabeledGraph};

/// Serialize a dataset to the line format described in the module docs.
pub fn to_string(ds: &GraphDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dataset {} {}", ds.name.replace(' ', "_"), ds.graphs.len());
    for lg in &ds.graphs {
        let g = &lg.graph;
        let _ = writeln!(
            out,
            "graph {} {} {} {}",
            u8::from(lg.label),
            g.num_nodes(),
            g.feature_dim(),
            g.num_edges()
        );
        for v in 0..g.num_nodes() {
            out.push_str("node");
            for f in g.features().row(v) {
                let _ = write!(out, " {f}");
            }
            out.push('\n');
        }
        for e in g.edges() {
            let _ = writeln!(out, "edge {} {} {}", e.src, e.dst, e.time);
        }
    }
    out
}

/// Parse a dataset from the line format. Returns a descriptive error string
/// on malformed input.
pub fn from_str(text: &str) -> Result<GraphDataset, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty input")?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("dataset") {
        return Err("missing `dataset` header".into());
    }
    let name = parts.next().ok_or("missing dataset name")?.to_string();
    let count: usize = parts
        .next()
        .ok_or("missing graph count")?
        .parse()
        .map_err(|e| format!("bad graph count: {e}"))?;

    let mut ds = GraphDataset::new(name);
    for _ in 0..count {
        let (ln, gline) = lines.next().ok_or("unexpected end of input")?;
        let mut p = gline.split_whitespace();
        if p.next() != Some("graph") {
            return Err(format!("line {}: expected `graph`", ln + 1));
        }
        let label: u8 = p.next().ok_or("missing label")?.parse().map_err(|e| format!("bad label: {e}"))?;
        let n: usize = p.next().ok_or("missing node count")?.parse().map_err(|e| format!("bad node count: {e}"))?;
        let q: usize = p.next().ok_or("missing feature dim")?.parse().map_err(|e| format!("bad feature dim: {e}"))?;
        let m: usize = p.next().ok_or("missing edge count")?.parse().map_err(|e| format!("bad edge count: {e}"))?;

        let mut feats = NodeFeatures::zeros(n, q);
        for v in 0..n {
            let (ln, nline) = lines.next().ok_or("unexpected end of input in nodes")?;
            let mut p = nline.split_whitespace();
            if p.next() != Some("node") {
                return Err(format!("line {}: expected `node`", ln + 1));
            }
            for (j, tok) in p.enumerate() {
                if j >= q {
                    return Err(format!("line {}: too many features", ln + 1));
                }
                feats.row_mut(v)[j] = tok.parse().map_err(|e| format!("bad feature: {e}"))?;
            }
        }
        let mut g = Ctdn::new(feats);
        for _ in 0..m {
            let (ln, eline) = lines.next().ok_or("unexpected end of input in edges")?;
            let mut p = eline.split_whitespace();
            if p.next() != Some("edge") {
                return Err(format!("line {}: expected `edge`", ln + 1));
            }
            let src: usize = p.next().ok_or("missing src")?.parse().map_err(|e| format!("bad src: {e}"))?;
            let dst: usize = p.next().ok_or("missing dst")?.parse().map_err(|e| format!("bad dst: {e}"))?;
            let t: f64 = p.next().ok_or("missing time")?.parse().map_err(|e| format!("bad time: {e}"))?;
            if src >= n || dst >= n {
                return Err(format!("line {}: edge endpoint out of bounds", ln + 1));
            }
            if !(t.is_finite() && t > 0.0) {
                return Err(format!("line {}: timestamps must be finite and positive", ln + 1));
            }
            g.add_edge(src, dst, t);
        }
        ds.graphs.push(LabeledGraph { graph: g, label: label != 0 });
    }
    Ok(ds)
}

/// Write a dataset to `path`.
pub fn save(ds: &GraphDataset, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(ds))
}

/// Read a dataset from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<GraphDataset> {
    let text = fs::read_to_string(path)?;
    from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDataset {
        let mut ds = GraphDataset::new("toy set");
        for label in [true, false] {
            let mut feats = NodeFeatures::zeros(3, 2);
            feats.row_mut(0).copy_from_slice(&[0.25, 0.5]);
            feats.row_mut(2).copy_from_slice(&[1.0, -0.125]);
            let mut g = Ctdn::new(feats);
            g.add_edge(0, 1, 1.5);
            g.add_edge(1, 2, 2.0);
            ds.graphs.push(LabeledGraph { graph: g, label });
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let text = to_string(&ds);
        let back = from_str(&text).expect("parse");
        assert_eq!(back.name, "toy_set");
        assert_eq!(back.len(), 2);
        for (a, b) in ds.graphs.iter().zip(&back.graphs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
            assert_eq!(a.graph.features(), b.graph.features());
            assert_eq!(a.graph.edges(), b.graph.edges());
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("nope 1 2").is_err());
        assert!(from_str("dataset x 1\nbogus").is_err());
        assert!(from_str("dataset x 1\ngraph 0 1 1 0\n").is_err()); // missing node line
        assert!(from_str("dataset x 1\ngraph 0 2 1 0\nnode 0.0").is_err()); // too few node lines
        assert!(from_str("dataset x 1\ngraph 0 1 1 1\nnode 0.0\nedge 0 5 1.0").is_err()); // bad endpoint
    }

    #[test]
    fn label_parsing() {
        let text = "dataset d 1\ngraph 1 1 1 0\nnode 0.5\n";
        let ds = from_str(text).expect("parse");
        assert!(ds.graphs[0].label);
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("tpgnn_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("toy.ds");
        save(&ds, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(path).ok();
    }
}
