//! # tpgnn-data
//!
//! Synthetic equivalents of the paper's five evaluation datasets plus the
//! negative-sampling machinery of Sec. V-A.
//!
//! The real corpora (Forum-java logs, HDFS logs, Brightkite / Gowalla /
//! FourSquare check-ins) are either unpublished or far too large for a
//! self-contained reproduction, so each dataset is simulated by a generator
//! that matches its Table I statistics and — crucially — the *kind* of
//! signal that separates the classes: structural anomalies, feature
//! anomalies, and purely temporal anomalies (edge-order shuffles that leave
//! the static topology untouched, the Fig. 1 situation).
//!
//! Entry point: [`DatasetKind::generate`].

#![warn(missing_docs)]

pub mod chaos;
mod dataset;
pub mod fig1;
pub mod forum_java;
pub mod hdfs;
pub mod io;
pub mod negative;
mod registry;
pub mod trajectory;

pub use dataset::{DatasetStats, GraphDataset, LabeledGraph};
pub use registry::{DatasetKind, MIN_RECORDS};
