//! Negative-sample generation — Sec. V-A of the paper.
//!
//! Two perturbations turn a positive graph into a negative one:
//!
//! 1. **Context-dependent structural rewiring** (after [2] in the paper): a
//!    small number of edges `(u, v, t)` are replaced by `(u, v', t)`,
//!    keeping only replacements that do not already occur in the positive
//!    graph. Replacement targets are drawn from the 2-hop neighborhood when
//!    possible so the rewired edge is *locally plausible* — the anomaly
//!    shows in the flow structure, not in a blatant feature jump.
//! 2. **Temporal shuffling**: the edge-establishment order is permuted
//!    inside a contiguous window (the `(src, dst)` pairs keep the original
//!    timestamp ladder), producing a graph that is *statically identical*
//!    to the positive but temporally anomalous — the Fig. 1 situation that
//!    motivates the whole model. A window (rather than a full-sequence)
//!    shuffle keeps per-node local time statistics close to the positive
//!    distribution, so the class signal lives in the *order* of
//!    interactions, which is exactly the signal the paper's experiments
//!    discriminate on (see DESIGN.md §2).

use std::collections::HashSet;

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::Rng;
use tpgnn_graph::{Ctdn, StaticView, TemporalEdge};

/// Hard cap on rewired edges per negative sample: anomalies are subtle.
pub const MAX_REWIRED_EDGES: usize = 3;

/// Replace up to `min(frac·m, MAX_REWIRED_EDGES)` edges' targets (at least
/// one), preferring 2-hop-neighborhood replacements, skipping replacements
/// that already exist in the positive graph.
pub fn structural_rewire(g: &Ctdn, frac: f64, rng: &mut StdRng) -> Ctdn {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let n = g.num_nodes();
    let existing: HashSet<(usize, usize)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
    let mut edges: Vec<TemporalEdge> = g.edges().to_vec();
    let m = edges.len();
    if m == 0 || n < 3 {
        let mut out = g.clone();
        out.set_edges(edges);
        return out;
    }
    let und = StaticView::from_ctdn(g).undirected_neighbors();
    let k = ((m as f64 * frac).round() as usize).clamp(1, MAX_REWIRED_EDGES.min(m));
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);
    let mut rewired = 0;
    for &i in &order {
        if rewired >= k {
            break;
        }
        let e = edges[i];
        // Candidate targets: 2-hop neighborhood of the source first (a
        // plausible detour), random fallback.
        let mut candidates: Vec<usize> = und[e.src]
            .iter()
            .flat_map(|&w| und[w].iter().copied())
            .filter(|&v2| v2 != e.dst && v2 != e.src && !existing.contains(&(e.src, v2)))
            .collect();
        candidates.dedup();
        let pick = if candidates.is_empty() {
            (0..8)
                .map(|_| rng.random_range(0..n))
                .find(|&v2| v2 != e.dst && v2 != e.src && !existing.contains(&(e.src, v2)))
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        };
        if let Some(v2) = pick {
            edges[i] = TemporalEdge::new(e.src, v2, e.time);
            rewired += 1;
        }
    }
    let mut out = g.clone();
    out.set_edges(edges);
    out
}

/// Shuffle the edge-establishment order inside a contiguous window covering
/// `window_frac` of the edges (at least 3): the windowed `(src, dst)` pairs
/// are permuted while the global timestamp ladder stays fixed. Static
/// topology is unchanged; the evolution process differs.
pub fn temporal_shuffle(g: &Ctdn, window_frac: f64, rng: &mut StdRng) -> Ctdn {
    assert!((0.0..=1.0).contains(&window_frac), "window_frac must be in [0, 1]");
    let mut sorted: Vec<TemporalEdge> = g.edges().to_vec();
    sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite timestamps"));
    let m = sorted.len();
    if m < 2 {
        let mut out = g.clone();
        out.set_edges(sorted);
        return out;
    }
    let w = ((m as f64 * window_frac).round() as usize).clamp(3.min(m), m);
    let start = rng.random_range(0..=m - w);
    let times: Vec<f64> = sorted[start..start + w].iter().map(|e| e.time).collect();
    let mut pairs: Vec<(usize, usize)> =
        sorted[start..start + w].iter().map(|e| (e.src, e.dst)).collect();
    // Keep permuting until the window order actually changes (w >= 3 makes
    // an accidental identity permutation vanishingly unlikely, but cheap
    // retries make the negative label sound even for tiny windows).
    for _ in 0..8 {
        pairs.shuffle(rng);
        if pairs
            .iter()
            .zip(&sorted[start..start + w])
            .any(|(p, e)| *p != (e.src, e.dst))
        {
            break;
        }
    }
    for (k, ((s, d), t)) in pairs.into_iter().zip(times).enumerate() {
        sorted[start + k] = TemporalEdge::new(s, d, t);
    }
    let mut out = g.clone();
    out.set_edges(sorted);
    out
}

/// The paper's negative-sample mix for the public datasets: a fair coin
/// chooses between structural rewiring (with `rewire_frac`) and temporal
/// shuffling (over a window of ~35% of the edges).
pub fn make_negative(g: &Ctdn, rewire_frac: f64, rng: &mut StdRng) -> Ctdn {
    if rng.random_bool(0.5) {
        structural_rewire(g, rewire_frac, rng)
    } else {
        temporal_shuffle(g, 0.35, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    fn chain(n: usize) -> Ctdn {
        let mut g = Ctdn::with_zero_features(n, 3);
        for i in 0..n - 1 {
            g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
        }
        g
    }

    #[test]
    fn rewire_changes_few_edges_only() {
        let g = chain(30);
        let mut rng = StdRng::seed_from_u64(1);
        let neg = structural_rewire(&g, 0.2, &mut rng);
        assert_eq!(neg.num_edges(), g.num_edges());
        let changed = g.edges().iter().zip(neg.edges()).filter(|(a, b)| a != b).count();
        assert!(
            (1..=MAX_REWIRED_EDGES).contains(&changed),
            "changed = {changed}, expected at most {MAX_REWIRED_EDGES}"
        );
        for (a, b) in g.edges().iter().zip(neg.edges()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.src, b.src);
        }
    }

    #[test]
    fn rewire_avoids_existing_edges() {
        let g = chain(6);
        let existing: std::collections::HashSet<(usize, usize)> =
            g.edges().iter().map(|e| (e.src, e.dst)).collect();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let neg = structural_rewire(&g, 0.3, &mut rng);
            for (a, b) in g.edges().iter().zip(neg.edges()) {
                if a != b {
                    assert!(!existing.contains(&(b.src, b.dst)), "rewired onto an existing edge");
                }
            }
        }
    }

    #[test]
    fn shuffle_keeps_static_topology_as_multiset() {
        let g = chain(12);
        let mut rng = StdRng::seed_from_u64(2);
        let neg = temporal_shuffle(&g, 0.5, &mut rng);
        let mut a: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut b: Vec<(usize, usize)> = neg.edges().iter().map(|e| (e.src, e.dst)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "static edge multiset must be preserved");
        let ta: Vec<f64> = g.edges().iter().map(|e| e.time).collect();
        let tb: Vec<f64> = neg.edges().iter().map(|e| e.time).collect();
        assert_eq!(ta, tb, "timestamp ladder must be preserved");
    }

    #[test]
    fn shuffle_window_limits_perturbation() {
        let g = chain(30);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let neg = temporal_shuffle(&g, 0.3, &mut rng);
            let changed = g.edges().iter().zip(neg.edges()).filter(|(a, b)| a != b).count();
            assert!(changed >= 2, "seed {seed}: window shuffle was a no-op");
            assert!(changed <= 10, "seed {seed}: shuffle leaked beyond the window ({changed})");
        }
    }

    #[test]
    fn make_negative_differs_from_positive() {
        let g = chain(12);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let neg = make_negative(&g, 0.2, &mut rng);
            assert_ne!(neg.edges(), g.edges(), "seed {seed} produced an identical graph");
        }
    }

    #[test]
    fn degenerate_graphs_survive() {
        let g = Ctdn::with_zero_features(1, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let neg = structural_rewire(&g, 0.5, &mut rng);
        assert_eq!(neg.num_edges(), 0);
        let neg2 = temporal_shuffle(&g, 0.5, &mut rng);
        assert_eq!(neg2.num_edges(), 0);
    }
}
