//! The five evaluation datasets, assembled behind one enum.
//!
//! [`DatasetKind::generate`] reproduces the pre-processing of Sec. V-A: the
//! target negative ratios of Table I, the per-dataset negative-sample
//! strategies (fault injection for the log datasets, rewire/shuffle for the
//! trajectory datasets), and the minimum-size filter ("we first filter out
//! graph samples with less than three records").

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::{Rng, SeedableRng};

use crate::dataset::{GraphDataset, LabeledGraph};
use crate::forum_java::{self, Fault, ForumJavaConfig};
use crate::hdfs::{self, HdfsAnomaly, HdfsConfig};
use crate::negative;
use crate::trajectory::{self, TrajectoryConfig};

/// Minimum number of edges a generated graph must have (Sec. V-A's
/// "less than three records" filter).
pub const MIN_RECORDS: usize = 3;

/// The five datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Java forum log sessions (the paper's own dataset).
    ForumJava,
    /// HDFS block sessions.
    Hdfs,
    /// Gowalla user trajectories.
    Gowalla,
    /// FourSquare user trajectories.
    FourSquare,
    /// Brightkite user trajectories.
    Brightkite,
}

impl DatasetKind {
    /// All five datasets in Table I's column order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::ForumJava,
        DatasetKind::Hdfs,
        DatasetKind::Gowalla,
        DatasetKind::FourSquare,
        DatasetKind::Brightkite,
    ];

    /// Table I display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::ForumJava => "Forum-java",
            DatasetKind::Hdfs => "HDFS",
            DatasetKind::Gowalla => "Gowalla",
            DatasetKind::FourSquare => "FourSquare",
            DatasetKind::Brightkite => "Brightkite",
        }
    }

    /// Target negative ratio from Table I.
    pub fn negative_ratio(self) -> f64 {
        match self {
            DatasetKind::ForumJava => 0.325,
            DatasetKind::Hdfs => 0.298,
            DatasetKind::Gowalla => 0.288,
            DatasetKind::FourSquare => 0.303,
            DatasetKind::Brightkite => 0.303,
        }
    }

    /// Snapshot size used by the discrete DGNN baselines (Sec. V-D).
    pub fn snapshot_size(self) -> usize {
        match self {
            DatasetKind::ForumJava | DatasetKind::Hdfs => 5,
            _ => 20,
        }
    }

    /// Paper-reported graph count (full-scale; our default generation count
    /// is far smaller — see DESIGN.md §2 on the deliberate scale-down).
    pub fn paper_graph_count(self) -> usize {
        match self {
            DatasetKind::ForumJava => 172_443,
            DatasetKind::Hdfs => 130_344,
            DatasetKind::Gowalla => 105_862,
            DatasetKind::FourSquare => 347_848,
            DatasetKind::Brightkite => 44_693,
        }
    }

    /// Paper-reported (avg nodes, avg edges) from Table I.
    pub fn paper_avg_size(self) -> (f64, f64) {
        match self {
            DatasetKind::ForumJava => (27.0, 30.0),
            DatasetKind::Hdfs => (12.0, 31.0),
            DatasetKind::Gowalla => (72.0, 117.0),
            DatasetKind::FourSquare => (61.0, 135.0),
            DatasetKind::Brightkite => (46.0, 188.0),
        }
    }

    /// Generate `num_graphs` labeled graphs with deterministic seeding.
    ///
    /// Positives come from the per-dataset generator; the Table I fraction of
    /// them is converted to negatives with the per-dataset strategy. Labels
    /// are interleaved uniformly so the paper's chronological 30/70 split
    /// sees both classes.
    pub fn generate(self, num_graphs: usize, seed: u64) -> GraphDataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7f4a_7c15);
        let num_neg = ((num_graphs as f64) * self.negative_ratio()).round() as usize;
        let mut is_negative = vec![false; num_graphs];
        for flag in is_negative.iter_mut().take(num_neg) {
            *flag = true;
        }
        is_negative.shuffle(&mut rng);

        let mut ds = GraphDataset::new(self.name());
        let mut fault_rr = 0usize;
        while ds.graphs.len() < num_graphs {
            let idx = ds.graphs.len();
            let positive = self.generate_positive(&mut rng);
            if positive.num_edges() < MIN_RECORDS {
                continue; // Sec. V-A filter: drop inactive sessions/users.
            }
            let (graph, label) = if is_negative[idx] {
                (self.make_negative(&positive, &mut fault_rr, &mut rng), false)
            } else {
                (positive, true)
            };
            ds.graphs.push(LabeledGraph { graph, label });
        }
        ds
    }

    fn generate_positive(self, rng: &mut StdRng) -> tpgnn_graph::Ctdn {
        match self {
            DatasetKind::ForumJava => forum_java::generate_session(&ForumJavaConfig::default(), rng),
            DatasetKind::Hdfs => hdfs::generate_block_session(&HdfsConfig::default(), rng),
            DatasetKind::Gowalla => trajectory::generate_trajectory(&TrajectoryConfig::gowalla(), rng),
            DatasetKind::FourSquare => {
                trajectory::generate_trajectory(&TrajectoryConfig::foursquare(), rng)
            }
            DatasetKind::Brightkite => {
                trajectory::generate_trajectory(&TrajectoryConfig::brightkite(), rng)
            }
        }
    }

    fn make_negative(
        self,
        positive: &tpgnn_graph::Ctdn,
        fault_rr: &mut usize,
        rng: &mut StdRng,
    ) -> tpgnn_graph::Ctdn {
        match self {
            DatasetKind::ForumJava => {
                let fault = Fault::ALL[*fault_rr % Fault::ALL.len()];
                *fault_rr += 1;
                forum_java::inject_fault(positive, fault, rng)
            }
            DatasetKind::Hdfs => {
                // Mix the expert-labeled anomaly flavours with the generic
                // strategies so negatives vary both structurally and
                // temporally.
                if rng.random_bool(0.5) {
                    let a = HdfsAnomaly::ALL[*fault_rr % HdfsAnomaly::ALL.len()];
                    *fault_rr += 1;
                    hdfs::inject_anomaly(positive, a, rng)
                } else {
                    negative::make_negative(positive, 0.15, rng)
                }
            }
            _ => negative::make_negative(positive, 0.15, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetKind::Hdfs.generate(20, 9);
        let b = DatasetKind::Hdfs.generate(20, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.graph.edges(), y.graph.edges());
        }
        let c = DatasetKind::Hdfs.generate(20, 10);
        let same = a
            .graphs
            .iter()
            .zip(&c.graphs)
            .all(|(x, y)| x.graph.edges() == y.graph.edges());
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn negative_ratio_close_to_table1() {
        for kind in DatasetKind::ALL {
            let ds = kind.generate(100, 5);
            let target = kind.negative_ratio();
            assert!(
                (ds.negative_ratio() - target).abs() < 0.02,
                "{}: ratio {} vs target {}",
                kind.name(),
                ds.negative_ratio(),
                target
            );
        }
    }

    #[test]
    fn min_records_filter_enforced() {
        for kind in DatasetKind::ALL {
            let ds = kind.generate(30, 6);
            for lg in &ds.graphs {
                assert!(lg.graph.num_edges() >= 2, "{} produced a near-empty graph", kind.name());
            }
        }
    }

    #[test]
    fn both_classes_present_in_train_split() {
        for kind in DatasetKind::ALL {
            let ds = kind.generate(60, 7);
            let (train, test) = ds.split(0.3);
            assert!(train.iter().any(|g| g.label) && train.iter().any(|g| !g.label));
            assert!(test.iter().any(|g| g.label) && test.iter().any(|g| !g.label));
        }
    }

    #[test]
    fn metadata_matches_table1() {
        assert_eq!(DatasetKind::ForumJava.snapshot_size(), 5);
        assert_eq!(DatasetKind::Brightkite.snapshot_size(), 20);
        assert_eq!(DatasetKind::ForumJava.paper_graph_count(), 172_443);
        assert_eq!(DatasetKind::Brightkite.paper_avg_size(), (46.0, 188.0));
    }
}
