//! User-trajectory dataset simulators (Brightkite, Gowalla, FourSquare).
//!
//! The paper builds per-user dynamic networks from public location-based
//! social-network check-ins [5], [43]: nodes are check-in POIs with
//! (longitude, latitude, country id) features, edges trace movements between
//! POIs. The raw check-in corpora are too large to redistribute, so this
//! module generates trajectories with the behavioural regularities the
//! classification task depends on: anchor POIs (home/work) that users return
//! to, spatial locality of exploration, and country clusters. Negatives are
//! produced exactly as in the paper (Sec. V-A): context-dependent structural
//! rewiring or random temporal shuffling of the edge order.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::Rng;
use tpgnn_graph::{Ctdn, NodeFeatures};

/// Trajectory generator tunables. Per-dataset presets live in
/// [`TrajectoryConfig::gowalla`], [`TrajectoryConfig::foursquare`], and
/// [`TrajectoryConfig::brightkite`] and match the Table I averages.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Mean number of distinct POIs (nodes) per user.
    pub avg_pois: f64,
    /// Mean number of movements (edges) per user.
    pub avg_moves: f64,
    /// Probability a movement returns to an anchor POI instead of exploring.
    pub return_prob: f64,
    /// Number of country clusters in the POI universe.
    pub num_countries: usize,
}

impl TrajectoryConfig {
    /// Gowalla preset: avg ≈ 72 nodes, ≈ 117 edges.
    pub fn gowalla() -> Self {
        Self { avg_pois: 72.0, avg_moves: 117.0, return_prob: 0.30, num_countries: 6 }
    }

    /// FourSquare preset: avg ≈ 61 nodes, ≈ 135 edges.
    pub fn foursquare() -> Self {
        Self { avg_pois: 61.0, avg_moves: 135.0, return_prob: 0.42, num_countries: 8 }
    }

    /// Brightkite preset: avg ≈ 46 nodes, ≈ 188 edges — the densest graphs.
    pub fn brightkite() -> Self {
        Self { avg_pois: 46.0, avg_moves: 188.0, return_prob: 0.60, num_countries: 5 }
    }
}

/// Generate one *positive* user-trajectory network.
///
/// The walk starts at a home anchor; each move either returns to an anchor
/// (with `return_prob`) or explores a new POI placed near the current
/// position. Node features are (longitude, latitude, country id), all scaled
/// into `[0, 1]`.
pub fn generate_trajectory(cfg: &TrajectoryConfig, rng: &mut StdRng) -> Ctdn {
    let n_target = ((cfg.avg_pois + rng.random_range(-0.25..0.25) * cfg.avg_pois).round() as usize).max(4);
    let m_target = (((cfg.avg_moves / cfg.avg_pois) * n_target as f64
        + rng.random_range(-4.0..4.0))
        .round() as usize)
        .max(n_target);

    // Home country cluster center.
    let country = rng.random_range(0..cfg.num_countries);
    let cx = (country as f32 + 0.5) / cfg.num_countries as f32;
    let cy = rng.random_range(0.2..0.8);

    // POI positions, grown lazily as the walk explores.
    let mut lon = Vec::with_capacity(n_target);
    let mut lat = Vec::with_capacity(n_target);
    let push_poi = |lon_v: f32, lat_v: f32, lon: &mut Vec<f32>, lat: &mut Vec<f32>| -> usize {
        lon.push(lon_v.clamp(0.0, 1.0));
        lat.push(lat_v.clamp(0.0, 1.0));
        lon.len() - 1
    };

    // Two anchors: home and work, near the country center.
    let home = push_poi(
        cx + rng.random_range(-0.05..0.05),
        cy + rng.random_range(-0.05..0.05),
        &mut lon,
        &mut lat,
    );
    let work = push_poi(
        cx + rng.random_range(-0.08..0.08),
        cy + rng.random_range(-0.08..0.08),
        &mut lon,
        &mut lat,
    );

    let mut moves: Vec<(usize, usize)> = Vec::with_capacity(m_target);
    let mut cur = home;
    while moves.len() < m_target {
        let next = if lon.len() >= n_target || rng.random_bool(cfg.return_prob) {
            // Return to an anchor or a previously visited POI.
            if rng.random_bool(0.6) {
                if cur == home { work } else { home }
            } else {
                rng.random_range(0..lon.len())
            }
        } else {
            // Explore: a new POI near the current one.
            push_poi(
                lon[cur] + rng.random_range(-0.06..0.06),
                lat[cur] + rng.random_range(-0.06..0.06),
                &mut lon,
                &mut lat,
            )
        };
        if next != cur {
            moves.push((cur, next));
            cur = next;
        }
    }

    let n = lon.len();
    let mut features = NodeFeatures::zeros(n, 3);
    let country_feat = country as f32 / cfg.num_countries.max(1) as f32;
    for v in 0..n {
        features.row_mut(v).copy_from_slice(&[lon[v], lat[v], country_feat]);
    }
    let mut g = Ctdn::new(features);
    let mut t = 0.0f64;
    for (s, d) in moves {
        t += rng.random_range(0.1..1.0);
        g.try_add_edge(s, d, t).expect("trajectory moves stay within the POI grid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    fn scale_check(cfg: &TrajectoryConfig, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut nodes, mut edges) = (0usize, 0usize);
        let reps = 100;
        for _ in 0..reps {
            let g = generate_trajectory(cfg, &mut rng);
            nodes += g.num_nodes();
            edges += g.num_edges();
        }
        (nodes as f64 / reps as f64, edges as f64 / reps as f64)
    }

    #[test]
    fn gowalla_scale() {
        let (n, m) = scale_check(&TrajectoryConfig::gowalla(), 1);
        assert!((n - 72.0).abs() < 12.0, "avg nodes = {n}");
        assert!((m - 117.0).abs() < 20.0, "avg edges = {m}");
    }

    #[test]
    fn foursquare_scale() {
        let (n, m) = scale_check(&TrajectoryConfig::foursquare(), 2);
        assert!((n - 61.0).abs() < 12.0, "avg nodes = {n}");
        assert!((m - 135.0).abs() < 25.0, "avg edges = {m}");
    }

    #[test]
    fn brightkite_scale_is_dense() {
        let (n, m) = scale_check(&TrajectoryConfig::brightkite(), 3);
        assert!((n - 46.0).abs() < 10.0, "avg nodes = {n}");
        assert!((m - 188.0).abs() < 35.0, "avg edges = {m}");
        assert!(m / n > 3.0, "Brightkite graphs should be the densest");
    }

    #[test]
    fn trajectories_are_valid_ctdns() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let mut g = generate_trajectory(&TrajectoryConfig::gowalla(), &mut rng);
            for w in g.edges_chronological().windows(2) {
                assert!(w[0].time <= w[1].time);
            }
            for e in g.edges() {
                assert_ne!(e.src, e.dst, "moves must change POI");
            }
        }
    }

    #[test]
    fn features_encode_position_and_country() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generate_trajectory(&TrajectoryConfig::brightkite(), &mut rng);
        let country = g.features().row(0)[2];
        for v in 0..g.num_nodes() {
            let f = g.features().row(v);
            assert!((0.0..=1.0).contains(&f[0]) && (0.0..=1.0).contains(&f[1]));
            assert_eq!(f[2], country, "one user stays in one country");
        }
    }

    #[test]
    fn anchors_are_revisited() {
        // With a high return probability, home/work should be endpoints of
        // many edges — the revisit structure Brightkite's density comes from.
        let mut rng = StdRng::seed_from_u64(6);
        let g = generate_trajectory(&TrajectoryConfig::brightkite(), &mut rng);
        let anchor_touches = g
            .edges()
            .iter()
            .filter(|e| e.src <= 1 || e.dst <= 1)
            .count();
        assert!(
            anchor_touches as f64 > g.num_edges() as f64 * 0.3,
            "anchors touched by only {anchor_touches}/{} edges",
            g.num_edges()
        );
    }
}
