//! Property-based tests for the dataset line format, on the in-repo
//! `tpgnn_rng::check` harness: `io::from_str` must never panic — a clean
//! serialization round-trips `Ok`, and arbitrarily corrupted text yields a
//! line-numbered `Err`. Reproduce failures with
//! `TPGNN_PROP_SEED=<seed> cargo test -q <name>`.

use tpgnn_data::io;
use tpgnn_data::{GraphDataset, LabeledGraph};
use tpgnn_graph::{Ctdn, NodeFeatures};
use tpgnn_rng::{check, Rng, StdRng};

/// Generator: a small random dataset of 1–4 graphs.
fn gen_dataset(rng: &mut StdRng) -> GraphDataset {
    let mut ds = GraphDataset::new(format!("prop_{}", rng.random_range(0u32..1000)));
    for _ in 0..rng.random_range(1usize..=4) {
        let n = rng.random_range(1usize..=6);
        let q = rng.random_range(1usize..=4);
        let mut feats = NodeFeatures::zeros(n, q);
        for v in 0..n {
            for j in 0..q {
                feats.row_mut(v)[j] = rng.random_range(-2.0f32..2.0);
            }
        }
        let mut g = Ctdn::new(feats);
        for _ in 0..rng.random_range(0usize..=10) {
            let s = rng.random_range(0..n);
            let d = rng.random_range(0..n);
            let t = f64::from(rng.random_range(1u32..50));
            g.try_add_edge(s, d, t).unwrap();
        }
        ds.graphs.push(LabeledGraph { graph: g, label: rng.random_range(0u32..2) == 1 });
    }
    ds
}

/// Corrupt serialized text: truncate at a random byte, flip a random
/// character to a random printable byte, or splice in a hostile token.
fn corrupt(rng: &mut StdRng, text: &str) -> String {
    let mut s = text.to_string();
    match rng.random_range(0u32..4) {
        0 => {
            // Truncate mid-stream (on a char boundary; the format is ASCII).
            let cut = rng.random_range(0..=s.len());
            s.truncate(cut);
        }
        1 => {
            // Overwrite one byte with a random printable character.
            if !s.is_empty() {
                let i = rng.random_range(0..s.len());
                let c = (rng.random_range(0x20u32..0x7f) as u8) as char;
                s.replace_range(i..i + 1, &c.to_string());
            }
        }
        2 => {
            // Splice a hostile token at a random line start.
            let tokens = ["NaN", "inf", "-1", "99999999999999999999", "graph x", "\u{0}"];
            let tok = tokens[rng.random_range(0..tokens.len())];
            let lines: Vec<&str> = s.lines().collect();
            let at = rng.random_range(0..=lines.len());
            let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
            out.insert(at.min(out.len()), tok.to_string());
            s = out.join("\n");
        }
        _ => {
            // Inflate a header count so sections run past EOF or claim
            // absurd sizes.
            s = s.replacen(" 1 ", " 999999999999 ", 1);
        }
    }
    s
}

#[test]
fn from_str_roundtrips_clean_datasets() {
    check::cases(
        "from_str_roundtrips_clean_datasets",
        64,
        gen_dataset,
        |ds| {
            let text = io::to_string(ds);
            let back = io::from_str(&text).expect("clean serialization must parse");
            assert_eq!(back.len(), ds.len());
            for (a, b) in ds.graphs.iter().zip(&back.graphs) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
                assert_eq!(a.graph.features(), b.graph.features());
                assert_eq!(a.graph.edges(), b.graph.edges());
            }
        },
    );
}

#[test]
fn from_str_never_panics_on_corrupted_text() {
    check::cases_with_rng(
        "from_str_never_panics_on_corrupted_text",
        256,
        |rng| {
            let ds = gen_dataset(rng);
            io::to_string(&ds)
        },
        |text, rng| {
            let mutated = corrupt(rng, text);
            // The property: parsing either succeeds (some corruptions are
            // harmless, e.g. a flipped digit inside a feature) or reports a
            // line-numbered error. Any panic fails the harness.
            match io::from_str(&mutated) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.line >= 1, "line numbers are 1-based: {e}");
                    assert!(
                        e.line <= mutated.lines().count().max(1),
                        "line {} out of range for {} lines",
                        e.line,
                        mutated.lines().count()
                    );
                    assert!(e.to_string().starts_with(&format!("line {}:", e.line)));
                }
            }
        },
    );
}

#[test]
fn from_str_never_panics_on_arbitrary_bytes() {
    check::cases(
        "from_str_never_panics_on_arbitrary_bytes",
        128,
        |rng| {
            let len = rng.random_range(0usize..400);
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                // Mostly printable ASCII with newlines and some format
                // keywords so parsing gets past the first token sometimes.
                match rng.random_range(0u32..12) {
                    0 => s.push('\n'),
                    1 => s.push_str("dataset "),
                    2 => s.push_str("graph "),
                    3 => s.push_str("node "),
                    4 => s.push_str("edge "),
                    _ => s.push((rng.random_range(0x20u32..0x7f) as u8) as char),
                }
            }
            s
        },
        |text| {
            let _ = io::from_str(text);
        },
    );
}
