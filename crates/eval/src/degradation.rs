//! Degradation sweep: classification quality under injected stream faults.
//!
//! The robustness question the streaming path raises is not "does ingestion
//! survive a hostile feed" (the chaos tests answer that) but "how much
//! *classification quality* is left once the quarantine has discarded the
//! junk". This runner sweeps a fault rate through [`FaultPlan::mixed`],
//! rebuilds every graph of the dataset through [`CtdnBuilder`] under that
//! plan, and trains/evaluates a model on the degraded corpora — producing a
//! quality-vs-fault-rate curve in the style of the paper's ablation figures.
//!
//! [`CtdnBuilder`]: tpgnn_graph::CtdnBuilder

use tpgnn_core::{GraphClassifier, GuardConfig, TrainConfig};
use tpgnn_data::chaos::{rebuild_dataset, FaultPlan, QuarantineCounts};
use tpgnn_data::DatasetKind;
use tpgnn_obs::trace;

use crate::metrics::{MeanStd, Metrics};
use crate::runner::{to_pairs, ExperimentConfig};

/// One row of the degradation table: quality + ingestion accounting at one
/// fault rate, aggregated over `cfg.runs` repetitions.
#[derive(Clone, Debug)]
pub struct DegradationRow {
    /// The base fault rate fed to [`FaultPlan::mixed`].
    pub rate: f64,
    /// F₁ over runs on the degraded test split.
    pub f1: MeanStd,
    /// Precision over runs.
    pub precision: MeanStd,
    /// Recall over runs.
    pub recall: MeanStd,
    /// Fraction of pushed events the builder admitted (released / received).
    pub released_frac: f64,
    /// Quarantine counts by reason, summed over runs.
    pub counts: QuarantineCounts,
    /// Guard recovery events across all runs at this rate.
    pub recoveries: usize,
}

/// Sweep `rates` on one (model, dataset) pair.
///
/// Every rate sees the *same* clean corpora (seeded per run index exactly
/// like [`crate::run_cell`]), so differences between rows are attributable
/// to the injected faults alone. Fault injection is seeded from the run
/// seed, making the whole sweep reproducible.
pub fn run_degradation(
    model_name: &str,
    kind: DatasetKind,
    rates: &[f64],
    cfg: &ExperimentConfig,
) -> Vec<DegradationRow> {
    let mut sweep_span = trace::span("eval.degradation");
    sweep_span.set("model", model_name);
    sweep_span.set("dataset", kind.name());
    sweep_span.set("rates", rates.len() as i64);

    // Every (rate × run) pair is one pool task; outcomes come back in task
    // order, so the per-rate reduction below is independent of scheduling.
    let tasks: Vec<(usize, usize)> = (0..rates.len())
        .flat_map(|ri| (0..cfg.runs).map(move |run| (ri, run)))
        .collect();
    let outcomes = tpgnn_par::map_indexed(&tasks, |_, &(ri, run)| {
        let plan = FaultPlan::mixed(rates[ri]);
        let seed = cfg.base_seed + run as u64;
        let clean = kind.generate(cfg.num_graphs, seed);
        let (ds, report) = rebuild_dataset(&clean, &plan, seed);
        let mut recoveries = 0usize;
        let metrics = train_and_score(model_name, &ds, kind, cfg, seed, &mut recoveries);
        (metrics, report.stats.received, report.stats.released, report.counts, recoveries)
    });

    let mut rows = Vec::with_capacity(rates.len());
    for (ri, &rate) in rates.iter().enumerate() {
        let per_run = &outcomes[ri * cfg.runs..(ri + 1) * cfg.runs];
        let mut f1s = Vec::with_capacity(cfg.runs);
        let mut precisions = Vec::with_capacity(cfg.runs);
        let mut recalls = Vec::with_capacity(cfg.runs);
        let mut received = 0usize;
        let mut released = 0usize;
        let mut counts = QuarantineCounts::default();
        let mut recoveries = 0usize;
        for (metrics, recv, rel, run_counts, recs) in per_run {
            f1s.push(metrics.f1);
            precisions.push(metrics.precision);
            recalls.push(metrics.recall);
            received += recv;
            released += rel;
            counts.absorb_counts(run_counts);
            recoveries += recs;
        }

        rows.push(DegradationRow {
            rate,
            f1: MeanStd::of(&f1s),
            precision: MeanStd::of(&precisions),
            recall: MeanStd::of(&recalls),
            released_frac: if received > 0 { released as f64 / received as f64 } else { 1.0 },
            counts,
            recoveries,
        });
    }
    sweep_span.set("rows", rows.len() as i64);
    rows
}

/// Train the zoo model on the degraded dataset's chronological split and
/// score the held-out portion — the [`crate::runner`] protocol, minus the
/// per-cell timing bookkeeping the sweep does not need.
fn train_and_score(
    model_name: &str,
    ds: &tpgnn_data::GraphDataset,
    kind: DatasetKind,
    cfg: &ExperimentConfig,
    seed: u64,
    recoveries: &mut usize,
) -> Metrics {
    let feature_dim = ds.graphs.first().map_or(3, |g| g.graph.feature_dim());
    let (train_split, test_split) = ds.split(cfg.train_frac);
    let train_pairs = to_pairs(train_split);
    let test_pairs = to_pairs(test_split);

    let mut model: Box<dyn GraphClassifier> =
        tpgnn_baselines::zoo::build(model_name, feature_dim, kind.snapshot_size(), seed);
    model.set_learning_rate(cfg.learning_rate);
    let train_cfg = TrainConfig { epochs: cfg.epochs, shuffle_ties: true, seed };
    let report =
        tpgnn_core::train_guarded(model.as_mut(), &train_pairs, &train_cfg, &GuardConfig::default());
    *recoveries += report.recoveries.len();

    let preds = tpgnn_core::predict_all(model.as_mut(), &test_pairs);
    Metrics::from_predictions(&preds, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_rate() {
        let cfg = ExperimentConfig {
            num_graphs: 16,
            runs: 1,
            epochs: 1,
            train_frac: 0.5,
            base_seed: 7,
            ..ExperimentConfig::default()
        };
        let rows = run_degradation("GCN", DatasetKind::ForumJava, &[0.0, 0.2], &cfg);
        assert_eq!(rows.len(), 2);
        // Zero faults: everything released, nothing quarantined.
        assert_eq!(rows[0].rate, 0.0);
        assert!((rows[0].released_frac - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].counts.total(), 0);
        // Non-zero faults: something was quarantined, release fraction drops.
        assert!(rows[1].counts.total() > 0);
        assert!(rows[1].released_frac < 1.0);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.f1.mean));
        }
    }
}
