//! # tpgnn-eval
//!
//! Evaluation harness for the TP-GNN reproduction:
//!
//! * [`Metrics`] / [`MeanStd`] — Precision, Recall, F₁ (Sec. V-C) with
//!   multi-run aggregation,
//! * [`runner`] — the Sec. V-D experiment protocol (30/70 chronological
//!   split, 10 epochs, identical data per model, wall-clock timing),
//! * [`table`] — plain-text rendering in the layout of the paper's tables
//!   and figures,
//! * [`degradation`] — quality-vs-fault-rate sweeps through the streaming
//!   ingestion path's chaos harness.

#![warn(missing_docs)]

pub mod degradation;
pub mod metrics;
pub mod runner;
pub mod table;

pub use degradation::{run_degradation, DegradationRow};
pub use metrics::{roc_auc, MeanStd, Metrics};
pub use runner::{run_cell, run_cell_with, run_cells, to_pairs, CellResult, CellSpec, ExperimentConfig};
