//! Evaluation metrics — Sec. V-C of the paper.
//!
//! Precision, Recall and F₁ Score over binary predictions, plus mean ± std
//! aggregation across the five runs the paper averages (Sec. V-D).

/// Binary-classification metrics at a fixed threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metrics {
    /// `TP / (TP + FP)`; 0 when nothing was predicted positive.
    pub precision: f64,
    /// `TP / (TP + FN)`; 0 when there are no positive samples.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// Fraction of correct predictions.
    pub accuracy: f64,
}

impl Metrics {
    /// Compute metrics from `(probability, truth)` pairs at `threshold`.
    pub fn from_predictions(preds: &[(f32, bool)], threshold: f32) -> Self {
        let (mut tp, mut fp, mut tn, mut fne) = (0u64, 0u64, 0u64, 0u64);
        for &(p, truth) in preds {
            let pred = p >= threshold;
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fne += 1,
            }
        }
        let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
        let recall = if tp + fne > 0 { tp as f64 / (tp + fne) as f64 } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let total = preds.len() as f64;
        let accuracy = if total > 0.0 { (tp + tn) as f64 / total } else { 0.0 };
        Self { precision, recall, f1, accuracy }
    }
}

/// Area under the ROC curve via the rank statistic (equivalent to the
/// Mann–Whitney U normalization); ties share rank. Returns 0.5 when either
/// class is absent.
pub fn roc_auc(preds: &[(f32, bool)]) -> f64 {
    let pos = preds.iter().filter(|(_, t)| *t).count();
    let neg = preds.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<(f32, bool)> = preds.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    // Average ranks within tie groups.
    let mut rank_sum_pos = 0.0_f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // ranks are 1-based
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (pos * (pos + 1)) as f64 / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Mean ± (population) standard deviation over repeated runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Aggregate a slice of observations (empty slices give 0 ± 0).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { mean: 0.0, std: 0.0 };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self { mean, std: var.sqrt() }
    }

    /// Render as the paper's `mm.mm±s.ss` percent format.
    pub fn percent(&self) -> String {
        format!("{:.2}±{:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let preds = vec![(0.9, true), (0.1, false), (0.8, true)];
        let m = Metrics::from_predictions(&preds, 0.5);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn textbook_confusion_matrix() {
        // TP=2, FP=1, FN=1, TN=1.
        let preds = vec![
            (0.9, true),
            (0.8, true),
            (0.7, false), // FP
            (0.2, true),  // FN
            (0.1, false), // TN
        ];
        let m = Metrics::from_predictions(&preds, 0.5);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        // Nothing predicted positive.
        let m = Metrics::from_predictions(&[(0.1, true), (0.2, false)], 0.5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
        // No positive samples at all.
        let m2 = Metrics::from_predictions(&[(0.9, false)], 0.5);
        assert_eq!(m2.recall, 0.0);
        // Empty input.
        let m3 = Metrics::from_predictions(&[], 0.5);
        assert_eq!(m3.accuracy, 0.0);
    }

    #[test]
    fn threshold_moves_the_tradeoff() {
        let preds = vec![(0.6, true), (0.4, true), (0.6, false), (0.4, false)];
        let strict = Metrics::from_predictions(&preds, 0.7);
        assert_eq!(strict.recall, 0.0);
        let lax = Metrics::from_predictions(&preds, 0.3);
        assert_eq!(lax.recall, 1.0);
        assert_eq!(lax.precision, 0.5);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let perfect = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((roc_auc(&perfect) - 1.0).abs() < 1e-12);
        let inverted: Vec<(f32, bool)> = perfect.iter().map(|&(p, t)| (1.0 - p, t)).collect();
        assert!(roc_auc(&inverted).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores identical: every ordering equally likely -> 0.5.
        let preds = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&preds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value_with_partial_overlap() {
        // pos scores {0.8, 0.4}, neg scores {0.6, 0.2}:
        // pairs won = (0.8>0.6)+(0.8>0.2)+(0.4>0.2) = 3 of 4 -> 0.75.
        let preds = vec![(0.8, true), (0.4, true), (0.6, false), (0.2, false)];
        assert!((roc_auc(&preds) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(roc_auc(&[(0.9, true)]), 0.5);
        assert_eq!(roc_auc(&[]), 0.5);
    }

    #[test]
    fn mean_std_aggregation() {
        let ms = MeanStd::of(&[0.9, 0.9, 0.9]);
        assert!((ms.mean - 0.9).abs() < 1e-12);
        assert!(ms.std < 1e-12);
        let ms2 = MeanStd::of(&[0.8, 1.0]);
        assert!((ms2.mean - 0.9).abs() < 1e-12);
        assert!((ms2.std - 0.1).abs() < 1e-12);
        assert_eq!(ms2.percent(), "90.00±10.00");
        assert_eq!(MeanStd::of(&[]).mean, 0.0);
    }
}
