//! Experiment runner implementing the protocol of Sec. V-D.
//!
//! Each experiment run generates a dataset (fixed seed per run index, so
//! every model sees identical data), splits it 30 / 70 chronologically,
//! trains for 10 epochs of Adam with same-timestamp shuffling, and scores
//! Precision / Recall / F₁ on the held-out 70%. Results aggregate over
//! `runs` repetitions as mean ± std, matching the paper's five-run averages.

use std::time::{Duration, Instant};

use tpgnn_obs::trace;
use tpgnn_core::{GraphClassifier, GuardConfig, TrainConfig};
use tpgnn_data::{DatasetKind, GraphDataset};
use tpgnn_graph::Ctdn;

use crate::metrics::{MeanStd, Metrics};

/// Experiment-scale settings.
///
/// The paper trains on the full corpora (44k–575k graphs); this harness
/// defaults to a laptop-scale slice and can be scaled via the environment:
/// `TPGNN_GRAPHS`, `TPGNN_RUNS`, and `TPGNN_EPOCHS`.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Graphs generated per dataset per run.
    pub num_graphs: usize,
    /// Independent repetitions (paper: 5).
    pub runs: usize,
    /// Training epochs (paper: 10).
    pub epochs: usize,
    /// Chronological train fraction (paper: 0.3).
    pub train_frac: f64,
    /// Learning rate applied uniformly to every model (`TPGNN_LR`).
    ///
    /// The paper uses `1e-3` with ~1000× more gradient steps than our
    /// scaled-down corpora provide; `3e-3` compensates without changing the
    /// relative comparison (all models get the same rate).
    pub learning_rate: f32,
    /// Base seed; run `r` uses `base_seed + r` for data and models.
    pub base_seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            num_graphs: env_usize("TPGNN_GRAPHS", 300),
            runs: env_usize("TPGNN_RUNS", 3),
            epochs: env_usize("TPGNN_EPOCHS", 10),
            train_frac: 0.3,
            learning_rate: std::env::var("TPGNN_LR")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3e-3),
            base_seed: 42,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Outcome of one (model, dataset) cell, aggregated over runs.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Model display name.
    pub model: String,
    /// Dataset display name.
    pub dataset: String,
    /// F₁ Score over runs.
    pub f1: MeanStd,
    /// Precision over runs.
    pub precision: MeanStd,
    /// Recall over runs.
    pub recall: MeanStd,
    /// Mean wall-clock inference time per test graph.
    pub time_per_graph: Duration,
    /// Mean wall-clock training time per run.
    pub train_time: Duration,
    /// Total guard recovery events across all runs of this cell.
    pub recoveries: usize,
    /// Number of runs the guard abandoned after exhausting its budget.
    pub aborted_runs: usize,
}

/// Convert a labeled split into the `(graph, target)` pairs the trainer
/// consumes.
pub fn to_pairs(split: &[tpgnn_data::LabeledGraph]) -> Vec<(Ctdn, f32)> {
    split.iter().map(|lg| (lg.graph.clone(), lg.target())).collect()
}

/// One (model, dataset) cell of an experiment grid.
///
/// The builder must be `Sync`: [`run_cells`] fans the grid's individual
/// training runs out over the worker pool, so the same builder may be
/// invoked from several threads at once (each invocation constructs an
/// independent model).
pub struct CellSpec<'a> {
    model: String,
    kind: DatasetKind,
    #[allow(clippy::type_complexity)]
    build: Box<dyn Fn(usize, usize, u64) -> Box<dyn GraphClassifier> + Sync + 'a>,
}

impl<'a> CellSpec<'a> {
    /// A cell with a custom model builder; `build` receives
    /// `(feature_dim, snapshot_size, seed)`.
    pub fn new(
        model_name: impl Into<String>,
        kind: DatasetKind,
        build: impl Fn(usize, usize, u64) -> Box<dyn GraphClassifier> + Sync + 'a,
    ) -> Self {
        Self { model: model_name.into(), kind, build: Box::new(build) }
    }

    /// A cell built from the standard model zoo by display name.
    pub fn zoo(model_name: impl Into<String>, kind: DatasetKind) -> Self {
        let model: String = model_name.into();
        let name_for_build = model.clone();
        Self {
            model,
            kind,
            build: Box::new(move |feature_dim, snapshot_size, seed| {
                tpgnn_baselines::zoo::build(&name_for_build, feature_dim, snapshot_size, seed)
            }),
        }
    }
}

/// Run a grid of cells, fanning every (cell × run) pair out as one pool
/// task, and reduce the outcomes back into one [`CellResult`] per spec —
/// always in the input spec order, regardless of which runs finish first.
///
/// Determinism: each run's dataset and model seed depend only on
/// `cfg.base_seed + run`, and per-run outcomes are reduced in run order, so
/// the returned results are bitwise-identical at any `TPGNN_THREADS`. The
/// `eval.cell` span is emitted at reduce time with the same aggregate
/// fields as the sequential runner (its own duration no longer measures
/// cell wall-clock; the summed `train_ms`/`predict_ms` fields do).
pub fn run_cells(specs: &[CellSpec<'_>], cfg: &ExperimentConfig) -> Vec<CellResult> {
    let tasks: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|cell| (0..cfg.runs).map(move |run| (cell, run)))
        .collect();
    let outcomes = tpgnn_par::map_indexed(&tasks, |_, &(cell, run)| {
        let spec = &specs[cell];
        let seed = cfg.base_seed + run as u64;
        let mut run_span = trace::span("eval.run");
        run_span.set("model", spec.model.as_str());
        run_span.set("dataset", spec.kind.name());
        run_span.set("run", run as i64);
        let ds = spec.kind.generate(cfg.num_graphs, seed);
        run_once(&spec.model, &ds, spec.kind, cfg, seed, spec.build.as_ref())
    });

    specs
        .iter()
        .enumerate()
        .map(|(cell, spec)| {
            let per_run = &outcomes[cell * cfg.runs..(cell + 1) * cfg.runs];
            reduce_cell(&spec.model, spec.kind, cfg, per_run)
        })
        .collect()
}

/// Fold one cell's per-run outcomes (in run order) into its [`CellResult`].
fn reduce_cell(
    model_name: &str,
    kind: DatasetKind,
    cfg: &ExperimentConfig,
    per_run: &[(RunOutcome, Duration, Duration, usize)],
) -> CellResult {
    let mut f1s = Vec::with_capacity(per_run.len());
    let mut precisions = Vec::with_capacity(per_run.len());
    let mut recalls = Vec::with_capacity(per_run.len());
    let mut total_predict = Duration::ZERO;
    let mut total_train = Duration::ZERO;
    let mut total_test_graphs = 0usize;
    let mut recoveries = 0usize;
    let mut aborted_runs = 0usize;

    let mut cell_span = trace::span("eval.cell");
    cell_span.set("model", model_name);
    cell_span.set("dataset", kind.name());
    cell_span.set("runs", cfg.runs as i64);
    for (outcome, predict_time, train_time, n_test) in per_run {
        f1s.push(outcome.metrics.f1);
        precisions.push(outcome.metrics.precision);
        recalls.push(outcome.metrics.recall);
        total_predict += *predict_time;
        total_train += *train_time;
        total_test_graphs += n_test;
        recoveries += outcome.recoveries;
        aborted_runs += outcome.aborted as usize;
    }
    cell_span.set("test_graphs", total_test_graphs as i64);
    cell_span.set("train_ms", total_train.as_millis() as i64);
    cell_span.set("predict_ms", total_predict.as_millis() as i64);
    cell_span.set("f1", MeanStd::of(&f1s).mean);
    cell_span.set("recoveries", recoveries as i64);
    cell_span.set("aborted_runs", aborted_runs as i64);
    drop(cell_span);

    CellResult {
        model: model_name.to_string(),
        dataset: kind.name().to_string(),
        f1: MeanStd::of(&f1s),
        precision: MeanStd::of(&precisions),
        recall: MeanStd::of(&recalls),
        time_per_graph: if total_test_graphs > 0 {
            total_predict / total_test_graphs as u32
        } else {
            Duration::ZERO
        },
        train_time: total_train / cfg.runs.max(1) as u32,
        recoveries,
        aborted_runs,
    }
}

/// Run one model (by zoo name) on one dataset kind under `cfg`.
///
/// `build` receives `(feature_dim, snapshot_size, seed)` so callers can
/// inject arbitrary models (e.g. ablation variants) while the common path
/// uses [`tpgnn_baselines::zoo::build`]. Individual runs execute on the
/// worker pool; prefer batching a whole grid through [`run_cells`] so the
/// pool sees every (cell × run) task at once.
pub fn run_cell_with(
    model_name: &str,
    kind: DatasetKind,
    cfg: &ExperimentConfig,
    build: impl Fn(usize, usize, u64) -> Box<dyn GraphClassifier> + Sync,
) -> CellResult {
    let specs = [CellSpec::new(model_name, kind, build)];
    run_cells(&specs, cfg)
        .pop()
        .expect("run_cells returns one result per spec")
}

/// [`run_cell_with`] using the standard model zoo.
pub fn run_cell(model_name: &str, kind: DatasetKind, cfg: &ExperimentConfig) -> CellResult {
    let specs = [CellSpec::zoo(model_name, kind)];
    run_cells(&specs, cfg)
        .pop()
        .expect("run_cells returns one result per spec")
}

/// Metrics plus guard history from one training run of a cell.
struct RunOutcome {
    metrics: Metrics,
    recoveries: usize,
    aborted: bool,
}

fn run_once(
    _model_name: &str,
    ds: &GraphDataset,
    kind: DatasetKind,
    cfg: &ExperimentConfig,
    seed: u64,
    build: &(dyn Fn(usize, usize, u64) -> Box<dyn GraphClassifier> + Sync),
) -> (RunOutcome, Duration, Duration, usize) {
    let feature_dim = ds
        .graphs
        .first()
        .map_or(3, |g| g.graph.feature_dim());
    let (train_split, test_split) = ds.split(cfg.train_frac);
    let train_pairs = to_pairs(train_split);
    let test_pairs = to_pairs(test_split);

    let mut model = build(feature_dim, kind.snapshot_size(), seed);
    model.set_learning_rate(cfg.learning_rate);
    let train_cfg = TrainConfig { epochs: cfg.epochs, shuffle_ties: true, seed };

    let t0 = Instant::now();
    // The production path: guardrails on. A model that blows up mid-run is
    // rolled back and retried with a halved learning rate instead of
    // poisoning every epoch after the blow-up (or panicking the harness).
    let report =
        tpgnn_core::train_guarded(model.as_mut(), &train_pairs, &train_cfg, &GuardConfig::default());
    if !report.recoveries.is_empty() {
        eprintln!(
            "[guard] {}: {} recovery event(s){}: {}",
            model.name(),
            report.recoveries.len(),
            if report.aborted { ", run abandoned" } else { "" },
            report
                .recoveries
                .iter()
                .map(|e| format!("epoch {}: {}", e.epoch, e.reason))
                .collect::<Vec<_>>()
                .join("; "),
        );
    }
    let train_time = t0.elapsed();

    let t1 = Instant::now();
    let preds = tpgnn_core::predict_all(model.as_mut(), &test_pairs);
    let predict_time = t1.elapsed();

    let outcome = RunOutcome {
        metrics: Metrics::from_predictions(&preds, 0.5),
        recoveries: report.recoveries.len(),
        aborted: report.aborted,
    };
    (outcome, predict_time, train_time, test_pairs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            num_graphs: 24,
            runs: 1,
            epochs: 2,
            train_frac: 0.5,
            base_seed: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn run_cell_produces_sane_metrics() {
        let cfg = tiny_cfg();
        let cell = run_cell("GCN", DatasetKind::Hdfs, &cfg);
        assert_eq!(cell.model, "GCN");
        assert_eq!(cell.dataset, "HDFS");
        assert!((0.0..=1.0).contains(&cell.f1.mean));
        assert!((0.0..=1.0).contains(&cell.precision.mean));
        assert!((0.0..=1.0).contains(&cell.recall.mean));
        assert!(cell.time_per_graph > Duration::ZERO);
    }

    #[test]
    fn same_seed_same_data_for_all_models() {
        let a = DatasetKind::Hdfs.generate(10, 42);
        let b = DatasetKind::Hdfs.generate(10, 42);
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.graph.edges(), y.graph.edges());
        }
    }

    #[test]
    fn custom_builder_is_used() {
        let cfg = tiny_cfg();
        let cell = run_cell_with("custom", DatasetKind::Hdfs, &cfg, |fd, _snap, seed| {
            Box::new(tpgnn_core::TpGnn::new(
                tpgnn_core::TpGnnConfig::sum(fd).with_seed(seed),
            ))
        });
        assert_eq!(cell.model, "custom");
        assert!((0.0..=1.0).contains(&cell.f1.mean));
    }
}
