//! Plain-text rendering of result tables, heatmaps and scatter series in the
//! layout of the paper's tables and figures.

use crate::degradation::DegradationRow;
use crate::metrics::MeanStd;
use crate::runner::CellResult;

/// Render a Table II-style block for one dataset: one row per model with
/// F₁ / Precision / Recall as `mean±std` percentages plus a Recov column
/// showing guard recovery events (and abandoned runs) so divergent cells
/// are visible at a glance.
pub fn render_metric_table(dataset: &str, cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{dataset}\n{:<22} {:>14} {:>14} {:>14} {:>8}\n",
        "Model", "F1 Score", "Precision", "Recall", "Recov"
    ));
    out.push_str(&"-".repeat(77));
    out.push('\n');
    for cell in cells {
        let recov = if cell.aborted_runs > 0 {
            format!("{}!{}", cell.recoveries, cell.aborted_runs)
        } else if cell.recoveries > 0 {
            cell.recoveries.to_string()
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<22} {:>14} {:>14} {:>14} {:>8}\n",
            cell.model,
            cell.f1.percent(),
            cell.precision.percent(),
            cell.recall.percent(),
            recov
        ));
    }
    out
}

/// Render a Fig. 5-style heatmap: rows = one sweep axis, cols = the other,
/// cells = mean F₁ (%).
pub fn render_heatmap(
    title: &str,
    row_label: &str,
    rows: &[usize],
    col_label: &str,
    cols: &[usize],
    values: &[Vec<MeanStd>],
) -> String {
    let mut out = format!("{title}  (rows: {row_label}, cols: {col_label})\n");
    out.push_str(&format!("{:>8}", ""));
    for c in cols {
        out.push_str(&format!("{c:>9}"));
    }
    out.push('\n');
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("{r:>8}"));
        for v in values[i].iter().take(cols.len()) {
            out.push_str(&format!("{:>9.2}", v.mean * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Render a Fig. 6-style series: per model, runtime per graph (µs) vs F₁.
pub fn render_scatter(dataset: &str, cells: &[CellResult]) -> String {
    let mut out = format!("{dataset}: runtime-per-graph (µs) vs F1 (%)\n");
    for cell in cells {
        out.push_str(&format!(
            "  {:<14} time/graph = {:>10.1} µs   F1 = {:>6.2}%\n",
            cell.model,
            cell.time_per_graph.as_secs_f64() * 1e6,
            cell.f1.mean * 100.0
        ));
    }
    out
}

/// Render a degradation sweep: one row per injected fault rate, with
/// classification quality next to the ingestion accounting so the
/// quality-vs-corruption trade-off is readable in one block.
pub fn render_degradation(dataset: &str, model: &str, rows: &[DegradationRow]) -> String {
    let mut out = format!(
        "{dataset} / {model}: quality under injected stream faults\n\
         {:<6} {:>14} {:>14} {:>14} {:>9} {:>8}  {}\n",
        "Rate", "F1 Score", "Precision", "Recall", "Released", "Recov", "Quarantined"
    );
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<6.2} {:>14} {:>14} {:>14} {:>8.1}% {:>8}  {}\n",
            row.rate,
            row.f1.percent(),
            row.precision.percent(),
            row.recall.percent(),
            row.released_frac * 100.0,
            if row.recoveries > 0 { row.recoveries.to_string() } else { "-".to_string() },
            row.counts.summary(),
        ));
    }
    out
}

/// Render a Fig. 3/4-style ablation block: one row per variant.
pub fn render_ablation(dataset: &str, rows: &[(String, MeanStd, MeanStd, MeanStd)]) -> String {
    let mut out = format!(
        "{dataset}\n{:<12} {:>14} {:>14} {:>14}\n",
        "Variant", "F1 Score", "Precision", "Recall"
    );
    out.push_str(&"-".repeat(58));
    out.push('\n');
    for (label, f1, p, r) in rows {
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14}\n",
            label,
            f1.percent(),
            p.percent(),
            r.percent()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cell(model: &str, f1: f64) -> CellResult {
        CellResult {
            model: model.into(),
            dataset: "D".into(),
            f1: MeanStd { mean: f1, std: 0.01 },
            precision: MeanStd { mean: f1, std: 0.0 },
            recall: MeanStd { mean: f1, std: 0.0 },
            time_per_graph: Duration::from_micros(150),
            train_time: Duration::from_secs(1),
            recoveries: 0,
            aborted_runs: 0,
        }
    }

    #[test]
    fn metric_table_contains_all_models() {
        let t = render_metric_table("HDFS", &[cell("GCN", 0.84), cell("TP-GNN-SUM", 0.98)]);
        assert!(t.contains("HDFS"));
        assert!(t.contains("GCN"));
        assert!(t.contains("TP-GNN-SUM"));
        assert!(t.contains("98.00±0.00"));
        assert!(t.contains("Recov"));
    }

    #[test]
    fn metric_table_recovery_column_states() {
        let healthy = cell("GCN", 0.9);
        let mut recovered = cell("TGN", 0.8);
        recovered.recoveries = 2;
        let mut abandoned = cell("TGAT", 0.1);
        abandoned.recoveries = 4;
        abandoned.aborted_runs = 1;
        let t = render_metric_table("HDFS", &[healthy, recovered, abandoned]);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().any(|l| l.starts_with("GCN") && l.trim_end().ends_with('-')));
        assert!(lines.iter().any(|l| l.starts_with("TGN") && l.trim_end().ends_with('2')));
        assert!(lines.iter().any(|l| l.starts_with("TGAT") && l.trim_end().ends_with("4!1")));
    }

    #[test]
    fn heatmap_layout() {
        let vals = vec![
            vec![MeanStd { mean: 0.9, std: 0.0 }, MeanStd { mean: 0.95, std: 0.0 }],
            vec![MeanStd { mean: 0.92, std: 0.0 }, MeanStd { mean: 0.97, std: 0.0 }],
        ];
        let h = render_heatmap("Fig5", "d", &[8, 16], "d_t", &[2, 4], &vals);
        assert!(h.contains("Fig5"));
        assert!(h.contains("97.00"));
        assert_eq!(h.lines().count(), 4);
    }

    #[test]
    fn scatter_shows_microseconds() {
        let s = render_scatter("Gowalla", &[cell("TGN", 0.93)]);
        assert!(s.contains("150.0 µs"));
        assert!(s.contains("93.00%"));
    }

    #[test]
    fn degradation_rows_render() {
        let row = DegradationRow {
            rate: 0.25,
            f1: MeanStd { mean: 0.8, std: 0.02 },
            precision: MeanStd { mean: 0.82, std: 0.01 },
            recall: MeanStd { mean: 0.78, std: 0.03 },
            released_frac: 0.93,
            counts: Default::default(),
            recoveries: 1,
        };
        let t = render_degradation("Forum-java", "TP-GNN-SUM", &[row]);
        assert!(t.contains("Forum-java / TP-GNN-SUM"));
        assert!(t.contains("0.25"));
        assert!(t.contains("80.00±2.00"));
        assert!(t.contains("93.0%"));
        assert!(t.contains("late_event=0"));
    }

    #[test]
    fn ablation_rows_render() {
        let rows = vec![(
            "full".to_string(),
            MeanStd { mean: 0.99, std: 0.001 },
            MeanStd { mean: 0.99, std: 0.0 },
            MeanStd { mean: 0.99, std: 0.0 },
        )];
        let a = render_ablation("Forum-java", &rows);
        assert!(a.contains("full"));
        assert!(a.contains("99.00"));
    }
}
