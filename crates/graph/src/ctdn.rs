//! Continuous-Time Dynamic Network — Definition 1 of the paper.
//!
//! A CTDN is `G = (V, E^T, X, T)`: a node set, a set of `T`-labelled directed
//! temporal edges `(u, v, t)`, and a `n × q` node feature matrix. Edge
//! direction denotes information flow (Sec. III).

use std::fmt;

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::seq::SliceRandom;

/// A typed error from CTDN construction.
///
/// Produced by the fallible ingestion path ([`Ctdn::try_add_edge`]):
/// propagate it where a violation is a data condition, or
/// `try_add_edge(...).unwrap()` where it is a bug (simulators, tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphError {
    /// An edge endpoint does not name a node of the graph.
    EndpointOutOfBounds {
        /// Which endpoint: `"source"` or `"target"`.
        endpoint: &'static str,
        /// The offending node index.
        index: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A timestamp is NaN, infinite, or not strictly positive (the paper
    /// requires `t > 0`).
    BadTimestamp {
        /// The offending timestamp.
        time: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfBounds { endpoint, index, num_nodes } => {
                write!(f, "edge {endpoint} {index} out of bounds for {num_nodes} nodes")
            }
            GraphError::BadTimestamp { time } => {
                write!(f, "timestamps must be finite and > 0, got {time}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed temporal edge `(u, v, t)`: information flows from `src` to
/// `dst` at time `time`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemporalEdge {
    /// Source node index (information origin).
    pub src: usize,
    /// Target node index (information destination).
    pub dst: usize,
    /// Interaction timestamp; the paper requires `t > 0`.
    pub time: f64,
}

impl TemporalEdge {
    /// Convenience constructor.
    pub fn new(src: usize, dst: usize, time: f64) -> Self {
        Self { src, dst, time }
    }
}

/// Per-node feature storage: a dense `n × q` row-major matrix kept as plain
/// `Vec<f32>` so the graph crate does not depend on the tensor crate.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeFeatures {
    data: Vec<f32>,
    num_nodes: usize,
    dim: usize,
}

impl NodeFeatures {
    /// All-zero features for `num_nodes` nodes of dimension `dim`.
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        Self { data: vec![0.0; num_nodes * dim], num_nodes, dim }
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != num_nodes * dim`.
    pub fn from_vec(num_nodes: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), num_nodes * dim, "feature data length mismatch");
        Self { data, num_nodes, dim }
    }

    /// Feature dimension `q`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Feature row of node `v`.
    pub fn row(&self, v: usize) -> &[f32] {
        assert!(v < self.num_nodes, "node {v} out of bounds");
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutable feature row of node `v`.
    pub fn row_mut(&mut self, v: usize) -> &mut [f32] {
        assert!(v < self.num_nodes, "node {v} out of bounds");
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Continuous-Time Dynamic Network (Definition 1).
///
/// Edges are stored in chronological order (stable under insertion order for
/// equal timestamps). [`Ctdn::try_add_edge`] may append out of order; the
/// edge list is re-sorted lazily before any chronological traversal.
#[derive(Clone, Debug)]
pub struct Ctdn {
    features: NodeFeatures,
    edges: Vec<TemporalEdge>,
    sorted: bool,
}

impl Ctdn {
    /// Creates a CTDN over the nodes described by `features`, with no edges.
    pub fn new(features: NodeFeatures) -> Self {
        Self { features, edges: Vec::new(), sorted: true }
    }

    /// Creates a CTDN with `num_nodes` zero-feature nodes of dimension `dim`.
    pub fn with_zero_features(num_nodes: usize, dim: usize) -> Self {
        Self::new(NodeFeatures::zeros(num_nodes, dim))
    }

    /// Number of nodes `n = |V|`.
    pub fn num_nodes(&self) -> usize {
        self.features.num_nodes()
    }

    /// Number of temporal edges `m = |E^T|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Feature dimension `q`.
    pub fn feature_dim(&self) -> usize {
        self.features.dim()
    }

    /// Borrow the node feature matrix.
    pub fn features(&self) -> &NodeFeatures {
        &self.features
    }

    /// Mutably borrow the node feature matrix.
    pub fn features_mut(&mut self) -> &mut NodeFeatures {
        &mut self.features
    }

    /// Append a temporal edge, reporting a [`GraphError`] if an endpoint is
    /// out of bounds or the timestamp is not finite and strictly positive.
    ///
    /// This is the ingestion-facing path: dataset parsers feed untrusted
    /// input through it so a corrupt file is a reportable condition.
    pub fn try_add_edge(&mut self, src: usize, dst: usize, time: f64) -> Result<(), GraphError> {
        let n = self.num_nodes();
        if src >= n {
            return Err(GraphError::EndpointOutOfBounds { endpoint: "source", index: src, num_nodes: n });
        }
        if dst >= n {
            return Err(GraphError::EndpointOutOfBounds { endpoint: "target", index: dst, num_nodes: n });
        }
        if !(time.is_finite() && time > 0.0) {
            return Err(GraphError::BadTimestamp { time });
        }
        if let Some(last) = self.edges.last() {
            if time < last.time {
                self.sorted = false;
            }
        }
        self.edges.push(TemporalEdge::new(src, dst, time));
        Ok(())
    }

    /// Ensure the edge list is chronologically sorted (stable for ties).
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.edges
                .sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite timestamps"));
            self.sorted = true;
        }
    }

    /// Edges in chronological order — line 1 of Algorithm 1.
    pub fn edges_chronological(&mut self) -> &[TemporalEdge] {
        self.ensure_sorted();
        &self.edges
    }

    /// Edges in their current stored order (chronological unless edges were
    /// appended out of order and not yet re-sorted).
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Replace the whole edge list (used by negative samplers).
    pub fn set_edges(&mut self, edges: Vec<TemporalEdge>) {
        for e in &edges {
            assert!(e.src < self.num_nodes() && e.dst < self.num_nodes(), "edge endpoint out of bounds");
        }
        self.edges = edges;
        self.sorted = self
            .edges
            .windows(2)
            .all(|w| w[0].time <= w[1].time);
    }

    /// Earliest and latest timestamps, or `None` if the graph has no edges.
    pub fn time_span(&mut self) -> Option<(f64, f64)> {
        self.ensure_sorted();
        match (self.edges.first(), self.edges.last()) {
            (Some(a), Some(b)) => Some((a.time, b.time)),
            _ => None,
        }
    }

    /// Shuffle the relative order of edges that share a timestamp
    /// (Sec. V-D: "our model shuffles the edge order at the same timestamp
    /// before each training [epoch]"). Chronological order across distinct
    /// timestamps is preserved.
    pub fn shuffle_same_timestamp(&mut self, rng: &mut StdRng) {
        self.ensure_sorted();
        let mut start = 0;
        while start < self.edges.len() {
            let t = self.edges[start].time;
            let mut end = start + 1;
            while end < self.edges.len() && self.edges[end].time == t {
                end += 1;
            }
            if end - start > 1 {
                self.edges[start..end].shuffle(rng);
            }
            start = end;
        }
    }

    /// Nodes that appear as an endpoint of at least one edge.
    pub fn active_nodes(&self) -> Vec<usize> {
        let mut seen = vec![false; self.num_nodes()];
        for e in &self.edges {
            seen[e.src] = true;
            seen[e.dst] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    fn chain_graph() -> Ctdn {
        let mut g = Ctdn::with_zero_features(4, 2);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        g.try_add_edge(2, 3, 3.0).unwrap();
        g
    }

    #[test]
    fn basic_construction() {
        let g = chain_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.feature_dim(), 2);
    }

    #[test]
    fn edges_resorted_after_out_of_order_insert() {
        let mut g = Ctdn::with_zero_features(3, 1);
        g.try_add_edge(0, 1, 5.0).unwrap();
        g.try_add_edge(1, 2, 1.0).unwrap();
        let times: Vec<f64> = g.edges_chronological().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 5.0]);
    }

    #[test]
    fn stable_order_for_equal_timestamps() {
        let mut g = Ctdn::with_zero_features(3, 1);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(0, 2, 1.0).unwrap();
        g.try_add_edge(1, 2, 1.0).unwrap();
        let dsts: Vec<usize> = g.edges_chronological().iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 2]);
    }

    #[test]
    fn zero_timestamp_rejected() {
        let mut g = Ctdn::with_zero_features(2, 1);
        assert_eq!(g.try_add_edge(0, 1, 0.0), Err(GraphError::BadTimestamp { time: 0.0 }));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn out_of_bounds_edge_rejected() {
        let mut g = Ctdn::with_zero_features(2, 1);
        assert_eq!(
            g.try_add_edge(0, 5, 1.0),
            Err(GraphError::EndpointOutOfBounds { endpoint: "target", index: 5, num_nodes: 2 })
        );
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn try_add_edge_reports_typed_errors() {
        let mut g = Ctdn::with_zero_features(2, 1);
        assert_eq!(
            g.try_add_edge(5, 0, 1.0),
            Err(GraphError::EndpointOutOfBounds { endpoint: "source", index: 5, num_nodes: 2 })
        );
        assert_eq!(
            g.try_add_edge(0, 3, 1.0),
            Err(GraphError::EndpointOutOfBounds { endpoint: "target", index: 3, num_nodes: 2 })
        );
        assert!(matches!(
            g.try_add_edge(0, 1, f64::NAN),
            Err(GraphError::BadTimestamp { time }) if time.is_nan()
        ));
        assert_eq!(g.try_add_edge(0, 1, -1.0), Err(GraphError::BadTimestamp { time: -1.0 }));
        assert_eq!(g.num_edges(), 0, "rejected edges must not be stored");
        assert_eq!(g.try_add_edge(0, 1, 1.0), Ok(()));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn time_span_and_active_nodes() {
        let mut g = chain_graph();
        assert_eq!(g.time_span(), Some((1.0, 3.0)));
        assert_eq!(g.active_nodes(), vec![0, 1, 2, 3]);
        let mut empty = Ctdn::with_zero_features(2, 1);
        assert_eq!(empty.time_span(), None);
        assert!(empty.active_nodes().is_empty());
    }

    #[test]
    fn shuffle_preserves_cross_timestamp_order() {
        let mut g = Ctdn::with_zero_features(6, 1);
        for i in 0..5 {
            g.try_add_edge(i, i + 1, 1.0).unwrap(); // five ties at t=1
        }
        g.try_add_edge(0, 5, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        g.shuffle_same_timestamp(&mut rng);
        let edges = g.edges();
        assert!(edges[..5].iter().all(|e| e.time == 1.0));
        assert_eq!(edges[5].time, 2.0);
        // The tie group must be a permutation of the original five edges.
        let mut srcs: Vec<usize> = edges[..5].iter().map(|e| e.src).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn features_row_access() {
        let mut f = NodeFeatures::zeros(3, 2);
        f.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        let g = Ctdn::new(f);
        assert_eq!(g.features().row(1), &[1.0, 2.0]);
        assert_eq!(g.features().row(0), &[0.0, 0.0]);
    }

    #[test]
    fn set_edges_revalidates_sortedness() {
        let mut g = Ctdn::with_zero_features(3, 1);
        g.set_edges(vec![TemporalEdge::new(0, 1, 3.0), TemporalEdge::new(1, 2, 1.0)]);
        let times: Vec<f64> = g.edges_chronological().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 3.0]);
    }
}
