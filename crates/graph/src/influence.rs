//! Influential-node analysis — Definition 4 and the machinery of Theorem 1.
//!
//! A node `u` is *influential* to `v` when a valid path (a sequence of edges
//! with non-decreasing timestamps) leads from `u` to `v`. Temporal
//! propagation aggregates exactly the influential nodes; Theorem 1 states the
//! converse as well. This module computes influence sets with the same edge
//! processing order as Algorithm 1, so its output is the ground truth the
//! property tests compare gradients/embeddings against.

use std::sync::OnceLock;

use tpgnn_obs::metrics::{self, Counter};

use crate::ctdn::{Ctdn, TemporalEdge};

fn computations() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("graph.influence.computations"))
}

fn edges_processed() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("graph.influence.edges_processed"))
}

/// Compact bitset over node indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    bits: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Empty set over a universe of `len` nodes.
    pub fn new(len: usize) -> Self {
        Self { bits: vec![0; len.div_ceil(64)], len }
    }

    /// Insert node `v`.
    pub fn insert(&mut self, v: usize) {
        assert!(v < self.len, "node {v} out of bounds");
        self.bits[v / 64] |= 1 << (v % 64);
    }

    /// Whether node `v` is in the set.
    pub fn contains(&self, v: usize) -> bool {
        v < self.len && self.bits[v / 64] & (1 << (v % 64)) != 0
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Number of nodes in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&v| self.contains(v))
    }
}

/// Influence sets of every node, computed in one chronological sweep.
///
/// `set(v)` is the set of nodes influential to `v` under the processing
/// order of Algorithm 1: when edge `(u, v, t)` is processed,
/// `influence(v) ← influence(v) ∪ influence(u) ∪ {u}`.
pub struct InfluenceAnalysis {
    sets: Vec<NodeSet>,
}

impl InfluenceAnalysis {
    /// Run the sweep over `g`'s chronologically ordered edges.
    pub fn compute(g: &mut Ctdn) -> Self {
        let n = g.num_nodes();
        computations().inc();
        edges_processed().add(g.num_edges() as u64);
        let mut sets: Vec<NodeSet> = (0..n).map(|_| NodeSet::new(n)).collect();
        for &TemporalEdge { src, dst, .. } in g.edges_chronological() {
            if src == dst {
                // Self-loops add the node itself but no new foreign influence.
                sets[src].insert(src);
                continue;
            }
            // Split borrows: src != dst.
            let (a, b) = if src < dst {
                let (lo, hi) = sets.split_at_mut(dst);
                (&lo[src], &mut hi[0])
            } else {
                let (lo, hi) = sets.split_at_mut(src);
                (&hi[0], &mut lo[dst])
            };
            b.union_with(a);
            b.insert(src);
        }
        Self { sets }
    }

    /// Run the sweep over many graphs on the worker pool.
    ///
    /// Each graph's sweep is independent and purely sequential internally,
    /// so results are identical to calling [`Self::compute`] in a loop and
    /// come back in input order at any `TPGNN_THREADS`.
    pub fn compute_many(graphs: &mut [Ctdn]) -> Vec<Self> {
        tpgnn_par::map_mut(graphs, || (), |_, _i, g| Self::compute(g))
    }

    /// Nodes influential to `v`.
    pub fn set(&self, v: usize) -> &NodeSet {
        &self.sets[v]
    }

    /// Whether `u` is influential to `v` (Definition 4).
    pub fn is_influential(&self, u: usize, v: usize) -> bool {
        self.sets[v].contains(u)
    }
}

/// Search for a valid path from `u` to `v` (Definition 4) consistent with the
/// processing order of the chronologically sorted edge list.
///
/// Returns the path as a sequence of edges with non-decreasing timestamps, or
/// `None` when `u` is not influential to `v`.
pub fn valid_path(g: &mut Ctdn, u: usize, v: usize) -> Option<Vec<TemporalEdge>> {
    let n = g.num_nodes();
    if u >= n || v >= n {
        return None;
    }
    let edges = g.edges_chronological().to_vec();
    // pred[w] = index of the edge that first carried u's influence into w.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut reached = vec![false; n];
    reached[u] = true;
    for (i, e) in edges.iter().enumerate() {
        if !reached[e.src] {
            continue;
        }
        if e.dst == v {
            // First edge landing on the target from a reached source —
            // exactly the moment the influence sweep inserts u into set(v).
            // This also covers v == u (cycles and self-loops).
            let mut path = vec![*e];
            let mut cur = e.src;
            while cur != u {
                let j = pred[cur].expect("reached nodes have predecessors");
                path.push(edges[j]);
                cur = edges[j].src;
            }
            path.reverse();
            return Some(path);
        }
        if !reached[e.dst] {
            reached[e.dst] = true;
            pred[e.dst] = Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 style example: a chain with a late back-edge.
    fn fig1_like() -> Ctdn {
        // v3 -> v1 (t=1), v2 -> v1 (t=2), v1 -> v0 (t=3), v7 -> v6 (t=4.9),
        // v8 -> v7 (t=6), v9 -> v8 (t=7), v7 -> v6 (t=7.4 again)
        let mut g = Ctdn::with_zero_features(10, 1);
        g.try_add_edge(3, 1, 1.0).unwrap();
        g.try_add_edge(2, 1, 2.0).unwrap();
        g.try_add_edge(1, 0, 3.0).unwrap();
        g.try_add_edge(7, 6, 4.9).unwrap();
        g.try_add_edge(8, 7, 6.0).unwrap();
        g.try_add_edge(9, 8, 7.0).unwrap();
        g.try_add_edge(7, 6, 7.4).unwrap();
        g
    }

    #[test]
    fn compute_many_matches_sequential() {
        let graphs: Vec<Ctdn> = (0..5)
            .map(|i| {
                let mut g = fig1_like();
                g.try_add_edge(i % 10, (i + 3) % 10, 8.0 + i as f64).unwrap();
                g
            })
            .collect();
        let sequential: Vec<InfluenceAnalysis> =
            graphs.clone().iter_mut().map(InfluenceAnalysis::compute).collect();
        for threads in [1, 4] {
            let mut copies = graphs.clone();
            let many = tpgnn_par::with_thread_override(threads, || {
                InfluenceAnalysis::compute_many(&mut copies)
            });
            for (a, b) in sequential.iter().zip(&many) {
                for v in 0..10 {
                    assert_eq!(a.set(v), b.set(v), "threads={threads}, node {v}");
                }
            }
        }
    }

    #[test]
    fn direct_edge_is_influential() {
        let mut g = fig1_like();
        let inf = InfluenceAnalysis::compute(&mut g);
        assert!(inf.is_influential(3, 1));
        assert!(inf.is_influential(2, 1));
        assert!(!inf.is_influential(1, 3));
    }

    #[test]
    fn influence_respects_time_order() {
        let mut g = fig1_like();
        let inf = InfluenceAnalysis::compute(&mut g);
        // v9 -> v8 at t=7 precedes the second v7 -> v6 at t=7.4,
        // so v9's influence reaches v6 through v8 -> v7 (t=6)? No:
        // v8 -> v7 happened at t=6 BEFORE v9 -> v8 (t=7), so v9 does NOT
        // reach v7 and hence not v6. Only v8 reaches v7 and v6.
        assert!(inf.is_influential(8, 7));
        assert!(inf.is_influential(8, 6));
        assert!(!inf.is_influential(9, 7));
        assert!(!inf.is_influential(9, 6));
        assert!(inf.is_influential(9, 8));
    }

    #[test]
    fn fig1_abnormal_graph_extends_influence() {
        // Add the abnormal extra edge v7 -> v6 after v9 -> v8... that's already
        // there; instead make v9 -> v8 precede a later v8 -> v7.
        let mut g = fig1_like();
        g.try_add_edge(8, 7, 8.0).unwrap(); // later re-interaction carries v9's influence
        g.try_add_edge(7, 6, 9.0).unwrap();
        let inf = InfluenceAnalysis::compute(&mut g);
        assert!(inf.is_influential(9, 7));
        assert!(inf.is_influential(9, 6));
    }

    #[test]
    fn transitive_chain_influence() {
        let mut g = Ctdn::with_zero_features(5, 1);
        for i in 0..4 {
            g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
        }
        let inf = InfluenceAnalysis::compute(&mut g);
        for i in 0..4 {
            for j in (i + 1)..5 {
                assert!(inf.is_influential(i, j), "{i} should influence {j}");
            }
            assert!(!inf.is_influential(i + 1, i));
        }
        assert_eq!(inf.set(4).count(), 4);
    }

    #[test]
    fn reversed_time_chain_has_no_transitive_influence() {
        // Edges 3->2 (t=1), 2->1 (t=2)? that IS increasing. Use decreasing:
        // 2->1 at t=1, 3->2 at t=2: influence of 3 must NOT reach 1.
        let mut g = Ctdn::with_zero_features(4, 1);
        g.try_add_edge(2, 1, 1.0).unwrap();
        g.try_add_edge(3, 2, 2.0).unwrap();
        let inf = InfluenceAnalysis::compute(&mut g);
        assert!(inf.is_influential(2, 1));
        assert!(inf.is_influential(3, 2));
        assert!(!inf.is_influential(3, 1));
    }

    #[test]
    fn self_loop_only_adds_self() {
        let mut g = Ctdn::with_zero_features(3, 1);
        g.try_add_edge(1, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let inf = InfluenceAnalysis::compute(&mut g);
        assert!(inf.is_influential(1, 1));
        assert!(inf.is_influential(1, 2));
        assert!(!inf.is_influential(0, 2));
    }

    #[test]
    fn valid_path_matches_influence() {
        let mut g = fig1_like();
        let inf = InfluenceAnalysis::compute(&mut g);
        for u in 0..10 {
            for v in 0..10 {
                let p = valid_path(&mut g, u, v);
                assert_eq!(
                    p.is_some(),
                    inf.is_influential(u, v),
                    "path/influence disagree for {u} -> {v}"
                );
                if let Some(path) = p {
                    // Path edges must chain and be time-non-decreasing.
                    assert_eq!(path.first().unwrap().src, u);
                    assert_eq!(path.last().unwrap().dst, v);
                    for w in path.windows(2) {
                        assert_eq!(w[0].dst, w[1].src);
                        assert!(w[0].time <= w[1].time);
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_makes_node_influence_itself() {
        let mut g = Ctdn::with_zero_features(2, 1);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 0, 2.0).unwrap();
        let inf = InfluenceAnalysis::compute(&mut g);
        assert!(inf.is_influential(0, 0), "cycle carries 0's influence back to 0");
        assert!(inf.is_influential(1, 0));
        assert!(!inf.is_influential(1, 1), "no time-respecting cycle back to 1");
        let p = valid_path(&mut g, 0, 0).expect("cycle path");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].src, 0);
        assert_eq!(p[1].dst, 0);
        assert!(valid_path(&mut g, 1, 1).is_none());
    }

    #[test]
    fn nodeset_operations() {
        let mut s = NodeSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut t = NodeSet::new(130);
        t.insert(1);
        t.union_with(&s);
        assert_eq!(t.count(), 4);
    }
}
