//! # tpgnn-graph
//!
//! Continuous-Time Dynamic Network substrate for the TP-GNN reproduction.
//!
//! * [`Ctdn`] — Definition 1's `G = (V, E^T, X, T)` with chronological edge
//!   iteration and same-timestamp shuffling,
//! * [`influence`] — Definition 4's influential nodes and the valid-path
//!   machinery behind Theorem 1,
//! * [`StaticView`] — timestamp-discarding projection for static baselines,
//! * [`snapshot`] — windowed partitioning for discrete DGNN baselines,
//! * [`TemporalNeighborIndex`] — recent-neighbor queries for continuous
//!   DGNN baselines (TGAT, TGN, GraphMixer),
//! * [`GraphStats`] — per-graph statistics feeding the Table I harness,
//! * [`stream`] — incremental, out-of-order-tolerant ingestion
//!   ([`CtdnBuilder`], watermark release, typed [`QuarantineLog`]).

#![warn(missing_docs)]

mod ctdn;
pub mod influence;
mod neighbor;
pub mod snapshot;
mod static_view;
mod stats;
pub mod stream;

pub use ctdn::{Ctdn, GraphError, NodeFeatures, TemporalEdge};
pub use influence::{InfluenceAnalysis, NodeSet};
pub use neighbor::{NeighborEvent, TemporalNeighborIndex};
pub use snapshot::{snapshots, Snapshot, SnapshotSpec};
pub use static_view::StaticView;
pub use stats::GraphStats;
pub use stream::{
    Admission, CtdnBuilder, QuarantineLog, QuarantinedEvent, RejectKind, RejectReason,
    StreamConfig, StreamEvent, StreamOutcome, StreamStats,
};
