//! Temporal neighbor indexing for continuous DGNN baselines.
//!
//! TGAT/TGN aggregate the most recent temporal neighbors of a node before a
//! query time; GraphMixer aggregates the "most recent 1-hop neighbor" links.
//! This index answers those queries in `O(log m + k)` per call.

use std::sync::OnceLock;

use tpgnn_obs::metrics::{self, Counter};

use crate::ctdn::Ctdn;

fn queries() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("graph.neighbor.queries"))
}

fn events_returned() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("graph.neighbor.events_returned"))
}

/// One historical interaction touching an indexed node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborEvent {
    /// The other endpoint.
    pub neighbor: usize,
    /// Interaction time.
    pub time: f64,
    /// Index of the originating edge in the chronological edge list.
    pub edge_idx: usize,
    /// Whether the indexed node was the edge's target (information receiver).
    pub incoming: bool,
}

/// Per-node chronological interaction lists over a CTDN.
pub struct TemporalNeighborIndex {
    /// `events[v]` sorted ascending by time (stable by edge index).
    events: Vec<Vec<NeighborEvent>>,
}

impl TemporalNeighborIndex {
    /// Build the index from `g`'s chronological edge list.
    ///
    /// Both endpoints of every edge are indexed: models that treat the graph
    /// as an interaction stream (TGAT, TGN) see an edge as an event for source
    /// and target alike.
    pub fn new(g: &mut Ctdn) -> Self {
        let mut events: Vec<Vec<NeighborEvent>> = vec![Vec::new(); g.num_nodes()];
        for (i, e) in g.edges_chronological().iter().enumerate() {
            events[e.dst].push(NeighborEvent { neighbor: e.src, time: e.time, edge_idx: i, incoming: true });
            if e.src != e.dst {
                events[e.src].push(NeighborEvent { neighbor: e.dst, time: e.time, edge_idx: i, incoming: false });
            }
        }
        // Edges were visited chronologically, so each list is already sorted.
        Self { events }
    }

    /// Build indices for many graphs on the worker pool.
    ///
    /// Each build is independent, so results are identical to calling
    /// [`Self::new`] in a loop and come back in input order at any
    /// `TPGNN_THREADS`.
    pub fn new_many(graphs: &mut [crate::Ctdn]) -> Vec<Self> {
        tpgnn_par::map_mut(graphs, || (), |_, _i, g| Self::new(g))
    }

    /// All interactions of `v`, chronological.
    pub fn events(&self, v: usize) -> &[NeighborEvent] {
        &self.events[v]
    }

    /// The `k` most recent interactions of `v` strictly before time `t`,
    /// most recent first.
    pub fn recent_before(&self, v: usize, t: f64, k: usize) -> Vec<NeighborEvent> {
        let evs = &self.events[v];
        // Find the first event with time >= t.
        let cut = evs.partition_point(|e| e.time < t);
        let out: Vec<NeighborEvent> = evs[..cut].iter().rev().take(k).copied().collect();
        queries().inc();
        events_returned().add(out.len() as u64);
        out
    }

    /// The `k` most recent *incoming* interactions of `v` strictly before `t`
    /// (information-flow neighbors), most recent first.
    pub fn recent_incoming_before(&self, v: usize, t: f64, k: usize) -> Vec<NeighborEvent> {
        let evs = &self.events[v];
        let cut = evs.partition_point(|e| e.time < t);
        let out: Vec<NeighborEvent> = evs[..cut]
            .iter()
            .rev()
            .filter(|e| e.incoming)
            .take(k)
            .copied()
            .collect();
        queries().inc();
        events_returned().add(out.len() as u64);
        out
    }

    /// Time of the last interaction of `v` at or before `t`, if any.
    pub fn last_interaction_before(&self, v: usize, t: f64) -> Option<f64> {
        let evs = &self.events[v];
        let cut = evs.partition_point(|e| e.time <= t);
        (cut > 0).then(|| evs[cut - 1].time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ctdn {
        let mut g = Ctdn::with_zero_features(4, 1);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(2, 1, 2.0).unwrap();
        g.try_add_edge(1, 3, 3.0).unwrap();
        g.try_add_edge(0, 1, 4.0).unwrap();
        g
    }

    #[test]
    fn events_indexed_for_both_endpoints() {
        let mut g = sample();
        let idx = TemporalNeighborIndex::new(&mut g);
        assert_eq!(idx.events(1).len(), 4); // three incoming + one outgoing
        assert_eq!(idx.events(0).len(), 2);
        assert_eq!(idx.events(3).len(), 1);
        assert!(idx.events(3)[0].incoming);
    }

    #[test]
    fn recent_before_excludes_boundary() {
        let mut g = sample();
        let idx = TemporalNeighborIndex::new(&mut g);
        let r = idx.recent_before(1, 2.0, 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].neighbor, 0);
        assert_eq!(r[0].time, 1.0);
    }

    #[test]
    fn recent_before_orders_most_recent_first_and_caps_k() {
        let mut g = sample();
        let idx = TemporalNeighborIndex::new(&mut g);
        let r = idx.recent_before(1, 5.0, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].time, 4.0);
        assert_eq!(r[1].time, 3.0);
    }

    #[test]
    fn incoming_filter() {
        let mut g = sample();
        let idx = TemporalNeighborIndex::new(&mut g);
        let r = idx.recent_incoming_before(1, 5.0, 10);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|e| e.incoming));
        assert_eq!(r[0].time, 4.0);
    }

    #[test]
    fn last_interaction_inclusive() {
        let mut g = sample();
        let idx = TemporalNeighborIndex::new(&mut g);
        assert_eq!(idx.last_interaction_before(1, 2.0), Some(2.0));
        assert_eq!(idx.last_interaction_before(1, 0.5), None);
        assert_eq!(idx.last_interaction_before(3, 10.0), Some(3.0));
    }

    #[test]
    fn new_many_matches_sequential() {
        let mut graphs: Vec<Ctdn> = (0..6).map(|_| sample()).collect();
        let sequential: Vec<TemporalNeighborIndex> =
            graphs.clone().iter_mut().map(TemporalNeighborIndex::new).collect();
        let many = tpgnn_par::with_thread_override(4, || {
            TemporalNeighborIndex::new_many(&mut graphs)
        });
        for (a, b) in sequential.iter().zip(&many) {
            for v in 0..4 {
                assert_eq!(a.events(v), b.events(v));
            }
        }
    }

    #[test]
    fn self_loop_indexed_once() {
        let mut g = Ctdn::with_zero_features(2, 1);
        g.try_add_edge(0, 0, 1.0).unwrap();
        let idx = TemporalNeighborIndex::new(&mut g);
        assert_eq!(idx.events(0).len(), 1);
        assert!(idx.events(0)[0].incoming);
    }
}
