//! Snapshot partitioning for discrete DGNN baselines.
//!
//! Discrete DGNNs (AddGraph, TADDY, EvolveGCN, GC-LSTM) "crop every dataset
//! into a series of static snapshots" (Sec. V-D); the paper sets the snapshot
//! size to 5 edges for Forum-java/HDFS and 20 for the trajectory datasets.
//! Each snapshot is the static view of one chronological window of edges.

use crate::ctdn::{Ctdn, TemporalEdge};
use crate::static_view::StaticView;

/// How a CTDN is cut into snapshots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SnapshotSpec {
    /// Fixed number of edges per snapshot (the paper's "snapshot size").
    EdgesPerSnapshot(usize),
    /// Fixed number of snapshots, edges split as evenly as possible.
    Count(usize),
    /// Fixed time-window width.
    TimeWindow(f64),
}

/// One snapshot: the window's edges plus the static adjacency view over the
/// full node set (so snapshots share node indexing).
pub struct Snapshot {
    /// Edges inside this window, chronological.
    pub edges: Vec<TemporalEdge>,
    /// Static structure built from this window's edges only.
    pub view: StaticView,
}

/// Partition `g` into snapshots per `spec`.
///
/// Empty windows of a [`SnapshotSpec::TimeWindow`] split are skipped, so
/// every returned snapshot has at least one edge; graphs with no edges yield
/// an empty vector.
pub fn snapshots(g: &mut Ctdn, spec: SnapshotSpec) -> Vec<Snapshot> {
    let n = g.num_nodes();
    let dim = g.feature_dim();
    let edges = g.edges_chronological().to_vec();
    if edges.is_empty() {
        return Vec::new();
    }
    let windows: Vec<Vec<TemporalEdge>> = match spec {
        SnapshotSpec::EdgesPerSnapshot(k) => {
            assert!(k > 0, "snapshot size must be positive");
            edges.chunks(k).map(<[TemporalEdge]>::to_vec).collect()
        }
        SnapshotSpec::Count(c) => {
            assert!(c > 0, "snapshot count must be positive");
            let per = edges.len().div_ceil(c);
            edges.chunks(per.max(1)).map(<[TemporalEdge]>::to_vec).collect()
        }
        SnapshotSpec::TimeWindow(w) => {
            assert!(w > 0.0, "time window must be positive");
            let t0 = edges[0].time;
            let mut buckets: Vec<Vec<TemporalEdge>> = Vec::new();
            for e in &edges {
                let idx = ((e.time - t0) / w).floor() as usize;
                if buckets.len() <= idx {
                    buckets.resize_with(idx + 1, Vec::new);
                }
                buckets[idx].push(*e);
            }
            buckets.into_iter().filter(|b| !b.is_empty()).collect()
        }
    };
    windows
        .into_iter()
        .map(|edges| {
            let mut sub = Ctdn::with_zero_features(n, dim);
            for e in &edges {
                sub.try_add_edge(e.src, e.dst, e.time)
                    .expect("snapshot edges originate from an already-validated Ctdn");
            }
            let view = StaticView::from_ctdn(&sub);
            Snapshot { edges, view }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(m: usize) -> Ctdn {
        let mut g = Ctdn::with_zero_features(m + 1, 1);
        for i in 0..m {
            g.try_add_edge(i, i + 1, (i + 1) as f64).unwrap();
        }
        g
    }

    #[test]
    fn edges_per_snapshot_partitions_all_edges() {
        let mut g = graph(12);
        let snaps = snapshots(&mut g, SnapshotSpec::EdgesPerSnapshot(5));
        assert_eq!(snaps.len(), 3); // 5 + 5 + 2
        assert_eq!(snaps[0].edges.len(), 5);
        assert_eq!(snaps[2].edges.len(), 2);
        let total: usize = snaps.iter().map(|s| s.edges.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn count_spec_yields_requested_snapshots() {
        let mut g = graph(10);
        let snaps = snapshots(&mut g, SnapshotSpec::Count(4));
        assert!(snaps.len() <= 4 && !snaps.is_empty());
        let total: usize = snaps.iter().map(|s| s.edges.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn time_window_groups_by_time() {
        let mut g = Ctdn::with_zero_features(4, 1);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(1, 2, 1.5).unwrap();
        g.try_add_edge(2, 3, 10.0).unwrap();
        let snaps = snapshots(&mut g, SnapshotSpec::TimeWindow(2.0));
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].edges.len(), 2);
        assert_eq!(snaps[1].edges.len(), 1);
    }

    #[test]
    fn snapshots_preserve_node_universe() {
        let mut g = graph(6);
        let snaps = snapshots(&mut g, SnapshotSpec::EdgesPerSnapshot(3));
        for s in &snaps {
            assert_eq!(s.view.num_nodes(), 7);
        }
        // First snapshot contains only the early chain's structure.
        assert_eq!(snaps[0].view.out_degree(0), 1);
        assert_eq!(snaps[0].view.out_degree(5), 0);
    }

    #[test]
    fn empty_graph_yields_no_snapshots() {
        let mut g = Ctdn::with_zero_features(3, 1);
        assert!(snapshots(&mut g, SnapshotSpec::EdgesPerSnapshot(5)).is_empty());
    }

    #[test]
    fn chronology_maintained_within_and_across() {
        let mut g = graph(9);
        let snaps = snapshots(&mut g, SnapshotSpec::EdgesPerSnapshot(4));
        let mut last = 0.0;
        for s in &snaps {
            for e in &s.edges {
                assert!(e.time >= last);
                last = e.time;
            }
        }
    }
}
