//! Static projections of a CTDN.
//!
//! The four static baselines (Spectral Clustering, GCN, GraphSage, GAT)
//! "ignore the edge timestamps in datasets and treat data as static
//! networks" (Sec. V-D). A [`StaticView`] collapses a CTDN's temporal edges
//! into adjacency structure, optionally symmetrized.

use crate::ctdn::Ctdn;

/// Adjacency-structure snapshot of a CTDN with timestamps discarded.
#[derive(Clone, Debug)]
pub struct StaticView {
    num_nodes: usize,
    /// `out_neighbors[u]` = targets of edges leaving `u` (deduplicated).
    out_neighbors: Vec<Vec<usize>>,
    /// `in_neighbors[v]` = sources of edges entering `v` (deduplicated).
    in_neighbors: Vec<Vec<usize>>,
    /// Multiplicity-weighted adjacency: `weight[u][k]` pairs with
    /// `out_neighbors[u][k]` and counts parallel temporal edges.
    out_weights: Vec<Vec<f32>>,
}

impl StaticView {
    /// Project `g` onto its static directed structure.
    pub fn from_ctdn(g: &Ctdn) -> Self {
        let n = g.num_nodes();
        let mut out: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in g.edges() {
            match out[e.src].iter_mut().find(|(v, _)| *v == e.dst) {
                Some((_, w)) => *w += 1.0,
                None => {
                    out[e.src].push((e.dst, 1.0));
                    inn[e.dst].push(e.src);
                }
            }
        }
        let mut out_neighbors = Vec::with_capacity(n);
        let mut out_weights = Vec::with_capacity(n);
        for adj in out {
            let (vs, ws): (Vec<usize>, Vec<f32>) = adj.into_iter().unzip();
            out_neighbors.push(vs);
            out_weights.push(ws);
        }
        Self { num_nodes: n, out_neighbors, in_neighbors: inn, out_weights }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Deduplicated out-neighbors of `u`.
    pub fn out_neighbors(&self, u: usize) -> &[usize] {
        &self.out_neighbors[u]
    }

    /// Deduplicated in-neighbors of `v`.
    pub fn in_neighbors(&self, v: usize) -> &[usize] {
        &self.in_neighbors[v]
    }

    /// Parallel-edge multiplicities aligned with [`StaticView::out_neighbors`].
    pub fn out_weights(&self, u: usize) -> &[f32] {
        &self.out_weights[u]
    }

    /// Out-degree (distinct targets).
    pub fn out_degree(&self, u: usize) -> usize {
        self.out_neighbors[u].len()
    }

    /// In-degree (distinct sources).
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_neighbors[v].len()
    }

    /// Undirected neighbor lists (union of in and out, deduplicated).
    pub fn undirected_neighbors(&self) -> Vec<Vec<usize>> {
        let mut und: Vec<Vec<usize>> = vec![Vec::new(); self.num_nodes];
        for u in 0..self.num_nodes {
            for &v in &self.out_neighbors[u] {
                if u == v {
                    continue;
                }
                if !und[u].contains(&v) {
                    und[u].push(v);
                }
                if !und[v].contains(&u) {
                    und[v].push(u);
                }
            }
        }
        und
    }

    /// Dense directed adjacency matrix (row = source), multiplicity-weighted
    /// when `weighted`, 0/1 otherwise. Row-major `n × n` buffer.
    pub fn adjacency_dense(&self, weighted: bool) -> Vec<f32> {
        let n = self.num_nodes;
        let mut adj = vec![0.0; n * n];
        for u in 0..n {
            for (k, &v) in self.out_neighbors[u].iter().enumerate() {
                adj[u * n + v] = if weighted { self.out_weights[u][k] } else { 1.0 };
            }
        }
        adj
    }

    /// Dense symmetric (undirected) 0/1 adjacency matrix.
    pub fn adjacency_dense_undirected(&self) -> Vec<f32> {
        let n = self.num_nodes;
        let mut adj = vec![0.0; n * n];
        for u in 0..n {
            for &v in &self.out_neighbors[u] {
                if u != v {
                    adj[u * n + v] = 1.0;
                    adj[v * n + u] = 1.0;
                }
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ctdn {
        let mut g = Ctdn::with_zero_features(4, 1);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(0, 1, 2.0).unwrap(); // parallel temporal edge
        g.try_add_edge(1, 2, 3.0).unwrap();
        g.try_add_edge(3, 2, 4.0).unwrap();
        g
    }

    #[test]
    fn dedup_and_multiplicity() {
        let v = StaticView::from_ctdn(&sample());
        assert_eq!(v.out_neighbors(0), &[1]);
        assert_eq!(v.out_weights(0), &[2.0]);
        assert_eq!(v.out_degree(0), 1);
        assert_eq!(v.in_degree(2), 2);
        assert_eq!(v.in_neighbors(2), &[1, 3]);
    }

    #[test]
    fn dense_matrices() {
        let v = StaticView::from_ctdn(&sample());
        let a = v.adjacency_dense(true);
        assert_eq!(a[1], 2.0); // (0,1) with multiplicity 2
        let b = v.adjacency_dense(false);
        assert_eq!(b[1], 1.0);
        let u = v.adjacency_dense_undirected();
        assert_eq!(u[1], 1.0);
        assert_eq!(u[4], 1.0); // symmetric (1,0)
        assert_eq!(u[0], 0.0); // no self entries
    }

    #[test]
    fn undirected_neighbors_symmetric() {
        let v = StaticView::from_ctdn(&sample());
        let und = v.undirected_neighbors();
        assert!(und[0].contains(&1) && und[1].contains(&0));
        assert!(und[2].contains(&1) && und[2].contains(&3));
        assert_eq!(und[2].len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Ctdn::with_zero_features(3, 1);
        let v = StaticView::from_ctdn(&g);
        assert_eq!(v.out_degree(0), 0);
        assert!(v.adjacency_dense(false).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn self_loop_excluded_from_undirected() {
        let mut g = Ctdn::with_zero_features(2, 1);
        g.try_add_edge(0, 0, 1.0).unwrap();
        g.try_add_edge(0, 1, 2.0).unwrap();
        let v = StaticView::from_ctdn(&g);
        let und = v.undirected_neighbors();
        assert_eq!(und[0], vec![1]);
        let u = v.adjacency_dense_undirected();
        assert_eq!(u[0], 0.0);
    }
}
