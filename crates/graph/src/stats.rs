//! Per-graph structural statistics (feeds the Table I harness).

use crate::ctdn::Ctdn;
use crate::static_view::StaticView;

/// Summary statistics of one CTDN.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|` (nodes that appear on at least one edge).
    pub active_nodes: usize,
    /// Declared node-universe size.
    pub num_nodes: usize,
    /// `|E^T|` (temporal edges, parallel edges counted).
    pub num_edges: usize,
    /// Distinct static (directed) edges.
    pub distinct_edges: usize,
    /// `t_max - t_min`, 0 for graphs with < 2 edges.
    pub time_span: f64,
    /// Number of timestamps shared by more than one edge.
    pub tied_timestamps: usize,
    /// Node feature dimension `q`.
    pub feature_dim: usize,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn compute(g: &mut Ctdn) -> Self {
        let view = StaticView::from_ctdn(g);
        let distinct_edges = (0..g.num_nodes()).map(|u| view.out_degree(u)).sum();
        let span = g.time_span().map_or(0.0, |(a, b)| b - a);
        let edges = g.edges_chronological();
        let mut tied = 0;
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j].time == edges[i].time {
                j += 1;
            }
            if j - i > 1 {
                tied += 1;
            }
            i = j;
        }
        Self {
            active_nodes: g.active_nodes().len(),
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            distinct_edges,
            time_span: span,
            tied_timestamps: tied,
            feature_dim: g.feature_dim(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_graph() {
        let mut g = Ctdn::with_zero_features(5, 3);
        g.try_add_edge(0, 1, 1.0).unwrap();
        g.try_add_edge(0, 1, 2.0).unwrap();
        g.try_add_edge(1, 2, 2.0).unwrap();
        let s = GraphStats::compute(&mut g);
        assert_eq!(s.num_nodes, 5);
        assert_eq!(s.active_nodes, 3);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.distinct_edges, 2);
        assert_eq!(s.time_span, 1.0);
        assert_eq!(s.tied_timestamps, 1);
        assert_eq!(s.feature_dim, 3);
    }

    #[test]
    fn stats_of_empty_graph() {
        let mut g = Ctdn::with_zero_features(2, 1);
        let s = GraphStats::compute(&mut g);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.time_span, 0.0);
        assert_eq!(s.active_nodes, 0);
    }
}
