//! Streaming CTDN ingestion — incremental construction under dirty input.
//!
//! Real event streams (the paper's Gowalla/Brightkite check-ins, HDFS logs)
//! arrive out of order, duplicated, clock-skewed, and occasionally malformed.
//! [`CtdnBuilder`] absorbs such a stream and produces the same
//! chronologically-sorted [`Ctdn`] the batch loader would, degrading
//! gracefully instead of panicking:
//!
//! * a **bounded reorder buffer** holds admitted events until the
//!   **watermark** (max normalized event time seen minus
//!   [`StreamConfig::lateness`]) passes them, then releases them in
//!   chronological order with arrival order preserved for ties;
//! * events arriving behind the watermark are quarantined as
//!   [`RejectReason::LateEvent`];
//! * exact duplicates (same source, target, and normalized time) are dropped
//!   as [`RejectReason::Duplicate`];
//! * per-origin clock skew is corrected by subtracting declared
//!   [`StreamConfig::origin_offsets`]; an origin clock running backwards by
//!   more than [`StreamConfig::clock_tolerance`] yields
//!   [`RejectReason::NonMonotonicClock`];
//! * structurally invalid records become [`RejectReason::Malformed`];
//! * when the buffer is full the chronologically smallest event is released
//!   early, and anything later displaced behind that forced frontier becomes
//!   [`RejectReason::BufferOverflow`].
//!
//! Every rejection lands in the [`QuarantineLog`] with a typed reason, and
//! every decision feeds the `stream.*` counters and histograms in
//! `tpgnn-obs`, so ingestion health is observable alongside training health.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::OnceLock;

use tpgnn_obs::metrics::{self, Counter, Histogram};

use crate::ctdn::{Ctdn, GraphError, NodeFeatures};

/// One raw record offered to the builder: a directed temporal edge plus the
/// logical `origin` that emitted it (a shard, agent, or log file) — the unit
/// of clock-skew normalization and monotonicity checking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamEvent {
    /// Source node index.
    pub src: usize,
    /// Target node index.
    pub dst: usize,
    /// Raw timestamp as emitted (before skew normalization).
    pub time: f64,
    /// Logical emitting source; single-origin streams use `0`.
    pub origin: u32,
}

impl StreamEvent {
    /// An event from the default origin `0`.
    pub fn new(src: usize, dst: usize, time: f64) -> Self {
        Self { src, dst, time, origin: 0 }
    }

    /// An event from an explicit origin.
    pub fn from_origin(src: usize, dst: usize, time: f64, origin: u32) -> Self {
        Self { src, dst, time, origin }
    }
}

/// Reason class of a quarantined event — the payload-free counterpart of
/// [`RejectReason`], used for counting and reconciliation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectKind {
    /// Arrived behind the watermark.
    LateEvent,
    /// Exact duplicate of an already-admitted edge.
    Duplicate,
    /// Origin clock ran backwards beyond tolerance.
    NonMonotonicClock,
    /// Structurally invalid record.
    Malformed,
    /// Displaced behind the forced-release frontier of a full buffer.
    BufferOverflow,
}

impl RejectKind {
    /// Every kind, in quarantine-log summary order.
    pub const ALL: [RejectKind; 5] = [
        RejectKind::LateEvent,
        RejectKind::Duplicate,
        RejectKind::NonMonotonicClock,
        RejectKind::Malformed,
        RejectKind::BufferOverflow,
    ];

    /// Stable snake_case label (used in metrics names and log rendering).
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::LateEvent => "late_event",
            RejectKind::Duplicate => "duplicate",
            RejectKind::NonMonotonicClock => "non_monotonic_clock",
            RejectKind::Malformed => "malformed",
            RejectKind::BufferOverflow => "buffer_overflow",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Why an event was quarantined, with the evidence for the decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// Normalized time fell behind the watermark when the event arrived.
    LateEvent {
        /// The event's normalized time.
        time: f64,
        /// The watermark it fell behind.
        watermark: f64,
    },
    /// Same source, target, and normalized time as an already-admitted edge.
    Duplicate,
    /// The origin's clock ran backwards beyond the configured tolerance.
    NonMonotonicClock {
        /// The event's normalized time.
        time: f64,
        /// The maximum normalized time previously seen from this origin.
        origin_max: f64,
    },
    /// The record is structurally invalid (endpoint out of bounds, or a
    /// timestamp that is not finite and strictly positive after
    /// normalization).
    Malformed(GraphError),
    /// The reorder buffer was full and forced releases moved the output
    /// frontier past this event's time.
    BufferOverflow {
        /// The event's normalized time.
        time: f64,
        /// The forced-release frontier it fell behind.
        frontier: f64,
    },
}

impl RejectReason {
    /// Compact single-line wire encoding with bit-exact float payloads
    /// (inverse of [`from_wire`](Self::from_wire)). Used by the builder
    /// snapshot format and the serving layer's journal frames.
    pub fn to_wire(&self) -> String {
        fmt_reason(self)
    }

    /// Decode [`to_wire`](Self::to_wire) output.
    pub fn from_wire(text: &str) -> Result<Self, String> {
        parse_reason(text)
    }

    /// The payload-free kind of this reason.
    pub fn kind(&self) -> RejectKind {
        match self {
            RejectReason::LateEvent { .. } => RejectKind::LateEvent,
            RejectReason::Duplicate => RejectKind::Duplicate,
            RejectReason::NonMonotonicClock { .. } => RejectKind::NonMonotonicClock,
            RejectReason::Malformed(_) => RejectKind::Malformed,
            RejectReason::BufferOverflow { .. } => RejectKind::BufferOverflow,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::LateEvent { time, watermark } => {
                write!(f, "late event: t={time} behind watermark {watermark}")
            }
            RejectReason::Duplicate => write!(f, "duplicate edge"),
            RejectReason::NonMonotonicClock { time, origin_max } => {
                write!(f, "non-monotonic clock: t={time} after origin max {origin_max}")
            }
            RejectReason::Malformed(e) => write!(f, "malformed: {e}"),
            RejectReason::BufferOverflow { time, frontier } => {
                write!(f, "buffer overflow: t={time} behind forced frontier {frontier}")
            }
        }
    }
}

/// One quarantined event: what arrived, when (arrival sequence number,
/// 1-based), and why it was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuarantinedEvent {
    /// 1-based arrival sequence number of the event within the stream.
    pub seq: u64,
    /// The event as offered (raw, pre-normalization timestamp).
    pub event: StreamEvent,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Every rejected event with its typed reason, plus per-kind counts.
///
/// The log is deterministic for a deterministic input stream: same events in
/// the same order produce an identical log ([`QuarantineLog::render`] is
/// bitwise-stable), which the chaos harness relies on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuarantineLog {
    entries: Vec<QuarantinedEvent>,
    counts: [usize; 5],
}

impl QuarantineLog {
    /// All quarantined events in arrival order.
    pub fn entries(&self) -> &[QuarantinedEvent] {
        &self.entries
    }

    /// Number of quarantined events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of events quarantined with the given reason kind.
    pub fn count(&self, kind: RejectKind) -> usize {
        self.counts[kind.index()]
    }

    /// One-line per-kind summary, e.g. `late_event=2 duplicate=0 ...`.
    pub fn summary(&self) -> String {
        RejectKind::ALL
            .iter()
            .map(|k| format!("{}={}", k.label(), self.count(*k)))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Full deterministic rendering: the summary line followed by one line
    /// per entry. Bitwise-identical for identical input streams.
    pub fn render(&self) -> String {
        let mut out = self.summary();
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "#{} {} src={} dst={} t={} origin={} :: {}\n",
                e.seq,
                e.reason.kind().label(),
                e.event.src,
                e.event.dst,
                e.event.time,
                e.event.origin,
                e.reason
            ));
        }
        out
    }

    /// Rebuild a log from previously recorded entries (deserialization
    /// path of the serving layer's spill/recovery machinery). Per-kind
    /// counts are recomputed from the entries.
    pub fn from_entries(entries: impl IntoIterator<Item = QuarantinedEvent>) -> Self {
        let mut log = Self::default();
        for e in entries {
            log.push(e);
        }
        log
    }

    fn push(&mut self, entry: QuarantinedEvent) {
        self.counts[entry.reason.kind().index()] += 1;
        self.entries.push(entry);
    }
}

/// Configuration of the streaming ingestion path.
///
/// The default is maximally permissive — infinite lateness and tolerance, a
/// generous buffer — so a clean chronological stream reconstructs the batch
/// loader's `Ctdn` exactly. Production configs tighten `lateness` (bounding
/// end-to-end latency) and `clock_tolerance` (catching broken origin clocks).
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Maximum number of events held in the reorder buffer. When full, the
    /// chronologically smallest buffered event is released early.
    pub reorder_capacity: usize,
    /// Allowed lateness in time units: the watermark trails the maximum
    /// normalized time seen by this much. `f64::INFINITY` disables
    /// lateness-based quarantine (the buffer bound still applies).
    pub lateness: f64,
    /// Drop exact duplicate edges (same source, target, normalized time).
    pub dedup: bool,
    /// Declared per-origin clock offsets, subtracted from each event's raw
    /// timestamp on arrival. Origins not listed have offset `0`.
    pub origin_offsets: Vec<(u32, f64)>,
    /// How far an origin's clock may run backwards (in normalized time
    /// units) before the event is quarantined as non-monotonic.
    /// `f64::INFINITY` disables the check.
    pub clock_tolerance: f64,
    /// Record every released event (normalized time, release order) in a
    /// log the caller drains via [`CtdnBuilder::drain_released`]. The
    /// serving layer uses this to advance incremental per-session model
    /// state one step per released edge; batch ingestion leaves it off.
    pub track_releases: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            reorder_capacity: 1024,
            lateness: f64::INFINITY,
            dedup: true,
            origin_offsets: Vec::new(),
            clock_tolerance: f64::INFINITY,
            track_releases: false,
        }
    }
}

/// Per-builder ingestion accounting. The invariant
/// `received == released + quarantined` holds after [`CtdnBuilder::finish`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events offered via [`CtdnBuilder::push`].
    pub received: usize,
    /// Events released into the graph.
    pub released: usize,
    /// Events quarantined.
    pub quarantined: usize,
    /// Events released early because the buffer was full.
    pub forced_releases: usize,
    /// High-water mark of the reorder buffer depth.
    pub max_buffer_depth: usize,
}

/// Result of offering one event to the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Accepted into the reorder buffer (possibly already released).
    Admitted,
    /// Rejected into the quarantine log with this reason kind.
    Quarantined(RejectKind),
}

/// Everything a finished ingestion produces: the reconstructed graph, the
/// quarantine log, and the accounting.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The chronologically-ordered CTDN built from released events.
    pub graph: Ctdn,
    /// Every rejected event with its typed reason.
    pub quarantine: QuarantineLog,
    /// Ingestion accounting.
    pub stats: StreamStats,
}

/// A buffered event keyed by `(normalized time bits, arrival seq)`.
///
/// Normalized times are validated finite and strictly positive before
/// buffering, so their IEEE-754 bit patterns order identically to their
/// values; the arrival sequence breaks ties, preserving the batch loader's
/// stable order for equal timestamps.
#[derive(Clone, Copy, Debug)]
struct Buffered {
    bits: u64,
    seq: u64,
    ev: StreamEvent,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        (self.bits, self.seq) == (other.bits, other.seq)
    }
}

impl Eq for Buffered {}

impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.bits, self.seq).cmp(&(other.bits, other.seq))
    }
}

/// Incremental, out-of-order-tolerant CTDN constructor.
///
/// Feed raw [`StreamEvent`]s via [`push`](CtdnBuilder::push) (in any order);
/// call [`finish`](CtdnBuilder::finish) to flush the reorder buffer and
/// obtain the [`StreamOutcome`]. Ingestion never panics: every problem is a
/// typed entry in the [`QuarantineLog`].
pub struct CtdnBuilder {
    graph: Ctdn,
    cfg: StreamConfig,
    offsets: BTreeMap<u32, f64>,
    buffer: BinaryHeap<Reverse<Buffered>>,
    /// Dedup window: `(time bits, src, dst)` of admitted edges at or ahead
    /// of the release frontier (pruned as the frontier advances, so memory
    /// stays proportional to the reorder window, not the stream).
    seen: BTreeSet<(u64, usize, usize)>,
    origin_max: BTreeMap<u32, f64>,
    log: QuarantineLog,
    stats: StreamStats,
    seq: u64,
    /// Maximum normalized time admitted so far (watermark anchor).
    max_seen: f64,
    /// Largest time already released into the graph.
    frontier: f64,
    /// Released events awaiting [`CtdnBuilder::drain_released`] (only
    /// populated under [`StreamConfig::track_releases`]).
    released_pending: Vec<StreamEvent>,
}

impl CtdnBuilder {
    /// A builder over the nodes described by `features`.
    pub fn new(features: NodeFeatures, cfg: StreamConfig) -> Self {
        let offsets = cfg.origin_offsets.iter().copied().collect();
        Self {
            graph: Ctdn::new(features),
            cfg,
            offsets,
            buffer: BinaryHeap::new(),
            seen: BTreeSet::new(),
            origin_max: BTreeMap::new(),
            log: QuarantineLog::default(),
            stats: StreamStats::default(),
            seq: 0,
            max_seen: f64::NEG_INFINITY,
            frontier: 0.0,
            released_pending: Vec::new(),
        }
    }

    /// A builder over `num_nodes` zero-feature nodes of dimension `dim`.
    pub fn with_zero_features(num_nodes: usize, dim: usize, cfg: StreamConfig) -> Self {
        Self::new(NodeFeatures::zeros(num_nodes, dim), cfg)
    }

    /// The current watermark: `max normalized time seen − lateness`, or
    /// `-∞` before the first admission.
    pub fn watermark(&self) -> f64 {
        self.max_seen - self.cfg.lateness
    }

    /// Current reorder-buffer depth.
    pub fn buffer_depth(&self) -> usize {
        self.buffer.len()
    }

    /// The node features this builder's graph was opened over (what
    /// [`restore`](CtdnBuilder::restore) must be handed back).
    pub fn features(&self) -> &NodeFeatures {
        self.graph.features()
    }

    /// Number of edges released into the graph so far.
    pub fn num_released_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Ingestion accounting so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The quarantine log so far.
    pub fn quarantine(&self) -> &QuarantineLog {
        &self.log
    }

    /// Offer one event. Never panics; rejects land in the quarantine log.
    pub fn push(&mut self, ev: StreamEvent) -> Admission {
        self.seq += 1;
        self.stats.received += 1;
        cells().events.inc();

        // 1. Clock-skew normalization: subtract the declared origin offset.
        let t = ev.time - self.offsets.get(&ev.origin).copied().unwrap_or(0.0);

        // 2. Structural validation of the normalized record.
        let n = self.graph.num_nodes();
        let structural = if ev.src >= n {
            Some(GraphError::EndpointOutOfBounds { endpoint: "source", index: ev.src, num_nodes: n })
        } else if ev.dst >= n {
            Some(GraphError::EndpointOutOfBounds { endpoint: "target", index: ev.dst, num_nodes: n })
        } else if !(t.is_finite() && t > 0.0) {
            Some(GraphError::BadTimestamp { time: t })
        } else {
            None
        };
        if let Some(e) = structural {
            return self.reject(ev, RejectReason::Malformed(e));
        }

        // 3. Per-origin clock monotonicity.
        let omax = self.origin_max.get(&ev.origin).copied().unwrap_or(f64::NEG_INFINITY);
        if t < omax - self.cfg.clock_tolerance {
            return self.reject(ev, RejectReason::NonMonotonicClock { time: t, origin_max: omax });
        }
        if t > omax {
            self.origin_max.insert(ev.origin, t);
        }

        // 4. Lateness: behind the watermark means the reorder window for
        // this timestamp has already closed.
        let wm = self.watermark();
        if t < wm {
            return self.reject(ev, RejectReason::LateEvent { time: t, watermark: wm });
        }

        // 5. Forced-release frontier: a full buffer may have released past
        // this time even though the watermark has not reached it.
        if t < self.frontier {
            return self.reject(ev, RejectReason::BufferOverflow { time: t, frontier: self.frontier });
        }

        // 6. Dedup against the active window.
        if self.cfg.dedup && !self.seen.insert((t.to_bits(), ev.src, ev.dst)) {
            return self.reject(ev, RejectReason::Duplicate);
        }

        // 7. Admit into the bounded reorder buffer.
        self.max_seen = self.max_seen.max(t);
        let b = Buffered { bits: t.to_bits(), seq: self.seq, ev: StreamEvent { time: t, ..ev } };
        if self.cfg.reorder_capacity == 0 {
            // Degenerate passthrough: no reordering at all.
            self.stats.forced_releases += 1;
            self.release(b.ev);
        } else if self.buffer.len() >= self.cfg.reorder_capacity {
            self.stats.forced_releases += 1;
            let release_new = self.buffer.peek().is_none_or(|min| b <= min.0);
            if release_new {
                self.release(b.ev);
            } else {
                let Reverse(out) = self.buffer.pop().expect("buffer non-empty at capacity");
                self.release(out.ev);
                self.buffer.push(Reverse(b));
            }
        } else {
            self.buffer.push(Reverse(b));
        }
        let depth = self.buffer.len();
        self.stats.max_buffer_depth = self.stats.max_buffer_depth.max(depth);
        cells().reorder_depth.record(depth as f64);

        // 8. Release everything the watermark has passed.
        self.drain_watermark();
        Admission::Admitted
    }

    /// Offer many events in order.
    pub fn extend(&mut self, events: impl IntoIterator<Item = StreamEvent>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// Flush the reorder buffer and return the reconstructed graph, the
    /// quarantine log, and the accounting.
    pub fn finish(mut self) -> StreamOutcome {
        self.flush_buffer();
        StreamOutcome { graph: self.graph, quarantine: self.log, stats: self.stats }
    }

    /// Release every buffered event now, regardless of the watermark,
    /// without consuming the builder.
    ///
    /// This is the session-close path of the serving layer: the watermark
    /// has decided the session is over, so the reorder-buffer tail is
    /// drained (in chronological order, arrival order for ties), the
    /// caller advances its incremental state through
    /// [`drain_released`](CtdnBuilder::drain_released), and only then
    /// calls [`finish`](CtdnBuilder::finish) for the outcome.
    pub fn flush_buffer(&mut self) {
        while let Some(Reverse(b)) = self.buffer.pop() {
            self.release(b.ev);
        }
    }

    /// Take the events released since the last call (normalized times, in
    /// release order). Always empty unless
    /// [`StreamConfig::track_releases`] is set.
    pub fn drain_released(&mut self) -> Vec<StreamEvent> {
        std::mem::take(&mut self.released_pending)
    }

    fn drain_watermark(&mut self) {
        let wm = self.watermark();
        while self.buffer.peek().is_some_and(|min| min.0.ev.time <= wm) {
            let Reverse(b) = self.buffer.pop().expect("peeked");
            self.release(b.ev);
        }
    }

    fn release(&mut self, ev: StreamEvent) {
        match self.graph.try_add_edge(ev.src, ev.dst, ev.time) {
            Ok(()) => {
                self.frontier = self.frontier.max(ev.time);
                self.stats.released += 1;
                cells().released.inc();
                if self.max_seen.is_finite() {
                    cells().watermark_lag.record(self.max_seen - ev.time);
                }
                // Prune dedup keys strictly behind the frontier: any future
                // arrival with such a time is rejected (late or overflow)
                // before the dedup check, so the keys can never match again.
                if self.cfg.dedup {
                    self.seen = self.seen.split_off(&(self.frontier.to_bits(), 0, 0));
                }
                if self.cfg.track_releases {
                    self.released_pending.push(ev);
                }
            }
            // Unreachable by construction (events are validated before
            // buffering) — but ingestion must never panic, so a defect here
            // degrades to a quarantine entry instead.
            Err(e) => {
                self.reject(ev, RejectReason::Malformed(e));
            }
        }
    }

    fn reject(&mut self, ev: StreamEvent, reason: RejectReason) -> Admission {
        let kind = reason.kind();
        self.stats.quarantined += 1;
        cells().quarantined.inc();
        cells().by_kind[kind.index()].inc();
        self.log.push(QuarantinedEvent { seq: self.seq, event: ev, reason });
        Admission::Quarantined(kind)
    }

    /// Serialize the complete mid-stream state (graph edges, reorder buffer,
    /// dedup window, per-origin clocks, quarantine log, accounting) to a
    /// deterministic text form.
    ///
    /// Together with [`restore`](CtdnBuilder::restore) this is the spill
    /// path of the serving layer's bounded session memory: a snapshotted
    /// builder restored onto the same features and config behaves bitwise
    /// identically to one that was never spilled, for any suffix of events.
    /// All floats are encoded as IEEE-754 bit patterns, so NaN payloads in
    /// quarantined raw timestamps survive the roundtrip.
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ctdn-builder v1\n");
        let _ = writeln!(
            out,
            "meta {} {} {}",
            self.seq,
            hex64(self.max_seen),
            hex64(self.frontier)
        );
        let _ = writeln!(
            out,
            "stats {} {} {} {} {}",
            self.stats.received,
            self.stats.released,
            self.stats.quarantined,
            self.stats.forced_releases,
            self.stats.max_buffer_depth
        );
        let edges = self.graph.edges();
        let _ = writeln!(out, "edges {}", edges.len());
        for e in edges {
            let _ = writeln!(out, "e {} {} {}", e.src, e.dst, hex64(e.time));
        }
        // The heap iterates in arbitrary order; serialize in release order
        // (time bits, then arrival seq) so the text is deterministic.
        let mut buf: Vec<&Buffered> = self.buffer.iter().map(|r| &r.0).collect();
        buf.sort_by_key(|b| (b.bits, b.seq));
        let _ = writeln!(out, "buffer {}", buf.len());
        for b in buf {
            let _ = writeln!(out, "b {} {} {} {} {}", b.seq, b.ev.src, b.ev.dst, b.bits, b.ev.origin);
        }
        let _ = writeln!(out, "seen {}", self.seen.len());
        for (bits, src, dst) in &self.seen {
            let _ = writeln!(out, "s {bits} {src} {dst}");
        }
        let _ = writeln!(out, "origins {}", self.origin_max.len());
        for (origin, max) in &self.origin_max {
            let _ = writeln!(out, "o {} {}", origin, hex64(*max));
        }
        let _ = writeln!(out, "pending {}", self.released_pending.len());
        for ev in &self.released_pending {
            let _ = writeln!(out, "p {} {} {} {}", ev.src, ev.dst, hex64(ev.time), ev.origin);
        }
        let _ = writeln!(out, "quarantine {}", self.log.entries.len());
        for q in &self.log.entries {
            let _ = writeln!(
                out,
                "q {} {} {} {} {} {}",
                q.seq,
                q.event.src,
                q.event.dst,
                hex64(q.event.time),
                q.event.origin,
                fmt_reason(&q.reason)
            );
        }
        out
    }

    /// Rebuild a builder from [`snapshot`](CtdnBuilder::snapshot) output.
    ///
    /// `features` and `cfg` are supplied by the caller (the serving layer
    /// keeps both per session) rather than serialized — features can be
    /// large, and the config is process state, not stream state. The graph
    /// is reconstructed edge-by-edge without touching ingestion metrics or
    /// stream accounting, which are restored from the snapshot's own
    /// `stats` line instead.
    pub fn restore(features: NodeFeatures, cfg: StreamConfig, text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("builder snapshot: empty text")?;
        if header != "ctdn-builder v1" {
            return Err(format!("builder snapshot: bad header `{header}`"));
        }
        let meta = tagged(lines.next(), "meta", 3)?;
        let stats_line = tagged(lines.next(), "stats", 5)?;

        let mut b = Self::new(features, cfg);
        b.seq = parse_num(meta[0])?;
        b.max_seen = parse_hex64(meta[1])?;
        b.frontier = parse_hex64(meta[2])?;
        b.stats = StreamStats {
            received: parse_num(stats_line[0])?,
            released: parse_num(stats_line[1])?,
            quarantined: parse_num(stats_line[2])?,
            forced_releases: parse_num(stats_line[3])?,
            max_buffer_depth: parse_num(stats_line[4])?,
        };

        for t in section(&mut lines, "edges", "e", 3)? {
            let (src, dst) = (parse_num(&t[0])?, parse_num(&t[1])?);
            let time = parse_hex64(&t[2])?;
            b.graph
                .try_add_edge(src, dst, time)
                .map_err(|e| format!("builder snapshot: invalid edge: {e}"))?;
        }
        for t in section(&mut lines, "buffer", "b", 5)? {
            let bits: u64 = parse_num(&t[3])?;
            let ev = StreamEvent {
                src: parse_num(&t[1])?,
                dst: parse_num(&t[2])?,
                time: f64::from_bits(bits),
                origin: parse_num(&t[4])?,
            };
            b.buffer.push(Reverse(Buffered { bits, seq: parse_num(&t[0])?, ev }));
        }
        for t in section(&mut lines, "seen", "s", 3)? {
            b.seen.insert((parse_num(&t[0])?, parse_num(&t[1])?, parse_num(&t[2])?));
        }
        for t in section(&mut lines, "origins", "o", 2)? {
            b.origin_max.insert(parse_num(&t[0])?, parse_hex64(&t[1])?);
        }
        for t in section(&mut lines, "pending", "p", 4)? {
            b.released_pending.push(StreamEvent {
                src: parse_num(&t[0])?,
                dst: parse_num(&t[1])?,
                time: parse_hex64(&t[2])?,
                origin: parse_num(&t[3])?,
            });
        }
        let mut entries = Vec::new();
        for t in section(&mut lines, "quarantine", "q", 6)? {
            entries.push(QuarantinedEvent {
                seq: parse_num(&t[0])?,
                event: StreamEvent {
                    src: parse_num(&t[1])?,
                    dst: parse_num(&t[2])?,
                    time: parse_hex64(&t[3])?,
                    origin: parse_num(&t[4])?,
                },
                reason: parse_reason(&t[5])?,
            });
        }
        b.log = QuarantineLog::from_entries(entries);
        if b.log.len() != b.stats.quarantined {
            return Err(format!(
                "builder snapshot: quarantine log has {} entries but stats recorded {}",
                b.log.len(),
                b.stats.quarantined
            ));
        }
        Ok(b)
    }
}

/// Bit-exact `f64` wire encoding, local to this crate (the graph layer does
/// not depend on `tpgnn-tensor`, which hosts the shared codec).
fn hex64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex64(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("builder snapshot: bad f64 bits `{tok}`: {e}"))
}

fn parse_num<T: std::str::FromStr>(tok: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    tok.parse().map_err(|e| format!("builder snapshot: bad number `{tok}`: {e}"))
}

/// Expect `line` to be `<tag> <tok0> ... <tokN-1>` and return the tokens.
fn tagged<'a>(line: Option<&'a str>, tag: &str, want: usize) -> Result<Vec<&'a str>, String> {
    let line = line.ok_or_else(|| format!("builder snapshot: missing `{tag}` line"))?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.first() != Some(&tag) || toks.len() != want + 1 {
        return Err(format!("builder snapshot: malformed `{tag}` line `{line}`"));
    }
    Ok(toks[1..].to_vec())
}

/// Read a `<name> <n>` section header followed by `n` lines tagged `item`,
/// each with at least `min` tokens after the tag (the last token may itself
/// contain spaces for reason payloads, so it is returned joined).
fn section<'a>(
    lines: &mut std::str::Lines<'a>,
    name: &str,
    item: &str,
    min: usize,
) -> Result<Vec<Vec<String>>, String> {
    let n: usize = parse_num(tagged(lines.next(), name, 1)?[0])?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| format!("builder snapshot: truncated `{name}` section"))?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.first() != Some(&item) || toks.len() < min + 1 {
            return Err(format!("builder snapshot: malformed `{name}` row `{line}`"));
        }
        let mut row: Vec<String> = toks[1..min].iter().map(|s| s.to_string()).collect();
        row.push(toks[min..].join(" "));
        rows.push(row);
    }
    Ok(rows)
}

fn fmt_reason(r: &RejectReason) -> String {
    match r {
        RejectReason::LateEvent { time, watermark } => {
            format!("late {} {}", hex64(*time), hex64(*watermark))
        }
        RejectReason::Duplicate => "dup".to_string(),
        RejectReason::NonMonotonicClock { time, origin_max } => {
            format!("clock {} {}", hex64(*time), hex64(*origin_max))
        }
        RejectReason::Malformed(GraphError::EndpointOutOfBounds { endpoint, index, num_nodes }) => {
            let side = if *endpoint == "source" { "mal-src" } else { "mal-dst" };
            format!("{side} {index} {num_nodes}")
        }
        RejectReason::Malformed(GraphError::BadTimestamp { time }) => {
            format!("mal-time {}", hex64(*time))
        }
        RejectReason::BufferOverflow { time, frontier } => {
            format!("overflow {} {}", hex64(*time), hex64(*frontier))
        }
    }
}

fn parse_reason(tok: &str) -> Result<RejectReason, String> {
    let parts: Vec<&str> = tok.split_whitespace().collect();
    let want = |n: usize| -> Result<(), String> {
        if parts.len() == n {
            Ok(())
        } else {
            Err(format!("builder snapshot: malformed reason `{tok}`"))
        }
    };
    match parts.first().copied() {
        Some("late") => {
            want(3)?;
            Ok(RejectReason::LateEvent {
                time: parse_hex64(parts[1])?,
                watermark: parse_hex64(parts[2])?,
            })
        }
        Some("dup") => {
            want(1)?;
            Ok(RejectReason::Duplicate)
        }
        Some("clock") => {
            want(3)?;
            Ok(RejectReason::NonMonotonicClock {
                time: parse_hex64(parts[1])?,
                origin_max: parse_hex64(parts[2])?,
            })
        }
        Some(side @ ("mal-src" | "mal-dst")) => {
            want(3)?;
            Ok(RejectReason::Malformed(GraphError::EndpointOutOfBounds {
                endpoint: if side == "mal-src" { "source" } else { "target" },
                index: parse_num(parts[1])?,
                num_nodes: parse_num(parts[2])?,
            }))
        }
        Some("mal-time") => {
            want(2)?;
            Ok(RejectReason::Malformed(GraphError::BadTimestamp { time: parse_hex64(parts[1])? }))
        }
        Some("overflow") => {
            want(3)?;
            Ok(RejectReason::BufferOverflow {
                time: parse_hex64(parts[1])?,
                frontier: parse_hex64(parts[2])?,
            })
        }
        _ => Err(format!("builder snapshot: unknown reason `{tok}`")),
    }
}

struct Cells {
    events: &'static Counter,
    released: &'static Counter,
    quarantined: &'static Counter,
    by_kind: [&'static Counter; 5],
    reorder_depth: &'static Histogram,
    watermark_lag: &'static Histogram,
}

fn cells() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Cells {
        events: metrics::counter("stream.events"),
        released: metrics::counter("stream.released"),
        quarantined: metrics::counter("stream.quarantined"),
        by_kind: [
            metrics::counter("stream.quarantine.late_event"),
            metrics::counter("stream.quarantine.duplicate"),
            metrics::counter("stream.quarantine.non_monotonic_clock"),
            metrics::counter("stream.quarantine.malformed"),
            metrics::counter("stream.quarantine.buffer_overflow"),
        ],
        reorder_depth: metrics::histogram(
            "stream.reorder_depth",
            &metrics::exponential_buckets(1.0, 2.0, 12),
        ),
        watermark_lag: metrics::histogram(
            "stream.watermark_lag",
            &metrics::exponential_buckets(0.125, 2.0, 16),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: usize, dst: usize, t: f64) -> StreamEvent {
        StreamEvent::new(src, dst, t)
    }

    fn times(g: &Ctdn) -> Vec<f64> {
        g.edges().iter().map(|e| e.time).collect()
    }

    #[test]
    fn in_order_stream_reconstructs_direct_loader_graph() {
        let mut direct = Ctdn::with_zero_features(4, 2);
        let mut b = CtdnBuilder::with_zero_features(4, 2, StreamConfig::default());
        for (s, d, t) in [(0, 1, 1.0), (1, 2, 2.0), (1, 3, 2.0), (2, 3, 5.0)] {
            direct.try_add_edge(s, d, t).unwrap();
            assert_eq!(b.push(ev(s, d, t)), Admission::Admitted);
        }
        let out = b.finish();
        assert!(out.quarantine.is_empty());
        assert_eq!(out.graph.edges(), direct.edges());
        assert_eq!(out.graph.features(), direct.features());
        assert_eq!(out.stats.received, 4);
        assert_eq!(out.stats.released, 4);
    }

    #[test]
    fn out_of_order_within_capacity_is_resorted() {
        let mut b = CtdnBuilder::with_zero_features(5, 1, StreamConfig::default());
        for (s, d, t) in [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0), (3, 4, 4.0)] {
            b.push(ev(s, d, t));
        }
        let out = b.finish();
        assert!(out.quarantine.is_empty());
        assert_eq!(times(&out.graph), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ties_keep_arrival_order() {
        let mut b = CtdnBuilder::with_zero_features(4, 1, StreamConfig::default());
        b.push(ev(0, 1, 1.0));
        b.push(ev(0, 2, 1.0));
        b.push(ev(0, 3, 1.0));
        let out = b.finish();
        let dsts: Vec<usize> = out.graph.edges().iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn late_event_is_quarantined_with_watermark_evidence() {
        let cfg = StreamConfig { lateness: 1.0, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(3, 1, cfg);
        b.push(ev(0, 1, 10.0)); // watermark now 9.0
        let adm = b.push(ev(1, 2, 5.0));
        assert_eq!(adm, Admission::Quarantined(RejectKind::LateEvent));
        let out = b.finish();
        assert_eq!(out.quarantine.count(RejectKind::LateEvent), 1);
        let entry = &out.quarantine.entries()[0];
        assert!(matches!(
            entry.reason,
            RejectReason::LateEvent { time, watermark } if time == 5.0 && watermark == 9.0
        ));
        assert_eq!(times(&out.graph), vec![10.0]);
    }

    #[test]
    fn watermark_releases_progressively() {
        let cfg = StreamConfig { lateness: 2.0, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(8, 1, cfg);
        b.push(ev(0, 1, 1.0));
        b.push(ev(1, 2, 2.0));
        assert_eq!(b.stats().released, 0, "watermark 0.0 has released nothing");
        b.push(ev(2, 3, 5.0)); // watermark 3.0 passes t=1,2
        assert_eq!(b.stats().released, 2);
        assert_eq!(b.buffer_depth(), 1);
        let out = b.finish();
        assert_eq!(times(&out.graph), vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn duplicates_are_quarantined() {
        let mut b = CtdnBuilder::with_zero_features(3, 1, StreamConfig::default());
        b.push(ev(0, 1, 1.0));
        assert_eq!(b.push(ev(0, 1, 1.0)), Admission::Quarantined(RejectKind::Duplicate));
        // Same endpoints at a different time is NOT a duplicate.
        assert_eq!(b.push(ev(0, 1, 2.0)), Admission::Admitted);
        let out = b.finish();
        assert_eq!(out.quarantine.count(RejectKind::Duplicate), 1);
        assert_eq!(out.graph.num_edges(), 2);
    }

    #[test]
    fn dedup_can_be_disabled() {
        let cfg = StreamConfig { dedup: false, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(3, 1, cfg);
        b.push(ev(0, 1, 1.0));
        assert_eq!(b.push(ev(0, 1, 1.0)), Admission::Admitted);
        assert_eq!(b.finish().graph.num_edges(), 2);
    }

    #[test]
    fn malformed_records_are_quarantined_not_panicked() {
        let mut b = CtdnBuilder::with_zero_features(3, 1, StreamConfig::default());
        assert_eq!(b.push(ev(9, 1, 1.0)), Admission::Quarantined(RejectKind::Malformed));
        assert_eq!(b.push(ev(0, 7, 1.0)), Admission::Quarantined(RejectKind::Malformed));
        assert_eq!(b.push(ev(0, 1, f64::NAN)), Admission::Quarantined(RejectKind::Malformed));
        assert_eq!(b.push(ev(0, 1, -3.0)), Admission::Quarantined(RejectKind::Malformed));
        assert_eq!(b.push(ev(0, 1, 0.0)), Admission::Quarantined(RejectKind::Malformed));
        let out = b.finish();
        assert_eq!(out.quarantine.count(RejectKind::Malformed), 5);
        assert_eq!(out.stats.received, 5);
        assert_eq!(out.stats.released, 0);
        assert_eq!(out.graph.num_edges(), 0);
    }

    #[test]
    fn non_monotonic_origin_clock_is_caught() {
        let cfg = StreamConfig { clock_tolerance: 0.5, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(4, 1, cfg);
        b.push(StreamEvent::from_origin(0, 1, 10.0, 7));
        // Within tolerance: fine.
        assert_eq!(b.push(StreamEvent::from_origin(1, 2, 9.8, 7)), Admission::Admitted);
        // Beyond tolerance on the same origin: rejected.
        let adm = b.push(StreamEvent::from_origin(2, 3, 4.0, 7));
        assert_eq!(adm, Admission::Quarantined(RejectKind::NonMonotonicClock));
        // A different origin has its own clock.
        assert_eq!(b.push(StreamEvent::from_origin(2, 3, 4.0, 8)), Admission::Admitted);
        let out = b.finish();
        assert_eq!(out.quarantine.count(RejectKind::NonMonotonicClock), 1);
        assert_eq!(times(&out.graph), vec![4.0, 9.8, 10.0]);
    }

    #[test]
    fn declared_skew_offsets_are_normalized_away() {
        let cfg = StreamConfig {
            origin_offsets: vec![(1, 100.0)],
            ..StreamConfig::default()
        };
        let mut b = CtdnBuilder::with_zero_features(4, 1, cfg);
        b.push(StreamEvent::from_origin(0, 1, 1.0, 0));
        b.push(StreamEvent::from_origin(1, 2, 102.0, 1)); // normalized to 2.0
        b.push(StreamEvent::from_origin(2, 3, 3.0, 0));
        let out = b.finish();
        assert!(out.quarantine.is_empty());
        assert_eq!(times(&out.graph), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn buffer_is_bounded_and_overflow_is_typed() {
        let cfg = StreamConfig { reorder_capacity: 4, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(64, 1, cfg);
        // Adversarial: strictly decreasing times. The buffer can only absorb
        // four of them; everything pushed after the frontier advances past
        // its time lands in quarantine as BufferOverflow.
        for i in 0..16usize {
            b.push(ev(i, i + 1, 100.0 - i as f64));
            assert!(b.buffer_depth() <= 4, "buffer exceeded its configured bound");
        }
        let out = b.finish();
        assert!(out.stats.max_buffer_depth <= 4);
        assert_eq!(out.stats.received, 16);
        assert_eq!(out.stats.received, out.stats.released + out.stats.quarantined);
        assert!(out.quarantine.count(RejectKind::BufferOverflow) > 0);
        // Whatever was released is chronologically ordered.
        let ts = times(&out.graph);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_capacity_is_strict_passthrough() {
        let cfg = StreamConfig { reorder_capacity: 0, ..StreamConfig::default() };
        let mut b = CtdnBuilder::with_zero_features(4, 1, cfg);
        b.push(ev(0, 1, 2.0));
        let adm = b.push(ev(1, 2, 1.0));
        assert_eq!(adm, Admission::Quarantined(RejectKind::BufferOverflow));
        let out = b.finish();
        assert_eq!(times(&out.graph), vec![2.0]);
    }

    #[test]
    fn accounting_invariant_holds() {
        let mut b = CtdnBuilder::with_zero_features(8, 1, StreamConfig::default());
        b.extend([ev(0, 1, 1.0), ev(0, 1, 1.0), ev(9, 9, 1.0), ev(1, 2, 3.0)]);
        let out = b.finish();
        assert_eq!(out.stats.received, 4);
        assert_eq!(out.stats.received, out.stats.released + out.stats.quarantined);
        assert_eq!(out.stats.quarantined, out.quarantine.len());
    }

    #[test]
    fn drain_released_reports_releases_in_release_order() {
        let cfg = StreamConfig {
            lateness: 2.0,
            track_releases: true,
            ..StreamConfig::default()
        };
        let mut b = CtdnBuilder::with_zero_features(8, 1, cfg);
        b.push(ev(1, 2, 2.0));
        b.push(ev(0, 1, 1.0));
        assert!(b.drain_released().is_empty(), "watermark 0.0 released nothing");
        b.push(ev(2, 3, 5.0)); // watermark 3.0 → t=1,2 release, resorted
        let first: Vec<f64> = b.drain_released().iter().map(|e| e.time).collect();
        assert_eq!(first, vec![1.0, 2.0]);
        assert!(b.drain_released().is_empty(), "drain consumes the log");
        b.flush_buffer();
        let tail: Vec<f64> = b.drain_released().iter().map(|e| e.time).collect();
        assert_eq!(tail, vec![5.0]);
        // The drained sequence equals the finished graph's edge order.
        let out = b.finish();
        assert_eq!(times(&out.graph), vec![1.0, 2.0, 5.0]);
        assert_eq!(out.stats.received, out.stats.released);
    }

    #[test]
    fn drain_released_is_empty_without_tracking() {
        let mut b = CtdnBuilder::with_zero_features(4, 1, StreamConfig::default());
        b.push(ev(0, 1, 1.0));
        b.flush_buffer();
        assert!(b.drain_released().is_empty());
        assert_eq!(b.finish().stats.released, 1);
    }

    #[test]
    fn flush_buffer_then_finish_matches_plain_finish() {
        let events = [ev(0, 1, 3.0), ev(1, 2, 1.0), ev(2, 3, 2.0)];
        let mut a = CtdnBuilder::with_zero_features(5, 1, StreamConfig::default());
        a.extend(events);
        let mut b = CtdnBuilder::with_zero_features(5, 1, StreamConfig::default());
        b.extend(events);
        b.flush_buffer();
        assert_eq!(b.buffer_depth(), 0);
        let (oa, ob) = (a.finish(), b.finish());
        assert_eq!(oa.graph.edges(), ob.graph.edges());
        assert_eq!(oa.stats, ob.stats);
    }

    #[test]
    fn snapshot_restore_is_bitwise_invisible_mid_stream() {
        let cfg = StreamConfig {
            lateness: 3.0,
            reorder_capacity: 4,
            clock_tolerance: 1.0,
            track_releases: true,
            origin_offsets: vec![(2, 10.0)],
            ..StreamConfig::default()
        };
        let prefix = [
            StreamEvent::from_origin(0, 1, 5.0, 0),
            StreamEvent::from_origin(1, 2, 4.0, 0),
            StreamEvent::from_origin(2, 3, 16.0, 2), // normalized 6.0
            StreamEvent::from_origin(0, 1, 5.0, 0),  // duplicate
            StreamEvent::from_origin(3, 4, f64::NAN, 0), // malformed, NaN payload
            StreamEvent::from_origin(4, 5, 9.0, 0),
        ];
        let suffix = [
            StreamEvent::from_origin(5, 6, 8.0, 0),
            StreamEvent::from_origin(6, 7, 1.0, 0), // late behind watermark
            StreamEvent::from_origin(7, 0, 12.0, 0),
        ];

        let mut live = CtdnBuilder::with_zero_features(8, 1, cfg.clone());
        live.extend(prefix);
        let text = live.snapshot();
        let mut restored =
            CtdnBuilder::restore(NodeFeatures::zeros(8, 1), cfg, &text).unwrap();
        assert_eq!(restored.snapshot(), text, "snapshot of a restore is bitwise-stable");

        for b in [&mut live, &mut restored] {
            b.extend(suffix);
            b.flush_buffer();
        }
        assert_eq!(live.drain_released(), restored.drain_released());
        let (a, b) = (live.finish(), restored.finish());
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.stats, b.stats);
        // NB: not `assert_eq!` on the logs themselves — the NaN-carrying
        // entry makes derived `PartialEq` self-unequal. The deterministic
        // rendering plus the explicit bit check below are the real claim.
        assert_eq!(a.quarantine.render(), b.quarantine.render());
        // The NaN raw timestamp survived with its exact bit pattern.
        let nan_entry = a
            .quarantine
            .entries()
            .iter()
            .find(|e| e.event.time.is_nan())
            .expect("NaN event quarantined");
        let nan_restored = b
            .quarantine
            .entries()
            .iter()
            .find(|e| e.event.time.is_nan())
            .unwrap();
        assert_eq!(nan_entry.event.time.to_bits(), nan_restored.event.time.to_bits());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut b = CtdnBuilder::with_zero_features(3, 1, StreamConfig::default());
        b.extend([ev(0, 1, 1.0), ev(0, 1, 1.0)]);
        let text = b.snapshot();
        let feats = || NodeFeatures::zeros(3, 1);
        assert!(CtdnBuilder::restore(feats(), StreamConfig::default(), "").is_err());
        assert!(CtdnBuilder::restore(feats(), StreamConfig::default(), "wrong v9\n").is_err());
        let truncated = &text[..text.len() / 2];
        assert!(CtdnBuilder::restore(feats(), StreamConfig::default(), truncated).is_err());
        let tampered = text.replacen("quarantine 1", "quarantine 0", 1);
        let err = CtdnBuilder::restore(feats(), StreamConfig::default(), &tampered);
        assert!(err.is_err(), "log/stats disagreement must be caught");
    }

    #[test]
    fn from_entries_recomputes_counts() {
        let log = QuarantineLog::from_entries([
            QuarantinedEvent { seq: 1, event: ev(0, 1, 1.0), reason: RejectReason::Duplicate },
            QuarantinedEvent { seq: 2, event: ev(0, 2, 1.0), reason: RejectReason::Duplicate },
            QuarantinedEvent {
                seq: 3,
                event: ev(0, 3, -1.0),
                reason: RejectReason::Malformed(GraphError::BadTimestamp { time: -1.0 }),
            },
        ]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(RejectKind::Duplicate), 2);
        assert_eq!(log.count(RejectKind::Malformed), 1);
        assert_eq!(log.count(RejectKind::LateEvent), 0);
    }

    #[test]
    fn render_is_deterministic_and_labeled() {
        let run = || {
            let mut b = CtdnBuilder::with_zero_features(3, 1, StreamConfig::default());
            b.extend([ev(0, 1, 1.0), ev(0, 1, 1.0), ev(0, 9, 2.0)]);
            b.finish().quarantine.render()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.starts_with("late_event=0 duplicate=1 non_monotonic_clock=0 malformed=1 buffer_overflow=0"));
        assert!(a.contains("#2 duplicate src=0 dst=1"));
        assert!(a.contains("#3 malformed src=0 dst=9"));
    }
}
