//! Property-based tests for the CTDN substrate.

use proptest::prelude::*;
use tpgnn_graph::influence::valid_path;
use tpgnn_graph::{snapshots, Ctdn, InfluenceAnalysis, SnapshotSpec};

/// Strategy: a random CTDN with up to `n` nodes and `m` edges.
fn ctdn_strategy(n: usize, m: usize) -> impl Strategy<Value = Ctdn> {
    proptest::collection::vec((0..n, 0..n, 1u32..100), 1..=m).prop_map(move |edges| {
        let mut g = Ctdn::with_zero_features(n, 2);
        for (s, d, t) in edges {
            g.add_edge(s, d, f64::from(t));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The constructive path search and the influence sweep must agree on
    /// every node pair — this is the combinatorial half of Theorem 1.
    #[test]
    fn influence_iff_valid_path(mut g in ctdn_strategy(8, 20)) {
        let inf = InfluenceAnalysis::compute(&mut g);
        for u in 0..8 {
            for v in 0..8 {
                let p = valid_path(&mut g, u, v);
                prop_assert_eq!(
                    p.is_some(),
                    inf.is_influential(u, v),
                    "disagreement for {} -> {}", u, v
                );
                if let Some(path) = p {
                    prop_assert_eq!(path.first().unwrap().src, u);
                    prop_assert_eq!(path.last().unwrap().dst, v);
                    for w in path.windows(2) {
                        prop_assert_eq!(w[0].dst, w[1].src);
                        prop_assert!(w[0].time <= w[1].time);
                    }
                }
            }
        }
    }

    /// Influence is monotone: adding a later edge never removes influence.
    #[test]
    fn influence_monotone_under_edge_addition(
        mut g in ctdn_strategy(6, 12),
        src in 0usize..6,
        dst in 0usize..6,
    ) {
        let before = InfluenceAnalysis::compute(&mut g);
        let t_max = g.edges().iter().map(|e| e.time).fold(0.0, f64::max);
        g.add_edge(src, dst, t_max + 1.0);
        let after = InfluenceAnalysis::compute(&mut g);
        for u in 0..6 {
            for v in 0..6 {
                if before.is_influential(u, v) {
                    prop_assert!(after.is_influential(u, v));
                }
            }
        }
    }

    /// Shuffling same-timestamp edges preserves the edge multiset and the
    /// cross-timestamp chronology.
    #[test]
    fn shuffle_preserves_multiset(mut g in ctdn_strategy(6, 15), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut before: Vec<(usize, usize, u64)> = g
            .edges_chronological()
            .iter()
            .map(|e| (e.src, e.dst, e.time.to_bits()))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        g.shuffle_same_timestamp(&mut rng);
        let mut after: Vec<(usize, usize, u64)> = g
            .edges()
            .iter()
            .map(|e| (e.src, e.dst, e.time.to_bits()))
            .collect();
        // Chronological across groups:
        for w in g.edges().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    /// Every snapshot spec partitions the full edge multiset.
    #[test]
    fn snapshots_partition_edges(mut g in ctdn_strategy(6, 18), k in 1usize..7) {
        let m = g.num_edges();
        for spec in [
            SnapshotSpec::EdgesPerSnapshot(k),
            SnapshotSpec::Count(k),
            SnapshotSpec::TimeWindow(k as f64 * 7.5),
        ] {
            let snaps = snapshots(&mut g, spec);
            let total: usize = snaps.iter().map(|s| s.edges.len()).sum();
            prop_assert_eq!(total, m, "spec {:?} lost edges", spec);
        }
    }
}
