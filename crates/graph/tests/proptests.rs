//! Property-based tests for the CTDN substrate, on the in-repo
//! `tpgnn_rng::check` harness. Graphs are generated from a per-case seed
//! printed on failure (reproduce with
//! `TPGNN_PROP_SEED=<seed> cargo test -q <name>`).

use tpgnn_graph::influence::valid_path;
use tpgnn_graph::{snapshots, Ctdn, InfluenceAnalysis, SnapshotSpec};
use tpgnn_rng::{check, Rng, SeedableRng, StdRng};

/// Generator: a random CTDN with up to `n` nodes and 1..=m edges with
/// integer timestamps in [1, 100) (duplicates and self-loops included).
fn gen_ctdn(rng: &mut StdRng, n: usize, m: usize) -> Ctdn {
    let mut g = Ctdn::with_zero_features(n, 2);
    for _ in 0..rng.random_range(1usize..=m) {
        let s = rng.random_range(0..n);
        let d = rng.random_range(0..n);
        let t = rng.random_range(1u32..100);
        g.try_add_edge(s, d, f64::from(t)).unwrap();
    }
    g
}

/// The constructive path search and the influence sweep must agree on
/// every node pair — this is the combinatorial half of Theorem 1.
#[test]
fn influence_iff_valid_path() {
    check::cases(
        "influence_iff_valid_path",
        64,
        |rng| gen_ctdn(rng, 8, 20),
        |g| {
            let mut g = g.clone();
            let inf = InfluenceAnalysis::compute(&mut g);
            for u in 0..8 {
                for v in 0..8 {
                    let p = valid_path(&mut g, u, v);
                    assert_eq!(
                        p.is_some(),
                        inf.is_influential(u, v),
                        "disagreement for {u} -> {v}"
                    );
                    if let Some(path) = p {
                        assert_eq!(path.first().unwrap().src, u);
                        assert_eq!(path.last().unwrap().dst, v);
                        for w in path.windows(2) {
                            assert_eq!(w[0].dst, w[1].src, "path not contiguous");
                            assert!(w[0].time <= w[1].time, "path not chronological");
                        }
                    }
                }
            }
        },
    );
}

/// Influence is monotone: adding a later edge never removes influence.
#[test]
fn influence_monotone_under_edge_addition() {
    check::cases(
        "influence_monotone_under_edge_addition",
        64,
        |rng| (gen_ctdn(rng, 6, 12), rng.random_range(0usize..6), rng.random_range(0usize..6)),
        |(g, src, dst)| {
            let mut g = g.clone();
            let before = InfluenceAnalysis::compute(&mut g);
            let t_max = g.edges().iter().map(|e| e.time).fold(0.0, f64::max);
            g.try_add_edge(*src, *dst, t_max + 1.0).unwrap();
            let after = InfluenceAnalysis::compute(&mut g);
            for u in 0..6 {
                for v in 0..6 {
                    if before.is_influential(u, v) {
                        assert!(
                            after.is_influential(u, v),
                            "adding edge ({src}, {dst}) removed influence {u} -> {v}"
                        );
                    }
                }
            }
        },
    );
}

/// Shuffling same-timestamp edges preserves the edge multiset and the
/// cross-timestamp chronology (the invariant CTDN training relies on —
/// same-timestamp order is arbitrary, cross-timestamp order is not).
#[test]
fn shuffle_preserves_multiset() {
    check::cases(
        "shuffle_preserves_multiset",
        64,
        |rng| (gen_ctdn(rng, 6, 15), rng.random_range(0u64..1000)),
        |(g, seed)| {
            let mut g = g.clone();
            let mut before: Vec<(usize, usize, u64)> = g
                .edges_chronological()
                .iter()
                .map(|e| (e.src, e.dst, e.time.to_bits()))
                .collect();
            let mut rng = StdRng::seed_from_u64(*seed);
            g.shuffle_same_timestamp(&mut rng);
            let mut after: Vec<(usize, usize, u64)> =
                g.edges().iter().map(|e| (e.src, e.dst, e.time.to_bits())).collect();
            // Chronological across groups:
            for w in g.edges().windows(2) {
                assert!(w[0].time <= w[1].time, "shuffle broke chronology");
            }
            before.sort_unstable();
            after.sort_unstable();
            assert_eq!(before, after, "shuffle changed the edge multiset");
        },
    );
}

/// Every snapshot spec partitions the full edge multiset.
#[test]
fn snapshots_partition_edges() {
    check::cases(
        "snapshots_partition_edges",
        64,
        |rng| (gen_ctdn(rng, 6, 18), rng.random_range(1usize..7)),
        |(g, k)| {
            let mut g = g.clone();
            let m = g.num_edges();
            for spec in [
                SnapshotSpec::EdgesPerSnapshot(*k),
                SnapshotSpec::Count(*k),
                SnapshotSpec::TimeWindow(*k as f64 * 7.5),
            ] {
                let snaps = snapshots(&mut g, spec);
                let total: usize = snaps.iter().map(|s| s.edges.len()).sum();
                assert_eq!(total, m, "spec {spec:?} lost edges");
            }
        },
    );
}
