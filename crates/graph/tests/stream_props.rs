//! Property-based tests for the streaming ingestion path
//! ([`CtdnBuilder`]), on the in-repo `tpgnn_rng::check` harness.
//! Reproduce a failing case with `TPGNN_PROP_SEED=<seed> cargo test -q <name>`.

use tpgnn_graph::{
    Admission, Ctdn, CtdnBuilder, NodeFeatures, RejectKind, StreamConfig, StreamEvent,
};
use tpgnn_rng::seq::SliceRandom;
use tpgnn_rng::{check, Rng, StdRng};

const NODES: usize = 12;

/// Generator: a chronological event sequence over `NODES` nodes with
/// strictly increasing timestamps (so reconstruction is exact — no tie
/// permutation ambiguity) and no duplicates.
fn gen_monotone(rng: &mut StdRng, max_len: usize) -> Vec<StreamEvent> {
    let len = rng.random_range(2usize..=max_len);
    let mut t = 0.0f64;
    (0..len)
        .map(|_| {
            t += rng.random_range(0.5..2.0);
            StreamEvent::new(rng.random_range(0..NODES), rng.random_range(0..NODES), t)
        })
        .collect()
}

fn direct(events: &[StreamEvent]) -> Ctdn {
    let mut g = Ctdn::with_zero_features(NODES, 2);
    for ev in events {
        g.try_add_edge(ev.src, ev.dst, ev.time).expect("generator emits valid edges");
    }
    g
}

/// Any permutation that fits in the reorder buffer is fully repaired: the
/// built graph is bitwise identical to loading the events in order, with
/// zero quarantines.
#[test]
fn any_permutation_within_capacity_reconstructs() {
    check::cases_with_rng(
        "any_permutation_within_capacity_reconstructs",
        64,
        |rng| gen_monotone(rng, 40),
        |events, rng| {
            let mut shuffled = events.clone();
            shuffled.shuffle(rng);
            let cfg = StreamConfig { reorder_capacity: events.len(), ..StreamConfig::default() };
            let mut b = CtdnBuilder::with_zero_features(NODES, 2, cfg);
            b.extend(shuffled.iter().copied());
            let out = b.finish();
            assert!(out.quarantine.is_empty(), "{}", out.quarantine.render());
            let mut got = out.graph;
            let mut want = direct(events);
            assert_eq!(got.edges_chronological(), want.edges_chronological());
        },
    );
}

/// An event held back beyond the lateness bound is quarantined as exactly
/// one `LateEvent`; everything else is released untouched.
#[test]
fn beyond_window_stragglers_are_typed_late() {
    check::cases_with_rng(
        "beyond_window_stragglers_are_typed_late",
        64,
        |rng| gen_monotone(rng, 40),
        |events, rng| {
            let lateness = 1.0;
            let t_max = events.last().expect("non-empty").time;
            // Pick a straggler provably behind the final watermark.
            let eligible: Vec<usize> = (0..events.len())
                .filter(|&i| events[i].time < t_max - lateness - 1e-9)
                .collect();
            if eligible.is_empty() {
                return;
            }
            let pick = eligible[rng.random_range(0..eligible.len())];
            let cfg = StreamConfig {
                reorder_capacity: events.len(),
                lateness,
                ..StreamConfig::default()
            };
            let mut b = CtdnBuilder::with_zero_features(NODES, 2, cfg);
            for (i, ev) in events.iter().enumerate() {
                if i != pick {
                    assert!(matches!(b.push(*ev), Admission::Admitted));
                }
            }
            match b.push(events[pick]) {
                Admission::Quarantined(RejectKind::LateEvent) => {}
                other => panic!("straggler admission was {other:?}"),
            }
            let out = b.finish();
            assert_eq!(out.stats.released, events.len() - 1);
            assert_eq!(out.quarantine.count(RejectKind::LateEvent), 1);
            assert_eq!(out.quarantine.len(), 1, "{}", out.quarantine.render());
        },
    );
}

/// Spilling a builder to text and restoring it at an arbitrary point in an
/// adversarial stream (shuffled arrivals, duplicates, malformed records,
/// tight buffer) is bitwise invisible: the restored builder processes the
/// remaining suffix to the identical graph, stats, and quarantine log.
#[test]
fn snapshot_restore_anywhere_is_bitwise_invisible() {
    check::cases_with_rng(
        "snapshot_restore_anywhere_is_bitwise_invisible",
        64,
        |rng| {
            let mut events = gen_monotone(rng, 48);
            // Inject dirt: a duplicate of an early event and a malformed one.
            let dup = events[rng.random_range(0..events.len())];
            events.push(dup);
            events.push(StreamEvent::new(NODES + 3, 0, 1.0));
            events.shuffle(rng);
            let cut = rng.random_range(0..=events.len());
            let cap = rng.random_range(1usize..16);
            (events, cut, cap)
        },
        |(events, cut, cap), _rng| {
            let cfg = StreamConfig {
                reorder_capacity: *cap,
                lateness: 4.0,
                track_releases: true,
                ..StreamConfig::default()
            };
            let mut live = CtdnBuilder::with_zero_features(NODES, 2, cfg.clone());
            live.extend(events[..*cut].iter().copied());
            let text = live.snapshot();
            let mut restored =
                CtdnBuilder::restore(NodeFeatures::zeros(NODES, 2), cfg, &text)
                    .expect("snapshot restores");
            assert_eq!(restored.snapshot(), text);
            for b in [&mut live, &mut restored] {
                b.extend(events[*cut..].iter().copied());
                b.flush_buffer();
            }
            assert_eq!(live.drain_released(), restored.drain_released());
            let (a, b) = (live.finish(), restored.finish());
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.quarantine.render(), b.quarantine.render());
        },
    );
}

/// The reorder buffer never exceeds its configured capacity, no matter how
/// adversarial the arrival order, and the accounting invariant
/// `received == released + quarantined` holds after `finish`.
#[test]
fn buffer_bound_and_accounting_hold_under_any_order() {
    check::cases_with_rng(
        "buffer_bound_and_accounting_hold_under_any_order",
        64,
        |rng| {
            let cap = rng.random_range(1usize..24);
            (gen_monotone(rng, 60), cap)
        },
        |(events, cap), rng| {
            let mut arrival = events.clone();
            arrival.shuffle(rng);
            let cfg = StreamConfig {
                reorder_capacity: *cap,
                dedup: false,
                ..StreamConfig::default()
            };
            let mut b = CtdnBuilder::with_zero_features(NODES, 2, cfg);
            for ev in &arrival {
                b.push(*ev);
                assert!(b.buffer_depth() <= *cap, "depth {} > cap {cap}", b.buffer_depth());
            }
            let out = b.finish();
            assert!(out.stats.max_buffer_depth <= *cap);
            assert_eq!(out.stats.received, arrival.len());
            assert_eq!(out.stats.received, out.stats.released + out.stats.quarantined);
            assert_eq!(out.stats.quarantined, out.quarantine.len());
            // Whatever was released is chronologically ordered.
            let edges = out.graph.edges();
            for w in edges.windows(2) {
                assert!(w[0].time <= w[1].time, "released edges out of order");
            }
        },
    );
}
