//! Attention primitives for the TGAT / TGN / TADDY baselines.

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{ParamStore, Tape, Var};

use crate::linear::Linear;

/// Single-head scaled dot-product attention with learned Q/K/V projections.
///
/// `forward(query (1, d_q), keys (n, d_k), values (n, d_k))` returns the
/// attention-pooled `(1, d_out)` vector. TGAT stacks two of these per layer.
#[derive(Clone, Debug)]
pub struct AttentionHead {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    dim: usize,
}

impl AttentionHead {
    /// Register a head projecting queries of width `query_dim` and keys /
    /// values of width `kv_dim` into `dim`-dimensional spaces.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        query_dim: usize,
        kv_dim: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            wq: Linear::new(store, &format!("{prefix}.q"), query_dim, dim, rng),
            wk: Linear::new(store, &format!("{prefix}.k"), kv_dim, dim, rng),
            wv: Linear::new(store, &format!("{prefix}.v"), kv_dim, dim, rng),
            dim,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Attend from `query` over `keys`/`values` rows.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, query: Var, keys: Var, values: Var) -> Var {
        assert_eq!(query.rows(), 1, "query must be a single row");
        assert_eq!(keys.rows(), values.rows(), "keys/values row mismatch");
        let q = self.wq.forward(tape, store, query); // (1, d)
        let k = self.wk.forward(tape, store, keys); // (n, d)
        let v = self.wv.forward(tape, store, values); // (n, d)
        let kt = tape.transpose(k); // (d, n)
        let scores_raw = tape.matmul(q, kt); // (1, n)
        let scores = tape.scale(scores_raw, 1.0 / (self.dim as f32).sqrt());
        let att = tape.softmax(scores); // (1, n)
        tape.matmul(att, v) // (1, d)
    }
}

/// Multi-head attention: independent heads concatenated and projected.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    heads: Vec<AttentionHead>,
    out: Linear,
}

impl MultiHeadAttention {
    /// Register `num_heads` heads of width `dim / num_heads` each plus the
    /// output projection back to `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `num_heads`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        query_dim: usize,
        kv_dim: usize,
        dim: usize,
        num_heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(num_heads > 0 && dim.is_multiple_of(num_heads), "dim must divide evenly among heads");
        let head_dim = dim / num_heads;
        let heads = (0..num_heads)
            .map(|h| AttentionHead::new(store, &format!("{prefix}.h{h}"), query_dim, kv_dim, head_dim, rng))
            .collect();
        let out = Linear::new(store, &format!("{prefix}.out"), dim, dim, rng);
        Self { heads, out }
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Attend from `query` over `keys`/`values` with every head, concatenate,
    /// and project.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, query: Var, keys: Var, values: Var) -> Var {
        let mut acc: Option<Var> = None;
        for head in &self.heads {
            let h = head.forward(tape, store, query, keys, values);
            acc = Some(match acc {
                None => h,
                Some(prev) => tape.concat_cols(prev, h),
            });
        }
        let cat = acc.expect("at least one head");
        self.out.forward(tape, store, cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;
    use tpgnn_tensor::Tensor;

    #[test]
    fn single_head_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let head = AttentionHead::new(&mut store, "att", 4, 6, 8, &mut rng);
        let mut tape = Tape::new();
        let q = tape.input(Tensor::ones(1, 4));
        let k = tape.input(Tensor::ones(5, 6));
        let v = tape.input(Tensor::ones(5, 6));
        let out = head.forward(&mut tape, &store, q, k, v);
        assert_eq!(out.shape(), (1, 8));
    }

    #[test]
    fn attention_weights_identical_keys_give_uniform_pool() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let head = AttentionHead::new(&mut store, "att", 3, 3, 4, &mut rng);
        let mut tape = Tape::new();
        let q = tape.input(Tensor::row_vector(&[1.0, 0.0, -1.0]));
        // All keys identical -> softmax uniform -> output = projected mean.
        let k = tape.input(Tensor::from_fn(4, 3, |_, j| j as f32 * 0.3));
        let v = tape.input(Tensor::from_fn(4, 3, |i, j| (i + j) as f32 * 0.1));
        let out = head.forward(&mut tape, &store, q, k, v);
        let v_mean = tape.value(v).mean_rows();
        let mut tape2 = Tape::new();
        let vm = tape2.input(v_mean);
        let projected = head.wv.forward(&mut tape2, &store, vm);
        for (a, b) in tape.value(out).data().iter().zip(tape2.value(projected).data()) {
            assert!((a - b).abs() < 1e-4, "uniform attention must equal mean pooling");
        }
    }

    #[test]
    fn attention_prefers_matching_key() {
        // Train-free sanity: the head output changes when the value rows at
        // attended positions change, i.e. attention is not constant.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let head = AttentionHead::new(&mut store, "att", 3, 3, 4, &mut rng);
        let mut tape = Tape::new();
        let q = tape.input(Tensor::row_vector(&[2.0, -1.0, 0.5]));
        let k = tape.input(Tensor::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 0.0 }));
        let v1 = tape.input(Tensor::from_fn(3, 3, |i, _| i as f32));
        let v2 = tape.input(Tensor::from_fn(3, 3, |i, _| (2 - i) as f32));
        let o1 = head.forward(&mut tape, &store, q, k, v1);
        let o2 = head.forward(&mut tape, &store, q, k, v2);
        assert!(tape.value(o1).sub(tape.value(o2)).max_abs() > 1e-5);
    }

    #[test]
    fn multi_head_shapes_and_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(&mut store, "mha", 6, 6, 8, 2, &mut rng);
        assert_eq!(mha.num_heads(), 2);
        let mut tape = Tape::new();
        let q = tape.input(Tensor::ones(1, 6));
        let kv = tape.input(Tensor::from_fn(4, 6, |i, j| ((i * 7 + j) as f32).sin()));
        let out = mha.forward(&mut tape, &store, q, kv, kv);
        assert_eq!(out.shape(), (1, 8));
        let sq = tape.mul(out, out);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        tape.flush_grads(&grads, &mut store);
        let any_grad = store.ids().any(|id| store.grad(id).max_abs() > 0.0);
        assert!(any_grad);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_heads_rejected() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(&mut store, "mha", 4, 4, 7, 2, &mut rng);
    }
}
