//! Inverted dropout for regularizing small-corpus training.
//!
//! The paper does not use dropout, but at this reproduction's deliberately
//! reduced corpus sizes (DESIGN.md §2) the deeper models overfit; dropout
//! is provided as an opt-in regularizer for downstream users.

use tpgnn_rng::rngs::StdRng;
use tpgnn_rng::Rng;
use tpgnn_tensor::{Tape, Tensor, Var};

/// Inverted dropout: during training, zero each element with probability
/// `p` and scale survivors by `1 / (1 - p)` so activations keep their
/// expectation; at evaluation time it is the identity.
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1), got {p}");
        Self { p }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Apply dropout to `x` with a fresh mask from `rng` (training mode).
    ///
    /// The mask is a constant on the tape, so gradients flow only through
    /// the surviving elements — the standard straight-through treatment.
    pub fn forward_train(&self, tape: &mut Tape, x: Var, rng: &mut StdRng) -> Var {
        if self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(x.rows(), x.cols(), |_, _| {
            if rng.random_range(0.0f32..1.0) < keep {
                scale
            } else {
                0.0
            }
        });
        let mask_var = tape.input(mask);
        tape.mul(x, mask_var)
    }

    /// Evaluation mode: the identity.
    pub fn forward_eval(&self, _tape: &mut Tape, x: Var) -> Var {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row_vector(&[1.0, 2.0, 3.0]));
        let y = d.forward_eval(&mut tape, x);
        assert_eq!(tape.value(y).data(), tape.value(x).data());
    }

    #[test]
    fn zero_probability_is_identity_in_training_too() {
        let d = Dropout::new(0.0);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(1);
        let x = tape.input(Tensor::row_vector(&[1.0, -2.0]));
        let y = d.forward_train(&mut tape, x, &mut rng);
        assert_eq!(tape.value(y).data(), &[1.0, -2.0]);
    }

    #[test]
    fn surviving_elements_are_rescaled() {
        let d = Dropout::new(0.5);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(2);
        let x = tape.input(Tensor::ones(1, 64));
        let y = d.forward_train(&mut tape, x, &mut rng);
        for &v in tape.value(y).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
        // Expectation preserved (loose bound over 64 samples).
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.4, "mean = {mean}");
    }

    #[test]
    fn gradients_blocked_at_dropped_elements() {
        let d = Dropout::new(0.5);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(3);
        let x = tape.input(Tensor::ones(1, 32));
        let y = d.forward_train(&mut tape, x, &mut rng);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        let out = tape.value(y).clone();
        for (g, &v) in grads.wrt(x).data().iter().zip(out.data()) {
            if v == 0.0 {
                assert_eq!(*g, 0.0, "dropped element must receive zero gradient");
            } else {
                assert!(*g > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_rejected() {
        let _ = Dropout::new(1.0);
    }
}
