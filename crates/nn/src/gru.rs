//! Gated Recurrent Unit cell — eqs. 7–10 of the paper.

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// GRU cell with the paper's gating (eqs. 7–10):
///
/// ```text
/// z = σ(W_z x + U_z h + b_z)
/// r = σ(W_r x + U_r h + b_r)
/// ĥ = tanh(W_s x + r ∘ (U_s h) + b_s)
/// h' = z ∘ h + (1 - z) ∘ ĥ
/// ```
///
/// Used twice in TP-GNN: as the node-feature updater of temporal
/// propagation (eq. 6) and as the sequence model of the global temporal
/// embedding extractor (Sec. IV-C).
#[derive(Clone, Debug)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    ws: ParamId,
    us: ParamId,
    bs: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Register a new cell's parameters under `prefix` in `store`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        let reg_w = |name: &str, r: usize, c: usize, rng: &mut StdRng, store: &mut ParamStore| {
            store.register(format!("{prefix}.{name}"), init::xavier_uniform(r, c, rng))
        };
        let wz = reg_w("wz", in_dim, hidden, rng, store);
        let uz = reg_w("uz", hidden, hidden, rng, store);
        let wr = reg_w("wr", in_dim, hidden, rng, store);
        let ur = reg_w("ur", hidden, hidden, rng, store);
        let ws = reg_w("ws", in_dim, hidden, rng, store);
        let us = reg_w("us", hidden, hidden, rng, store);
        let bz = store.register(format!("{prefix}.bz"), Tensor::zeros(1, hidden));
        let br = store.register(format!("{prefix}.br"), Tensor::zeros(1, hidden));
        let bs = store.register(format!("{prefix}.bs"), Tensor::zeros(1, hidden));
        Self { wz, uz, bz, wr, ur, br, ws, us, bs, in_dim, hidden }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// A fresh all-zero hidden state on `tape`.
    pub fn zero_state(&self, tape: &mut Tape) -> Var {
        tape.input(Tensor::zeros(1, self.hidden))
    }

    /// One step: `h' = GRU(h, x)` with `h (1, hidden)` and `x (1, in_dim)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, h: Var, x: Var) -> Var {
        assert_eq!(x.cols(), self.in_dim, "GRU input width mismatch");
        assert_eq!(h.cols(), self.hidden, "GRU state width mismatch");
        let wz = tape.param(store, self.wz);
        let uz = tape.param(store, self.uz);
        let bz = tape.param(store, self.bz);
        let wr = tape.param(store, self.wr);
        let ur = tape.param(store, self.ur);
        let br = tape.param(store, self.br);
        let ws = tape.param(store, self.ws);
        let us = tape.param(store, self.us);
        let bs = tape.param(store, self.bs);

        // z = σ(W_z x + U_z h + b_z)                                (eq. 7)
        let xz = tape.matmul(x, wz);
        let hz = tape.matmul(h, uz);
        let zsum = tape.add(xz, hz);
        let zpre = tape.add_row(zsum, bz);
        let z = tape.sigmoid(zpre);

        // r = σ(W_r x + U_r h + b_r)                                (eq. 8)
        let xr = tape.matmul(x, wr);
        let hr = tape.matmul(h, ur);
        let rsum = tape.add(xr, hr);
        let rpre = tape.add_row(rsum, br);
        let r = tape.sigmoid(rpre);

        // ĥ = tanh(W_s x + r ∘ (U_s h) + b_s)                      (eq. 9)
        let xs = tape.matmul(x, ws);
        let hs = tape.matmul(h, us);
        let rhs = tape.mul(r, hs);
        let ssum = tape.add(xs, rhs);
        let spre = tape.add_row(ssum, bs);
        let s_hat = tape.tanh(spre);

        // h' = z ∘ h + (1 - z) ∘ ĥ                                  (eq. 10)
        let keep = tape.mul(z, h);
        let zinv = tape.one_minus(z);
        let update = tape.mul(zinv, s_hat);
        tape.add(keep, update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;
    use tpgnn_tensor::{Adam, Optimizer};

    fn cell(in_dim: usize, hidden: usize, seed: u64) -> (ParamStore, GruCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = GruCell::new(&mut store, "gru", in_dim, hidden, &mut rng);
        (store, cell)
    }

    #[test]
    fn output_shape_and_bounds() {
        let (store, cell) = cell(3, 4, 1);
        let mut tape = Tape::new();
        let h = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::row_vector(&[1.0, -1.0, 0.5]));
        let h1 = cell.forward(&mut tape, &store, h, x);
        assert_eq!(h1.shape(), (1, 4));
        // h' is a convex combination of h (=0) and tanh(..) ∈ (-1, 1).
        assert!(tape.value(h1).data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_keeps_state_bounded_over_steps() {
        let (store, cell) = cell(2, 3, 2);
        let mut tape = Tape::new();
        let mut h = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::zeros(1, 2));
        for _ in 0..50 {
            h = cell.forward(&mut tape, &store, h, x);
        }
        assert!(tape.value(h).data().iter().all(|&v| v.abs() <= 1.0));
        assert!(!tape.value(h).has_non_finite());
    }

    #[test]
    fn state_depends_on_input_order() {
        // The whole point of using a GRU over edge sequences: order matters.
        let (store, cell) = cell(2, 4, 3);
        let a = Tensor::row_vector(&[1.0, 0.0]);
        let b = Tensor::row_vector(&[0.0, 1.0]);
        let run = |first: &Tensor, second: &Tensor| -> Tensor {
            let mut tape = Tape::new();
            let h0 = cell.zero_state(&mut tape);
            let x1 = tape.input(first.clone());
            let x2 = tape.input(second.clone());
            let h1 = cell.forward(&mut tape, &store, h0, x1);
            let h2 = cell.forward(&mut tape, &store, h1, x2);
            tape.value(h2).clone()
        };
        let ab = run(&a, &b);
        let ba = run(&b, &a);
        assert!(ab.sub(&ba).max_abs() > 1e-4, "GRU must be order-sensitive");
    }

    #[test]
    fn learns_to_remember_first_token() {
        // Tiny memory task: output sign of the first input after 4 steps.
        let (mut store, cell) = cell(1, 8, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let head = crate::Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::MAX;
        for step in 0..300 {
            let first = if step % 2 == 0 { 1.0f32 } else { -1.0 };
            let target = if first > 0.0 { 1.0 } else { 0.0 };
            let mut tape = Tape::new();
            let mut h = cell.zero_state(&mut tape);
            for i in 0..4 {
                let x_val = if i == 0 { first } else { 0.0 };
                let x = tape.input(Tensor::scalar(x_val));
                h = cell.forward(&mut tape, &store, h, x);
            }
            let logit = head.forward(&mut tape, &store, h);
            let loss = tape.bce_with_logits(logit, target);
            final_loss = tape.value(loss).item();
            let grads = tape.backward(loss);
            tape.flush_grads(&grads, &mut store);
            opt.step(&mut store);
        }
        assert!(final_loss < 0.1, "GRU failed to learn memory task: loss {final_loss}");
    }

    #[test]
    fn gradients_flow_through_multiple_steps() {
        let (mut store, cell) = cell(2, 3, 6);
        let mut tape = Tape::new();
        let mut h = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::row_vector(&[0.3, -0.7]));
        for _ in 0..5 {
            h = cell.forward(&mut tape, &store, h, x);
        }
        let sq = tape.mul(h, h);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        tape.flush_grads(&grads, &mut store);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(
                store.grad(id).max_abs() > 0.0 || store.name(id).ends_with('b'),
                "no gradient reached {}",
                store.name(id)
            );
        }
    }
}
