//! # tpgnn-nn
//!
//! Neural layers on top of the [`tpgnn_tensor`] autodiff engine:
//!
//! * [`Linear`] — affine projection (node-feature embedding layer, eq. 1;
//!   classifier head, eq. 11),
//! * [`GruCell`] — the paper's GRU (eqs. 7–10), used by both the
//!   temporal-propagation GRU updater and the global temporal embedding
//!   extractor,
//! * [`LstmCell`] — for the GC-LSTM and DyGNN baselines,
//! * [`Time2Vec`] — functional time encoding (eq. 2),
//! * [`Mlp`] — for GraphMixer and prediction heads,
//! * [`AttentionHead`] / [`MultiHeadAttention`] — for TGAT, TGN, TADDY,
//! * [`EdgeAgg`] / [`mean_pool`] — edge aggregation (Sec. IV-C) and *Mean*
//!   graph pooling (Sec. V-D).
//!
//! Every layer follows the same protocol: parameters are registered once in
//! a [`ParamStore`](tpgnn_tensor::ParamStore) at construction, and
//! `forward` re-leases them onto the per-graph [`Tape`](tpgnn_tensor::Tape).

#![warn(missing_docs)]

mod attention;
mod dropout;
mod gru;
mod linear;
mod lstm;
mod mlp;
mod pooling;
mod time2vec;

pub use attention::{AttentionHead, MultiHeadAttention};
pub use dropout::Dropout;
pub use gru::GruCell;
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use mlp::{Activation, Mlp};
pub use pooling::{mean_pool, EdgeAgg};
pub use time2vec::Time2Vec;
