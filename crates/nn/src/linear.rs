//! Fully-connected (affine) layer.

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// `y = x · W + b` with `W ∈ R^{in × out}`, `b ∈ R^{1 × out}`.
///
/// Used for the node-feature embedding layer (eq. 1), classifier heads
/// (eq. 11), and everywhere a projection is needed.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters under `prefix` in `store`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(format!("{prefix}.w"), init::xavier_uniform(in_dim, out_dim, rng));
        let b = store.register(format!("{prefix}.b"), Tensor::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the layer to `x` of shape `(r, in_dim)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        assert_eq!(x.cols(), self.in_dim, "Linear input width mismatch");
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.affine(x, w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    #[test]
    fn shapes_and_determinism() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        assert_eq!((lin.in_dim(), lin.out_dim()), (4, 3));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(2, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(y.shape(), (2, 3));
        // Zero bias at init: y = x W.
        let w = store.value(store.id("l.w").expect("registered"));
        let expect: f32 = (0..4).map(|k| w.get(k, 0)).sum();
        assert!((tape.value(y).get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn gradient_reaches_both_params() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row_vector(&[1.0, -0.5, 2.0]));
        let y = lin.forward(&mut tape, &store, x);
        let sq = tape.mul(y, y);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        tape.flush_grads(&grads, &mut store);
        let wid = store.id("l.w").expect("w");
        let bid = store.id("l.b").expect("b");
        assert!(store.grad(wid).max_abs() > 0.0);
        assert!(store.grad(bid).max_abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn width_mismatch_panics() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(1, 5));
        let _ = lin.forward(&mut tape, &store, x);
    }
}
