//! Long Short-Term Memory cell (used by the GC-LSTM and DyGNN baselines).

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// Hidden and cell state pair of an LSTM.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden state `h (1, hidden)`.
    pub h: Var,
    /// Cell state `c (1, hidden)`.
    pub c: Var,
}

/// Standard LSTM cell:
///
/// ```text
/// i = σ(W_i x + U_i h + b_i)      f = σ(W_f x + U_f h + b_f)
/// o = σ(W_o x + U_o h + b_o)      g = tanh(W_g x + U_g h + b_g)
/// c' = f ∘ c + i ∘ g              h' = o ∘ tanh(c')
/// ```
#[derive(Clone, Debug)]
pub struct LstmCell {
    gates: [(ParamId, ParamId, ParamId); 4], // (W, U, b) for i, f, o, g
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Register a new cell's parameters under `prefix` in `store`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        let gate = |name: &str, rng: &mut StdRng, store: &mut ParamStore| {
            (
                store.register(format!("{prefix}.w{name}"), init::xavier_uniform(in_dim, hidden, rng)),
                store.register(format!("{prefix}.u{name}"), init::xavier_uniform(hidden, hidden, rng)),
                store.register(format!("{prefix}.b{name}"), Tensor::zeros(1, hidden)),
            )
        };
        let gates = [
            gate("i", rng, store),
            gate("f", rng, store),
            gate("o", rng, store),
            gate("g", rng, store),
        ];
        Self { gates, in_dim, hidden }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fresh all-zero `(h, c)` state on `tape`.
    pub fn zero_state(&self, tape: &mut Tape) -> LstmState {
        LstmState {
            h: tape.input(Tensor::zeros(1, self.hidden)),
            c: tape.input(Tensor::zeros(1, self.hidden)),
        }
    }

    fn gate_pre(&self, tape: &mut Tape, store: &ParamStore, idx: usize, h: Var, x: Var) -> Var {
        let (w, u, b) = self.gates[idx];
        let wv = tape.param(store, w);
        let uv = tape.param(store, u);
        let bv = tape.param(store, b);
        let xw = tape.matmul(x, wv);
        let hu = tape.matmul(h, uv);
        let s = tape.add(xw, hu);
        tape.add_row(s, bv)
    }

    /// One step: `(h', c') = LSTM((h, c), x)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, state: LstmState, x: Var) -> LstmState {
        assert_eq!(x.cols(), self.in_dim, "LSTM input width mismatch");
        let i_pre = self.gate_pre(tape, store, 0, state.h, x);
        let f_pre = self.gate_pre(tape, store, 1, state.h, x);
        let o_pre = self.gate_pre(tape, store, 2, state.h, x);
        let g_pre = self.gate_pre(tape, store, 3, state.h, x);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let o = tape.sigmoid(o_pre);
        let g = tape.tanh(g_pre);
        let fc = tape.mul(f, state.c);
        let ig = tape.mul(i, g);
        let c = tape.add(fc, ig);
        let ct = tape.tanh(c);
        let h = tape.mul(o, ct);
        LstmState { h, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    fn cell(in_dim: usize, hidden: usize, seed: u64) -> (ParamStore, LstmCell) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = LstmCell::new(&mut store, "lstm", in_dim, hidden, &mut rng);
        (store, cell)
    }

    #[test]
    fn shapes_and_param_count() {
        let (store, cell) = cell(3, 5, 1);
        assert_eq!(store.len(), 12); // 4 gates × (W, U, b)
        let mut tape = Tape::new();
        let s0 = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::ones(1, 3));
        let s1 = cell.forward(&mut tape, &store, s0, x);
        assert_eq!(s1.h.shape(), (1, 5));
        assert_eq!(s1.c.shape(), (1, 5));
    }

    #[test]
    fn hidden_state_is_bounded() {
        let (store, cell) = cell(2, 4, 2);
        let mut tape = Tape::new();
        let mut s = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::row_vector(&[5.0, -5.0]));
        for _ in 0..30 {
            s = cell.forward(&mut tape, &store, s, x);
        }
        assert!(tape.value(s.h).data().iter().all(|&v| v.abs() <= 1.0));
        assert!(!tape.value(s.c).has_non_finite());
    }

    #[test]
    fn order_sensitivity() {
        let (store, cell) = cell(2, 4, 3);
        let a = Tensor::row_vector(&[1.0, 0.0]);
        let b = Tensor::row_vector(&[0.0, 1.0]);
        let run = |first: &Tensor, second: &Tensor| -> Tensor {
            let mut tape = Tape::new();
            let mut s = cell.zero_state(&mut tape);
            let x1 = tape.input(first.clone());
            let x2 = tape.input(second.clone());
            s = cell.forward(&mut tape, &store, s, x1);
            s = cell.forward(&mut tape, &store, s, x2);
            tape.value(s.h).clone()
        };
        assert!(run(&a, &b).sub(&run(&b, &a)).max_abs() > 1e-4);
    }

    #[test]
    fn gradients_reach_all_gates() {
        let (mut store, cell) = cell(2, 3, 4);
        let mut tape = Tape::new();
        let mut s = cell.zero_state(&mut tape);
        let x = tape.input(Tensor::row_vector(&[0.4, -0.9]));
        for _ in 0..3 {
            s = cell.forward(&mut tape, &store, s, x);
        }
        let sq = tape.mul(s.h, s.h);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        tape.flush_grads(&grads, &mut store);
        let w_ids: Vec<_> = store.ids().filter(|&id| store.name(id).contains(".w")).collect();
        for id in w_ids {
            assert!(store.grad(id).max_abs() > 0.0, "no grad for {}", store.name(id));
        }
    }
}
