//! Multi-layer perceptron (used by the GraphMixer baseline and classifier heads).

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{ParamStore, Tape, Var};

use crate::linear::Linear;

/// Hidden-layer activation of an [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// GELU-free identity (no nonlinearity).
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A stack of [`Linear`] layers with an activation between them (the last
/// layer's output is left raw so it can feed a loss or further layers).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Register an MLP with the given layer widths, e.g. `[16, 32, 1]`
    /// builds two layers `16→32` and `32→1`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        widths: &[usize],
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least one layer");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{prefix}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Apply the stack to `x` of shape `(r, in_dim)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i < last {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;
    use tpgnn_tensor::{Adam, Optimizer, Tensor};

    #[test]
    fn shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 2], Activation::Relu, &mut rng);
        assert_eq!((mlp.in_dim(), mlp.out_dim()), (4, 2));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(3, 4));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(y.shape(), (3, 2));
    }

    #[test]
    fn learns_xor() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(0.05);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..400 {
            for (x, y) in &data {
                let mut tape = Tape::new();
                let xv = tape.input(Tensor::row_vector(x));
                let logit = mlp.forward(&mut tape, &store, xv);
                let loss = tape.bce_with_logits(logit, *y);
                let grads = tape.backward(loss);
                tape.flush_grads(&grads, &mut store);
                opt.step(&mut store);
            }
        }
        for (x, y) in &data {
            let mut tape = Tape::new();
            let xv = tape.input(Tensor::row_vector(x));
            let logit = mlp.forward(&mut tape, &store, xv);
            let p = 1.0 / (1.0 + (-tape.value(logit).item()).exp());
            assert!((p - y).abs() < 0.25, "XOR({x:?}) = {p}, want {y}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn too_few_widths_panics() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Mlp::new(&mut store, "m", &[4], Activation::Relu, &mut rng);
    }
}
