//! Graph pooling — the *Mean* pooling of Sec. V-D and the EdgeAgg methods
//! of Sec. IV-C (from reference [23] of the paper).

use tpgnn_tensor::{Tape, Var};

/// The six EdgeAgg methods of [23]: how two node embeddings combine into one
/// edge embedding. The paper picks *Average* for TP-GNN (Sec. IV-C) and we
/// implement the remaining five as extension ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeAgg {
    /// `(h_u + h_v) / 2` — the paper's default.
    Average,
    /// `h_u ∘ h_v`.
    Hadamard,
    /// `|h_u − h_v|`.
    WeightedL1,
    /// `(h_u − h_v)²` elementwise.
    WeightedL2,
    /// `tanh(h_u + h_v)`.
    Activation,
    /// `h_u ⊕ h_v` (doubles the width).
    Concatenation,
}

impl EdgeAgg {
    /// All six methods.
    pub const ALL: [EdgeAgg; 6] = [
        EdgeAgg::Average,
        EdgeAgg::Hadamard,
        EdgeAgg::WeightedL1,
        EdgeAgg::WeightedL2,
        EdgeAgg::Activation,
        EdgeAgg::Concatenation,
    ];

    /// Output width for node embeddings of width `k`.
    pub fn out_dim(self, k: usize) -> usize {
        match self {
            EdgeAgg::Concatenation => 2 * k,
            _ => k,
        }
    }

    /// Combine the two endpoint embeddings `(1, k)` into one edge embedding.
    pub fn combine(self, tape: &mut Tape, u: Var, v: Var) -> Var {
        match self {
            EdgeAgg::Average => tape.average(u, v),
            EdgeAgg::Hadamard => tape.mul(u, v),
            EdgeAgg::WeightedL1 => {
                let d = tape.sub(u, v);
                tape.abs(d)
            }
            EdgeAgg::WeightedL2 => {
                let d = tape.sub(u, v);
                tape.mul(d, d)
            }
            EdgeAgg::Activation => {
                let s = tape.add(u, v);
                tape.tanh(s)
            }
            EdgeAgg::Concatenation => tape.concat_cols(u, v),
        }
    }
}

/// *Mean* graph pooling: average the per-node embedding rows into one
/// `(1, k)` graph embedding (used to adapt node-level baselines to graph
/// classification, Sec. V-D).
pub fn mean_pool(tape: &mut Tape, node_rows: &[Var]) -> Var {
    assert!(!node_rows.is_empty(), "cannot pool zero nodes");
    let stacked = tape.stack_rows(node_rows);
    tape.mean_rows(stacked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_tensor::{Tape, Tensor};

    fn pair(tape: &mut Tape) -> (Var, Var) {
        let u = tape.input(Tensor::row_vector(&[1.0, -2.0, 3.0]));
        let v = tape.input(Tensor::row_vector(&[3.0, 2.0, -1.0]));
        (u, v)
    }

    #[test]
    fn average_matches_formula() {
        let mut tape = Tape::new();
        let (u, v) = pair(&mut tape);
        let e = EdgeAgg::Average.combine(&mut tape, u, v);
        assert_eq!(tape.value(e).data(), &[2.0, 0.0, 1.0]);
    }

    #[test]
    fn hadamard_and_l1_l2() {
        let mut tape = Tape::new();
        let (u, v) = pair(&mut tape);
        let h = EdgeAgg::Hadamard.combine(&mut tape, u, v);
        assert_eq!(tape.value(h).data(), &[3.0, -4.0, -3.0]);
        let l1 = EdgeAgg::WeightedL1.combine(&mut tape, u, v);
        assert_eq!(tape.value(l1).data(), &[2.0, 4.0, 4.0]);
        let l2 = EdgeAgg::WeightedL2.combine(&mut tape, u, v);
        assert_eq!(tape.value(l2).data(), &[4.0, 16.0, 16.0]);
    }

    #[test]
    fn concat_doubles_width() {
        let mut tape = Tape::new();
        let (u, v) = pair(&mut tape);
        let c = EdgeAgg::Concatenation.combine(&mut tape, u, v);
        assert_eq!(c.shape(), (1, 6));
        assert_eq!(EdgeAgg::Concatenation.out_dim(3), 6);
        assert_eq!(EdgeAgg::Average.out_dim(3), 3);
    }

    #[test]
    fn activation_is_bounded() {
        let mut tape = Tape::new();
        let (u, v) = pair(&mut tape);
        let a = EdgeAgg::Activation.combine(&mut tape, u, v);
        assert!(tape.value(a).data().iter().all(|&x| x.abs() <= 1.0));
    }

    #[test]
    fn symmetric_aggs_commute() {
        let mut tape = Tape::new();
        let (u, v) = pair(&mut tape);
        for agg in [EdgeAgg::Average, EdgeAgg::Hadamard, EdgeAgg::WeightedL1, EdgeAgg::WeightedL2, EdgeAgg::Activation] {
            let a = agg.combine(&mut tape, u, v);
            let b = agg.combine(&mut tape, v, u);
            assert_eq!(tape.value(a).data(), tape.value(b).data(), "{agg:?} must be symmetric");
        }
    }

    #[test]
    fn mean_pool_averages_rows() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::row_vector(&[1.0, 2.0]));
        let b = tape.input(Tensor::row_vector(&[3.0, 6.0]));
        let g = mean_pool(&mut tape, &[a, b]);
        assert_eq!(tape.value(g).data(), &[2.0, 4.0]);
    }
}
