//! Time2Vec functional time encoding — eq. 2 of the paper.

use tpgnn_rng::rngs::StdRng;
use tpgnn_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// Time2Vec (Kazemi et al., 2019): maps a scalar timestamp `t` to
///
/// ```text
/// f(t) = (ω₀ t + φ₀) ⊕ sin(ω t + φ) ∈ R^{d_t}
/// ```
///
/// with one linear component and `d_t - 1` periodic components. TP-GNN uses
/// `d_t = 6` by default (Sec. V-D).
#[derive(Clone, Debug)]
pub struct Time2Vec {
    w0: ParamId,
    phi0: ParamId,
    w: ParamId,
    phi: ParamId,
    dim: usize,
}

impl Time2Vec {
    /// Register a new encoder of output dimension `dim >= 2` under `prefix`.
    pub fn new(store: &mut ParamStore, prefix: &str, dim: usize, rng: &mut StdRng) -> Self {
        assert!(dim >= 2, "Time2Vec needs at least one linear and one periodic component");
        // Periodic frequencies initialized across decades so both fast and
        // slow temporal patterns are representable from the start.
        let freqs = Tensor::from_fn(1, dim - 1, |_, j| {
            let span = (dim - 1).max(1) as f32;
            10.0_f32.powf(-(j as f32) / span)
        });
        let w0 = store.register(format!("{prefix}.w0"), Tensor::scalar(0.1));
        let phi0 = store.register(format!("{prefix}.phi0"), Tensor::zeros(1, 1));
        let w = store.register(format!("{prefix}.w"), freqs);
        let phi = store.register(format!("{prefix}.phi"), init::uniform(1, dim - 1, -0.1, 0.1, rng));
        Self { w0, phi0, w, phi, dim }
    }

    /// Output dimension `d_t`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encode timestamp `t` into a `(1, d_t)` vector on `tape`.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, t: f64) -> Var {
        let tv = tape.scalar_input(t as f32);
        let w0 = tape.param(store, self.w0);
        let phi0 = tape.param(store, self.phi0);
        let w = tape.param(store, self.w);
        let phi = tape.param(store, self.phi);
        // Linear component: ω₀ t + φ₀ (1×1).
        let lin_scaled = tape.mul(tv, w0);
        let lin = tape.add(lin_scaled, phi0);
        // Periodic components: sin(ω t + φ) (1×(d_t-1)); t is 1×1 so the
        // broadcast is a matmul against the 1×(d_t-1) frequency row.
        let tw = tape.matmul(tv, w);
        let pre = tape.add(tw, phi);
        let per = tape.sin(pre);
        tape.concat_cols(lin, per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_rng::SeedableRng;

    fn enc(dim: usize, seed: u64) -> (ParamStore, Time2Vec) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let t2v = Time2Vec::new(&mut store, "t2v", dim, &mut rng);
        (store, t2v)
    }

    #[test]
    fn output_shape_and_bounds() {
        let (store, t2v) = enc(6, 1);
        let mut tape = Tape::new();
        let v = t2v.encode(&mut tape, &store, 3.7);
        assert_eq!(v.shape(), (1, 6));
        // Periodic components are sines.
        for &x in &tape.value(v).data()[1..] {
            assert!(x.abs() <= 1.0);
        }
    }

    #[test]
    fn distinct_times_get_distinct_codes() {
        let (store, t2v) = enc(6, 2);
        let mut tape = Tape::new();
        let a = t2v.encode(&mut tape, &store, 1.0);
        let b = t2v.encode(&mut tape, &store, 2.0);
        let diff = tape.value(a).sub(tape.value(b)).max_abs();
        assert!(diff > 1e-4, "time codes must separate timestamps");
    }

    #[test]
    fn linear_component_is_linear_in_t() {
        let (store, t2v) = enc(4, 3);
        let mut tape = Tape::new();
        let v1 = t2v.encode(&mut tape, &store, 1.0);
        let v2 = t2v.encode(&mut tape, &store, 2.0);
        let v3 = t2v.encode(&mut tape, &store, 3.0);
        let (a, b, c) = (
            tape.value(v1).get(0, 0),
            tape.value(v2).get(0, 0),
            tape.value(v3).get(0, 0),
        );
        assert!(((c - b) - (b - a)).abs() < 1e-5, "first component must be affine in t");
    }

    #[test]
    fn gradients_reach_all_time2vec_params() {
        let (mut store, t2v) = enc(5, 4);
        let mut tape = Tape::new();
        let v = t2v.encode(&mut tape, &store, 2.5);
        let sq = tape.mul(v, v);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        tape.flush_grads(&grads, &mut store);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(store.grad(id).max_abs() > 0.0, "no grad for {}", store.name(id));
        }
    }

    #[test]
    #[should_panic(expected = "at least one linear and one periodic")]
    fn dim_one_rejected() {
        let _ = enc(1, 5);
    }
}
