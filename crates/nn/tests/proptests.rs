//! Property-based tests for the neural layers, on the in-repo
//! `tpgnn_rng::check` harness. Layer parameters are initialized from a
//! per-case seed printed on failure (reproduce with
//! `TPGNN_PROP_SEED=<seed> cargo test -q <name>`).

use tpgnn_nn::{Activation, GruCell, LstmCell, Mlp, Time2Vec};
use tpgnn_rng::{check, Rng, SeedableRng, StdRng};
use tpgnn_tensor::{ParamStore, Tape, Tensor};

fn gen_row(rng: &mut StdRng, cols: usize) -> Tensor {
    Tensor::from_vec(1, cols, check::vec_f32(rng, cols, -2.0, 2.0))
}

/// GRU output is a convex combination of state and tanh candidate, so it
/// always stays inside (-1, 1) when the state does.
#[test]
fn gru_state_stays_bounded() {
    check::cases(
        "gru_state_stays_bounded",
        24,
        |rng| (gen_row(rng, 4), rng.random_range(1usize..12), rng.next_u64()),
        |(x, steps, seed)| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(*seed);
            let cell = GruCell::new(&mut store, "g", 4, 5, &mut rng);
            let mut tape = Tape::new();
            let mut h = cell.zero_state(&mut tape);
            let xv = tape.input(x.clone());
            for _ in 0..*steps {
                h = cell.forward(&mut tape, &store, h, xv);
            }
            assert!(
                tape.value(h).data().iter().all(|v| v.abs() < 1.0),
                "GRU state escaped (-1, 1) after {steps} steps"
            );
            assert!(!tape.value(h).has_non_finite(), "GRU state has NaN/Inf");
        },
    );
}

/// LSTM hidden state is o ∘ tanh(c): bounded by 1 in magnitude.
#[test]
fn lstm_hidden_stays_bounded() {
    check::cases(
        "lstm_hidden_stays_bounded",
        24,
        |rng| (gen_row(rng, 3), rng.random_range(1usize..10), rng.next_u64()),
        |(x, steps, seed)| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(*seed);
            let cell = LstmCell::new(&mut store, "l", 3, 4, &mut rng);
            let mut tape = Tape::new();
            let mut s = cell.zero_state(&mut tape);
            let xv = tape.input(x.clone());
            for _ in 0..*steps {
                s = cell.forward(&mut tape, &store, s, xv);
            }
            assert!(
                tape.value(s.h).data().iter().all(|v| v.abs() <= 1.0),
                "LSTM hidden escaped [-1, 1] after {steps} steps"
            );
            assert!(!tape.value(s.c).has_non_finite(), "LSTM cell state has NaN/Inf");
        },
    );
}

/// Time2Vec periodic components are sines: bounded, and the linear
/// component is exactly affine in t.
#[test]
fn time2vec_structure() {
    check::cases(
        "time2vec_structure",
        24,
        |rng| {
            (rng.random_range(0.0f64..100.0), rng.random_range(0.0f64..100.0), rng.next_u64())
        },
        |(t1, t2, seed)| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(*seed);
            let enc = Time2Vec::new(&mut store, "t", 5, &mut rng);
            let mut tape = Tape::new();
            let a = enc.encode(&mut tape, &store, *t1);
            let b = enc.encode(&mut tape, &store, *t2);
            let mid = enc.encode(&mut tape, &store, (t1 + t2) / 2.0);
            for v in &tape.value(a).data()[1..] {
                assert!(v.abs() <= 1.0 + 1e-6, "periodic component escaped [-1, 1]: {v}");
            }
            // Linear component: f(mid)[0] == (f(t1)[0] + f(t2)[0]) / 2.
            let lin_mid = tape.value(mid).get(0, 0);
            let lin_avg = (tape.value(a).get(0, 0) + tape.value(b).get(0, 0)) / 2.0;
            assert!(
                (lin_mid - lin_avg).abs() < 1e-3 * (1.0 + lin_avg.abs()),
                "linear component not affine: {lin_mid} vs {lin_avg}"
            );
        },
    );
}

/// An identity-activation MLP is an affine map: f(αx) + f((1-α)x) - f(0)
/// equals f(x) (additivity of the linear part around the bias).
#[test]
fn identity_mlp_is_affine() {
    check::cases(
        "identity_mlp_is_affine",
        24,
        |rng| (gen_row(rng, 3), rng.random_range(0.1f32..0.9), rng.next_u64()),
        |(x, alpha, seed)| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(*seed);
            let mlp = Mlp::new(&mut store, "m", &[3, 4, 2], Activation::Identity, &mut rng);
            let mut tape = Tape::new();
            let x1 = tape.input(x.scale(*alpha));
            let x2 = tape.input(x.scale(1.0 - alpha));
            let x0 = tape.input(Tensor::zeros(1, 3));
            let xf = tape.input(x.clone());
            let f1 = mlp.forward(&mut tape, &store, x1);
            let f2 = mlp.forward(&mut tape, &store, x2);
            let f0 = mlp.forward(&mut tape, &store, x0);
            let ff = mlp.forward(&mut tape, &store, xf);
            for k in 0..2 {
                let lhs =
                    tape.value(f1).get(0, k) + tape.value(f2).get(0, k) - tape.value(f0).get(0, k);
                let rhs = tape.value(ff).get(0, k);
                assert!(
                    (lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()),
                    "component {k}: {lhs} vs {rhs}"
                );
            }
        },
    );
}

/// Gradients through a multi-step GRU chain are finite for any input.
#[test]
fn gru_gradients_finite() {
    check::cases(
        "gru_gradients_finite",
        24,
        |rng| (gen_row(rng, 4), rng.next_u64()),
        |(x, seed)| {
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(*seed);
            let cell = GruCell::new(&mut store, "g", 4, 4, &mut rng);
            let mut tape = Tape::new();
            let mut h = cell.zero_state(&mut tape);
            let xv = tape.input(x.clone());
            for _ in 0..6 {
                h = cell.forward(&mut tape, &store, h, xv);
            }
            let sq = tape.mul(h, h);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            tape.flush_grads(&grads, &mut store);
            for id in store.ids().collect::<Vec<_>>() {
                assert!(!store.grad(id).has_non_finite(), "{} grad not finite", store.name(id));
            }
        },
    );
}
