//! Minimal JSON value, writer, and parser.
//!
//! The hermetic-build policy (README: no registry dependencies) rules out
//! serde, so the observability layer carries its own JSON: a [`Json`] value
//! tree, an escaping writer, and a recursive-descent parser. The parser
//! exists so traces can be *read back* — the snapshot reader
//! ([`crate::reader`]) and the CI trace validator are consumers, and every
//! emitted line is round-trippable by construction.

use std::fmt::Write as _;

/// A JSON value. Integers are kept exact in a dedicated variant so span ids
/// and nanosecond counters survive a round trip bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `{n}` prints integral f64s without a dot; force one so
                    // the value parses back into the same variant.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{n:.1}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing content
/// is an error. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !fractional {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (may be multi-byte).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| format!("unexpected end of string at byte {pos}"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Convenience constructor: an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Num(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.render()).unwrap(), value, "{text} re-render");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("name", Json::from("train.epoch")),
            ("id", Json::from(17u64)),
            ("loss", Json::from(0.25f64)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            ("nested", obj(vec![("ok", Json::Bool(true))])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("id").and_then(Json::as_i64), Some(17));
        assert_eq!(back.get("loss").and_then(Json::as_f64), Some(0.25));
        assert_eq!(
            back.get("nested").and_then(|n| n.get("ok")).and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode é".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Num(3.0);
        assert_eq!(v.render(), "3.0");
        assert_eq!(parse("3.0").unwrap(), v);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "\"unterminated", "12 34", "nul"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn large_u64_degrades_to_num() {
        let v = Json::from(u64::MAX);
        assert!(matches!(v, Json::Num(_)));
        let v = Json::from(123_456u64);
        assert_eq!(v, Json::Int(123_456));
    }
}
