//! # tpgnn-obs
//!
//! Zero-dependency observability for the TP-GNN reproduction. The workspace
//! builds fully offline, so instead of `tracing`/`metrics`/`serde_json`
//! this crate provides, from scratch:
//!
//! * [`trace`] — structured spans and events with monotonic timestamps, a
//!   thread-local span stack, a JSONL sink under `results/trace-<name>.jsonl`
//!   (enabled by the `TPGNN_TRACE` env var) and a human-readable end-of-run
//!   summary,
//! * [`metrics`] — a process-wide registry of counters, gauges, and
//!   fixed-bucket histograms with p50/p95/max snapshots, serialized to JSON
//!   alongside the trace,
//! * [`opprof`] — the lock-free per-op-kind profiler that `tpgnn-tensor`
//!   hooks into its [`Tape`](../tpgnn_tensor/struct.Tape.html), recording
//!   call counts, forward/backward wall time, and output elements allocated,
//! * [`json`] — a minimal JSON value type, writer, and parser shared by the
//!   sinks and the reader,
//! * [`reader`] — a snapshot reader that parses traces back for tests and
//!   the CI smoke check (strict and lossy variants — a live trace file can
//!   end mid-line),
//! * [`snapshot`] — live telemetry: windowed metrics deltas appended as a
//!   JSONL time series plus a Prometheus-style exposition file atomically
//!   replaced each tick, driven by an explicit writer or a ticker thread,
//! * [`vfs`] — the fault-injectable storage layer every durability path
//!   (checkpoints, journals, spills, telemetry files) goes through: a
//!   [`vfs::Vfs`] trait with typed errors, `StdVfs`, a seeded `FaultVfs`
//!   injector with an exact fault ledger, and a retry/backoff wrapper that
//!   feeds the `io.*` counters.
//!
//! Overhead policy: every recording entry point is gated on one relaxed
//! atomic load ([`trace::enabled`] / [`opprof::op_start`]). With tracing
//! disabled nothing allocates, locks, or formats — the training smoke bench
//! must stay within 5% of the checked-in baseline (enforced by CI's bench
//! comparison).
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod opprof;
pub mod reader;
pub mod snapshot;
pub mod trace;
pub mod vfs;

pub use json::Json;
pub use trace::{enabled, event, finish, init, init_to, span, warn, Span};
