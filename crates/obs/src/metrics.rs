//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are registered lazily by name and live for the life of the
//! process (`Box::leak`), so hot paths hold a `&'static` handle and pay one
//! relaxed atomic operation per update — cache the handle in a
//! `std::sync::OnceLock` at the call site to skip the registry lock:
//!
//! ```
//! use std::sync::OnceLock;
//! use tpgnn_obs::metrics::{self, Counter};
//!
//! fn queries() -> &'static Counter {
//!     static C: OnceLock<&'static Counter> = OnceLock::new();
//!     C.get_or_init(|| metrics::counter("doc.example.queries"))
//! }
//! queries().inc();
//! ```
//!
//! Snapshots serialize to JSON (see [`snapshot_json`]) and are written
//! alongside bench results by [`crate::trace::finish`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{obj, Json};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with an implicit overflow bucket.
///
/// `bounds` are inclusive upper bounds: a sample `v` lands in the first
/// bucket with `v <= bound`, or in the overflow bucket past the last bound.
/// Quantile snapshots report the upper bound of the bucket containing the
/// quantile rank (the observed maximum for the overflow bucket), so they are
/// conservative to within one bucket width.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time view of one [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate (bucket upper bound).
    pub p50: f64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: f64,
    /// `(upper_bound, count)` per bucket; the overflow bucket has
    /// `f64::INFINITY` as its bound.
    pub buckets: Vec<(f64, u64)>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loops for the f64 sum and max; contention is negligible at
        // metric-recording rates.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .max_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Snapshot counts and quantile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let max = if count == 0 { 0.0 } else { max };
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return self.bounds.get(i).copied().unwrap_or(max);
                }
            }
            max
        };
        let mut buckets: Vec<(f64, u64)> =
            self.bounds.iter().copied().zip(counts.iter().copied()).collect();
        buckets.push((f64::INFINITY, counts[self.bounds.len()]));
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            buckets,
        }
    }
}

/// `count` strictly increasing bounds starting at `start`, each `factor`
/// times the previous — the usual latency-histogram shape.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter registered under `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock();
    reg.counters.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = lock();
    reg.gauges.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram registered under `name`, creating it with `bounds` on first
/// use (later callers get the existing instance regardless of their bounds).
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = lock();
    reg.histograms.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))))
}

/// Serialize every registered metric to one JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn snapshot_json() -> Json {
    let reg = lock();
    let counters = Json::Obj(
        reg.counters.iter().map(|(k, c)| (k.to_string(), Json::from(c.get()))).collect(),
    );
    let gauges = Json::Obj(
        reg.gauges.iter().map(|(k, g)| (k.to_string(), Json::from(g.get()))).collect(),
    );
    let histograms = Json::Obj(
        reg.histograms
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                let buckets = Json::Arr(
                    s.buckets
                        .iter()
                        .map(|&(le, c)| {
                            obj(vec![
                                ("le", if le.is_finite() { Json::Num(le) } else { Json::Null }),
                                ("count", Json::from(c)),
                            ])
                        })
                        .collect(),
                );
                (
                    k.to_string(),
                    obj(vec![
                        ("count", Json::from(s.count)),
                        ("sum", Json::from(s.sum)),
                        ("max", Json::from(s.max)),
                        ("p50", Json::from(s.p50)),
                        ("p95", Json::from(s.p95)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![("counters", counters), ("gauges", gauges), ("histograms", histograms)])
}

/// One line per non-zero metric, for the end-of-run summary.
pub fn render_summary() -> String {
    let reg = lock();
    let mut out = String::new();
    for (name, c) in &reg.counters {
        if c.get() > 0 {
            out.push_str(&format!("  counter   {name:<40} {}\n", c.get()));
        }
    }
    for (name, g) in &reg.gauges {
        out.push_str(&format!("  gauge     {name:<40} {}\n", g.get()));
    }
    for (name, h) in &reg.histograms {
        let s = h.snapshot();
        if s.count > 0 {
            out.push_str(&format!(
                "  histogram {name:<40} count {} p50 {:.3} p95 {:.3} max {:.3}\n",
                s.count, s.p50, s.p95, s.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let c = counter("test.metrics.counter_once");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.metrics.counter_once").get(), 5);
        let g = gauge("test.metrics.gauge_once");
        g.set(2.5);
        assert_eq!(gauge("test.metrics.gauge_once").get(), 2.5);
    }

    #[test]
    fn histogram_quantiles_track_buckets() {
        let h = histogram("test.metrics.hist_quantiles", &[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 0.7, 1.5, 3.0, 3.5, 7.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.p50, 2.0, "rank-3 sample sits in the (1,2] bucket");
        assert_eq!(s.p95, 8.0);
        assert_eq!(s.max, 7.0);
        assert!((s.sum - 16.2).abs() < 1e-9);
    }

    #[test]
    fn exponential_buckets_shape() {
        let b = exponential_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn snapshot_json_contains_registered_names() {
        counter("test.metrics.json_counter").add(3);
        let j = snapshot_json();
        let c = j.get("counters").and_then(|c| c.get("test.metrics.json_counter"));
        assert!(c.and_then(Json::as_i64).unwrap_or(0) >= 3);
        // The whole snapshot must be valid, parseable JSON.
        assert!(crate::json::parse(&j.render()).is_ok());
    }
}
