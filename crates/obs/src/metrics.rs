//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are registered lazily by name and live for the life of the
//! process (`Box::leak`), so hot paths hold a `&'static` handle and pay one
//! relaxed atomic operation per update — cache the handle in a
//! `std::sync::OnceLock` at the call site to skip the registry lock:
//!
//! ```
//! use std::sync::OnceLock;
//! use tpgnn_obs::metrics::{self, Counter};
//!
//! fn queries() -> &'static Counter {
//!     static C: OnceLock<&'static Counter> = OnceLock::new();
//!     C.get_or_init(|| metrics::counter("doc.example.queries"))
//! }
//! queries().inc();
//! ```
//!
//! Snapshots serialize to JSON (see [`snapshot_json`]) and are written
//! alongside bench results by [`crate::trace::finish`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{obj, Json};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with an implicit overflow bucket.
///
/// `bounds` are inclusive upper bounds: a sample `v` lands in the first
/// bucket with `v <= bound`, or in the overflow bucket past the last bound.
/// Quantile snapshots report the upper bound of the bucket containing the
/// quantile rank (the observed maximum for the overflow bucket), so they are
/// conservative to within one bucket width.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time view of one [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate (bucket upper bound).
    pub p50: f64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: f64,
    /// `(upper_bound, count)` per bucket; the overflow bucket has
    /// `f64::INFINITY` as its bound.
    pub buckets: Vec<(f64, u64)>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loops for the f64 sum and max; contention is negligible at
        // metric-recording rates.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .max_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Snapshot counts and quantile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let max = if count == 0 { 0.0 } else { max };
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return self.bounds.get(i).copied().unwrap_or(max);
                }
            }
            max
        };
        let mut buckets: Vec<(f64, u64)> =
            self.bounds.iter().copied().zip(counts.iter().copied()).collect();
        buckets.push((f64::INFINITY, counts[self.bounds.len()]));
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            buckets,
        }
    }
}

/// `count` strictly increasing bounds starting at `start`, each `factor`
/// times the previous — the usual latency-histogram shape.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter registered under `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock();
    reg.counters.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = lock();
    reg.gauges.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram registered under `name`, creating it with `bounds` on first
/// use (later callers get the existing instance regardless of their bounds).
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = lock();
    reg.histograms.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))))
}

/// Serialize every registered metric to one JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn snapshot_json() -> Json {
    let reg = lock();
    let counters = Json::Obj(
        reg.counters.iter().map(|(k, c)| (k.to_string(), Json::from(c.get()))).collect(),
    );
    let gauges = Json::Obj(
        reg.gauges.iter().map(|(k, g)| (k.to_string(), Json::from(g.get()))).collect(),
    );
    let histograms = Json::Obj(
        reg.histograms
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                let buckets = Json::Arr(
                    s.buckets
                        .iter()
                        .map(|&(le, c)| {
                            obj(vec![
                                ("le", if le.is_finite() { Json::Num(le) } else { Json::Null }),
                                ("count", Json::from(c)),
                            ])
                        })
                        .collect(),
                );
                (
                    k.to_string(),
                    obj(vec![
                        ("count", Json::from(s.count)),
                        ("sum", Json::from(s.sum)),
                        ("max", Json::from(s.max)),
                        ("p50", Json::from(s.p50)),
                        ("p95", Json::from(s.p95)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect(),
    );
    obj(vec![("counters", counters), ("gauges", gauges), ("histograms", histograms)])
}

/// One counter's view over a snapshot window.
#[derive(Clone, Debug)]
pub struct CounterWindow {
    /// Registered metric name.
    pub name: String,
    /// Increments observed since the previous cursor take.
    pub delta: u64,
    /// Cumulative value at the moment of the take.
    pub total: u64,
}

/// One gauge's view over a snapshot window (last-write-wins, no delta).
#[derive(Clone, Debug)]
pub struct GaugeWindow {
    /// Registered metric name.
    pub name: String,
    /// Value at the moment of the take.
    pub value: f64,
}

/// One histogram's view over a snapshot window.
#[derive(Clone, Debug)]
pub struct HistogramWindow {
    /// Registered metric name.
    pub name: String,
    /// Samples recorded since the previous take.
    pub delta_count: u64,
    /// Sum of samples recorded since the previous take (float subtraction:
    /// exact for the integral microsecond values we record, approximate in
    /// general).
    pub delta_sum: f64,
    /// Cumulative sample count at the moment of the take.
    pub total_count: u64,
    /// `(upper_bound, window_count)` per bucket; the overflow bucket has
    /// `f64::INFINITY` as its bound. Bucket deltas are exact (u64
    /// subtraction), so summing windows reproduces the cumulative counts.
    pub bucket_deltas: Vec<(f64, u64)>,
}

impl HistogramWindow {
    /// Quantile estimate over this window only (bucket upper bound at the
    /// ceil-rank, like [`HistogramSnapshot`]). Samples in the overflow
    /// bucket saturate to the last finite bound — windows do not track a
    /// per-window max. Returns 0.0 for an empty window.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.delta_count == 0 {
            return 0.0;
        }
        let rank = (q * self.delta_count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut last_finite = 0.0f64;
        for &(le, c) in &self.bucket_deltas {
            if le.is_finite() {
                last_finite = le;
            }
            seen += c;
            if seen >= rank {
                return if le.is_finite() { le } else { last_finite };
            }
        }
        last_finite
    }

    /// Window samples strictly above `threshold`, counting every bucket
    /// whose range lies past the threshold plus the (partially covered)
    /// bucket containing it — a deliberate overcount of at most one bucket,
    /// so SLO burn rates err toward alerting.
    pub fn count_over(&self, threshold: f64) -> u64 {
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0u64;
        for &(le, c) in &self.bucket_deltas {
            if le > threshold && prev < threshold {
                n += c; // bucket straddles the threshold: counted in full
            } else if prev >= threshold {
                n += c;
            }
            prev = le;
        }
        n
    }
}

/// Everything that changed between two cursor takes — the unit the live
/// snapshot file is built from.
#[derive(Clone, Debug, Default)]
pub struct WindowSnapshot {
    /// 1-based take sequence number (per cursor).
    pub seq: u64,
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterWindow>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<GaugeWindow>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramWindow>,
}

impl WindowSnapshot {
    /// Window delta for the named counter (0 if unregistered).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.delta)
    }

    /// Cumulative total for the named counter (0 if unregistered).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.total)
    }

    /// Current value of the named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Window view of the named histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramWindow> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialize to one JSON object, ready to append as a JSONL line:
    /// `{"seq":..,"counters":{name:{"delta":..,"total":..}},"gauges":{..},`
    /// `"histograms":{name:{"delta_count":..,"delta_sum":..,"total_count":..,`
    /// `"p50":..,"p95":..,"p99":..}}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|c| {
                    (
                        c.name.clone(),
                        obj(vec![("delta", Json::from(c.delta)), ("total", Json::from(c.total))]),
                    )
                })
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges.iter().map(|g| (g.name.clone(), Json::from(g.value))).collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|h| {
                    (
                        h.name.clone(),
                        obj(vec![
                            ("delta_count", Json::from(h.delta_count)),
                            ("delta_sum", Json::from(h.delta_sum)),
                            ("total_count", Json::from(h.total_count)),
                            ("p50", Json::from(h.quantile(0.50))),
                            ("p95", Json::from(h.quantile(0.95))),
                            ("p99", Json::from(h.quantile(0.99))),
                        ]),
                    )
                })
                .collect(),
        );
        obj(vec![
            ("seq", Json::from(self.seq)),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// Remembers the cumulative registry state at the previous take so each
/// [`DeltaCursor::take`] yields only the window since then. Metrics
/// registered between takes appear with their full value as the first delta.
#[derive(Debug, Default)]
pub struct DeltaCursor {
    seq: u64,
    counters: BTreeMap<String, u64>,
    /// name -> (count, sum, per-bucket counts) at the previous take.
    histograms: BTreeMap<String, (u64, f64, Vec<u64>)>,
}

impl DeltaCursor {
    /// A cursor whose first take covers everything since process start.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the registry and return the window since the previous take
    /// (since cursor creation for the first take).
    pub fn take(&mut self) -> WindowSnapshot {
        let reg = lock();
        self.seq += 1;
        let mut out = WindowSnapshot { seq: self.seq, ..WindowSnapshot::default() };
        for (name, c) in &reg.counters {
            let total = c.get();
            let prev = self.counters.insert(name.to_string(), total).unwrap_or(0);
            out.counters.push(CounterWindow {
                name: name.to_string(),
                delta: total.saturating_sub(prev),
                total,
            });
        }
        for (name, g) in &reg.gauges {
            out.gauges.push(GaugeWindow { name: name.to_string(), value: g.get() });
        }
        for (name, h) in &reg.histograms {
            let s = h.snapshot();
            let counts: Vec<u64> = s.buckets.iter().map(|&(_, c)| c).collect();
            let (pc, ps, pb) = self
                .histograms
                .insert(name.to_string(), (s.count, s.sum, counts.clone()))
                .unwrap_or((0, 0.0, vec![0; counts.len()]));
            let bucket_deltas: Vec<(f64, u64)> = s
                .buckets
                .iter()
                .zip(pb.iter().chain(std::iter::repeat(&0)))
                .map(|(&(le, c), &p)| (le, c.saturating_sub(p)))
                .collect();
            out.histograms.push(HistogramWindow {
                name: name.to_string(),
                delta_count: s.count.saturating_sub(pc),
                delta_sum: s.sum - ps,
                total_count: s.count,
                bucket_deltas,
            });
        }
        out
    }
}

/// Mangle a metric name into the Prometheus exposition charset
/// (`[a-zA-Z0-9_:]`): every other byte becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
        .collect()
}

fn prom_num(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Render every registered metric in the Prometheus text exposition format
/// (cumulative values; histogram `_bucket` series are cumulative over `le`
/// as the format requires). The snapshot ticker atomically replaces a
/// `.prom` file with this each tick.
pub fn render_exposition() -> String {
    let reg = lock();
    let mut out = String::new();
    for (name, c) in &reg.counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {}\n", c.get()));
    }
    for (name, g) in &reg.gauges {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", prom_num(g.get())));
    }
    for (name, h) in &reg.histograms {
        let p = prom_name(name);
        let s = h.snapshot();
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let mut cum = 0u64;
        for &(le, c) in &s.buckets {
            cum += c;
            out.push_str(&format!("{p}_bucket{{le=\"{}\"}} {cum}\n", prom_num(le)));
        }
        out.push_str(&format!("{p}_sum {}\n", prom_num(s.sum)));
        out.push_str(&format!("{p}_count {}\n", s.count));
    }
    out
}

/// One line per non-zero metric, for the end-of-run summary.
pub fn render_summary() -> String {
    let reg = lock();
    let mut out = String::new();
    for (name, c) in &reg.counters {
        if c.get() > 0 {
            out.push_str(&format!("  counter   {name:<40} {}\n", c.get()));
        }
    }
    for (name, g) in &reg.gauges {
        out.push_str(&format!("  gauge     {name:<40} {}\n", g.get()));
    }
    for (name, h) in &reg.histograms {
        let s = h.snapshot();
        if s.count > 0 {
            out.push_str(&format!(
                "  histogram {name:<40} count {} p50 {:.3} p95 {:.3} max {:.3}\n",
                s.count, s.p50, s.p95, s.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let c = counter("test.metrics.counter_once");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.metrics.counter_once").get(), 5);
        let g = gauge("test.metrics.gauge_once");
        g.set(2.5);
        assert_eq!(gauge("test.metrics.gauge_once").get(), 2.5);
    }

    #[test]
    fn histogram_quantiles_track_buckets() {
        let h = histogram("test.metrics.hist_quantiles", &[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 0.7, 1.5, 3.0, 3.5, 7.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.p50, 2.0, "rank-3 sample sits in the (1,2] bucket");
        assert_eq!(s.p95, 8.0);
        assert_eq!(s.max, 7.0);
        assert!((s.sum - 16.2).abs() < 1e-9);
    }

    #[test]
    fn exponential_buckets_shape() {
        let b = exponential_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn counter_deltas_telescope_to_total() {
        let c = counter("test.metrics.delta_counter");
        let mut cur = DeltaCursor::new();
        let base = cur.take().counter_total("test.metrics.delta_counter");
        c.add(7);
        let w1 = cur.take();
        c.add(5);
        let w2 = cur.take();
        assert_eq!(w1.counter_delta("test.metrics.delta_counter"), 7);
        assert_eq!(w2.counter_delta("test.metrics.delta_counter"), 5);
        assert_eq!(w2.counter_total("test.metrics.delta_counter"), base + 12);
        assert_eq!(w2.seq, 3);
    }

    #[test]
    fn gauge_windows_are_last_value_not_delta() {
        let g = gauge("test.metrics.delta_gauge");
        let mut cur = DeltaCursor::new();
        g.set(4.0);
        cur.take();
        g.set(1.5);
        g.set(2.5);
        let w = cur.take();
        assert_eq!(w.gauge("test.metrics.delta_gauge"), Some(2.5));
    }

    #[test]
    fn histogram_window_deltas_merge_to_cumulative() {
        let h = histogram("test.metrics.delta_hist", &[1.0, 4.0, 16.0]);
        let mut cur = DeltaCursor::new();
        cur.take();
        let mut windows = Vec::new();
        for chunk in [[0.5, 2.0, 3.0].as_slice(), &[20.0, 0.1], &[8.0]] {
            for &v in chunk {
                h.record(v);
            }
            windows.push(cur.take().histogram("test.metrics.delta_hist").unwrap().clone());
        }
        // Sum of window deltas == cumulative snapshot, bucket by bucket.
        let s = h.snapshot();
        let merged_count: u64 = windows.iter().map(|w| w.delta_count).sum();
        assert_eq!(merged_count, s.count);
        for (i, &(le, c)) in s.buckets.iter().enumerate() {
            let merged: u64 = windows.iter().map(|w| w.bucket_deltas[i].1).sum();
            assert_eq!(merged, c, "bucket le={le} diverged");
        }
        let merged_sum: f64 = windows.iter().map(|w| w.delta_sum).sum();
        assert!((merged_sum - s.sum).abs() < 1e-9);
        // Per-window quantiles see only that window's samples.
        assert_eq!(windows[0].delta_count, 3);
        assert_eq!(windows[0].quantile(0.5), 4.0, "rank-2 of {{0.5,2,3}} is in (1,4]");
        assert_eq!(windows[1].quantile(0.99), 16.0, "overflow saturates to last finite bound");
    }

    #[test]
    fn histogram_window_count_over_threshold() {
        let h = histogram("test.metrics.delta_over", &[1.0, 4.0, 16.0]);
        let mut cur = DeltaCursor::new();
        cur.take();
        for v in [0.5, 2.0, 5.0, 30.0] {
            h.record(v);
        }
        let w = cur.take();
        let hw = w.histogram("test.metrics.delta_over").unwrap();
        // Exact bucket boundary: (1,4] not counted at threshold 4.
        assert_eq!(hw.count_over(4.0), 2);
        // Straddling threshold 3 pulls in the whole (1,4] bucket (overcount).
        assert_eq!(hw.count_over(3.0), 3);
        assert_eq!(hw.count_over(100.0), 1, "overflow bucket straddles everything");
    }

    #[test]
    fn window_snapshot_json_is_parseable() {
        counter("test.metrics.window_json").add(2);
        let mut cur = DeltaCursor::new();
        let j = cur.take().to_json();
        let parsed = crate::json::parse(&j.render()).expect("window json parses");
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("seq").and_then(Json::as_i64).unwrap_or(0) >= 1);
    }

    #[test]
    fn exposition_renders_all_kinds() {
        counter("test.metrics.expo_counter").add(3);
        gauge("test.metrics.expo_gauge").set(1.25);
        histogram("test.metrics.expo_hist", &[1.0, 2.0]).record(1.5);
        let text = render_exposition();
        assert!(text.contains("# TYPE test_metrics_expo_counter counter"));
        assert!(text.contains("# TYPE test_metrics_expo_gauge gauge"));
        assert!(text.contains("test_metrics_expo_gauge 1.25"));
        assert!(text.contains("# TYPE test_metrics_expo_hist histogram"));
        assert!(text.contains("test_metrics_expo_hist_bucket{le=\"+Inf\"}"));
        assert!(text.contains("test_metrics_expo_hist_count"));
        // Buckets are cumulative over le, as the format requires.
        let b1 = text.lines().find(|l| l.contains("expo_hist_bucket{le=\"2\"}")).unwrap();
        assert!(b1.ends_with(" 1"), "cumulative bucket line: {b1}");
    }

    #[test]
    fn snapshot_json_contains_registered_names() {
        counter("test.metrics.json_counter").add(3);
        let j = snapshot_json();
        let c = j.get("counters").and_then(|c| c.get("test.metrics.json_counter"));
        assert!(c.and_then(Json::as_i64).unwrap_or(0) >= 3);
        // The whole snapshot must be valid, parseable JSON.
        assert!(crate::json::parse(&j.render()).is_ok());
    }
}
