//! Fixed-slot op profiler backing the tape instrumentation.
//!
//! `tpgnn-tensor` registers its op-kind name table once via [`configure`],
//! then records one forward sample per tape node pushed and one backward
//! sample per node visited in the reverse sweep. Slots are plain relaxed
//! atomics indexed by op kind, so recording is lock-free; the only branch
//! paid when profiling is off is a single relaxed load in [`op_start`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::json::{obj, Json};

/// Upper bound on distinct op kinds a client may register.
pub const MAX_KINDS: usize = 64;

#[derive(Default)]
struct Slot {
    calls: AtomicU64,
    fwd_ns: AtomicU64,
    bwd_calls: AtomicU64,
    bwd_ns: AtomicU64,
    elems: AtomicU64,
}

struct State {
    enabled: AtomicBool,
    slots: [Slot; MAX_KINDS],
}

static NO_NAME: &str = "?";

fn state() -> &'static State {
    static STATE: std::sync::OnceLock<State> = std::sync::OnceLock::new();
    STATE.get_or_init(|| State {
        enabled: AtomicBool::new(false),
        slots: std::array::from_fn(|_| Slot::default()),
    })
}

static NAME_TABLE: std::sync::Mutex<Option<&'static [&'static str]>> =
    std::sync::Mutex::new(None);

/// Register the op-kind name table. Index `i` in `names` labels kind `i` in
/// every later [`record_forward`]/[`record_backward`] call. Idempotent; at
/// most [`MAX_KINDS`] names are used.
pub fn configure(names: &'static [&'static str]) {
    let mut table = NAME_TABLE.lock().unwrap_or_else(|e| e.into_inner());
    *table = Some(names);
}

/// Turn recording on or off. Off is the default; when off, [`op_start`]
/// returns `None` and the record calls are never reached.
pub fn set_enabled(on: bool) {
    state().enabled.store(on, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
pub fn is_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// `Some(now)` iff profiling is enabled — the one-load fast path that hot
/// code checks before doing any timing work.
#[inline]
pub fn op_start() -> Option<Instant> {
    if state().enabled.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record one forward execution of op `kind`: wall time since `t0` and the
/// number of tensor elements the op allocated for its output.
pub fn record_forward(kind: usize, t0: Instant, out_elems: usize) {
    if kind >= MAX_KINDS {
        return;
    }
    let slot = &state().slots[kind];
    slot.calls.fetch_add(1, Ordering::Relaxed);
    slot.fwd_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    slot.elems.fetch_add(out_elems as u64, Ordering::Relaxed);
}

/// Record one backward visit of op `kind`: wall time since `t0`.
pub fn record_backward(kind: usize, t0: Instant) {
    if kind >= MAX_KINDS {
        return;
    }
    let slot = &state().slots[kind];
    slot.bwd_calls.fetch_add(1, Ordering::Relaxed);
    slot.bwd_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Zero every slot (names and enabled flag are kept).
pub fn reset() {
    for slot in &state().slots {
        slot.calls.store(0, Ordering::Relaxed);
        slot.fwd_ns.store(0, Ordering::Relaxed);
        slot.bwd_calls.store(0, Ordering::Relaxed);
        slot.bwd_ns.store(0, Ordering::Relaxed);
        slot.elems.store(0, Ordering::Relaxed);
    }
}

/// Aggregated totals for one op kind.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Op-kind name from the [`configure`]d table.
    pub name: &'static str,
    /// Forward executions recorded.
    pub calls: u64,
    /// Total forward wall time, nanoseconds.
    pub fwd_ns: u64,
    /// Backward visits recorded.
    pub bwd_calls: u64,
    /// Total backward wall time, nanoseconds.
    pub bwd_ns: u64,
    /// Output tensor elements allocated across all forward calls.
    pub elems: u64,
}

impl OpProfile {
    /// Forward + backward time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }

    /// Serialize one profile row to JSON.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("op", Json::from(self.name)),
            ("calls", Json::from(self.calls)),
            ("fwd_us", Json::from(self.fwd_ns / 1_000)),
            ("bwd_calls", Json::from(self.bwd_calls)),
            ("bwd_us", Json::from(self.bwd_ns / 1_000)),
            ("elems", Json::from(self.elems)),
        ])
    }
}

/// Profiles for every op kind with at least one recorded call, sorted by
/// total (forward + backward) time, hottest first.
pub fn snapshot() -> Vec<OpProfile> {
    let table = *NAME_TABLE.lock().unwrap_or_else(|e| e.into_inner());
    let names = table.unwrap_or(&[]);
    let st = state();
    let mut out = Vec::new();
    for (kind, slot) in st.slots.iter().enumerate() {
        let calls = slot.calls.load(Ordering::Relaxed);
        let bwd_calls = slot.bwd_calls.load(Ordering::Relaxed);
        if calls == 0 && bwd_calls == 0 {
            continue;
        }
        out.push(OpProfile {
            name: names.get(kind).copied().unwrap_or(NO_NAME),
            calls,
            fwd_ns: slot.fwd_ns.load(Ordering::Relaxed),
            bwd_calls,
            bwd_ns: slot.bwd_ns.load(Ordering::Relaxed),
            elems: slot.elems.load(Ordering::Relaxed),
        });
    }
    out.sort_by_key(|p| std::cmp::Reverse(p.total_ns()));
    out
}

/// Render the hottest `limit` ops as an aligned text table.
pub fn render_top_ops(profiles: &[OpProfile], limit: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<14} {:>10} {:>12} {:>12} {:>14}\n",
        "op", "calls", "fwd_ms", "bwd_ms", "out_elems"
    ));
    for p in profiles.iter().take(limit) {
        out.push_str(&format!(
            "  {:<14} {:>10} {:>12.3} {:>12.3} {:>14}\n",
            p.name,
            p.calls,
            p.fwd_ns as f64 / 1e6,
            p.bwd_ns as f64 / 1e6,
            p.elems
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_when_enabled_and_snapshots_sorted() {
        configure(&["alpha", "beta"]);
        reset();
        set_enabled(false);
        assert!(op_start().is_none());
        set_enabled(true);
        let t0 = op_start().expect("enabled");
        record_forward(0, t0, 10);
        record_forward(1, op_start().unwrap(), 5);
        record_forward(1, op_start().unwrap(), 5);
        record_backward(1, op_start().unwrap());
        set_enabled(false);

        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        let beta = snap.iter().find(|p| p.name == "beta").expect("beta profiled");
        assert_eq!(beta.calls, 2);
        assert_eq!(beta.bwd_calls, 1);
        assert_eq!(beta.elems, 10);
        assert!(snap[0].total_ns() >= snap[1].total_ns());
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn out_of_range_kind_is_ignored() {
        set_enabled(true);
        record_forward(MAX_KINDS + 3, Instant::now(), 1);
        record_backward(MAX_KINDS + 3, Instant::now());
        set_enabled(false);
    }

    #[test]
    fn render_top_ops_limits_rows() {
        let profiles = vec![
            OpProfile { name: "a", calls: 2, fwd_ns: 5_000_000, bwd_calls: 1, bwd_ns: 1_000_000, elems: 7 },
            OpProfile { name: "b", calls: 1, fwd_ns: 1_000, bwd_calls: 0, bwd_ns: 0, elems: 1 },
        ];
        let text = render_top_ops(&profiles, 1);
        assert!(text.contains('a'));
        assert!(!text.contains("\n  b "));
    }
}
