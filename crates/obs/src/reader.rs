//! Snapshot reader for JSONL traces written by [`crate::trace`].
//!
//! Used by tests and the CI smoke check to assert that a trace round-trips:
//! every line must parse and carry the fields the schema promises.

use std::path::Path;

use crate::json::{self, Json};
use crate::vfs;

/// One parsed trace line (meta, span, or event).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// `"meta"`, `"span"`, or `"event"`.
    pub kind: String,
    /// Span/event name, or the run name for meta lines.
    pub name: String,
    /// Event level (`"info"`/`"warn"`); empty for spans and meta.
    pub level: String,
    /// Span id (0 for events and meta, which have none).
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Writer thread's trace-local id.
    pub thread: u64,
    /// Microseconds since trace start.
    pub t_us: u64,
    /// Span wall time; `None` for events and meta.
    pub dur_us: Option<u64>,
    /// Attached fields (an empty object when absent).
    pub fields: Json,
}

impl TraceRecord {
    /// Look up a field value by key.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.get(key)
    }
}

/// Parse one JSONL trace line into a [`TraceRecord`].
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let j = json::parse(line)?;
    let kind = j
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"type\"".to_string())?
        .to_string();
    let name_key = if kind == "meta" { "run" } else { "name" };
    let name = j
        .get(name_key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing {name_key:?}"))?
        .to_string();
    let t_us = j
        .get("t_us")
        .and_then(Json::as_i64)
        .ok_or_else(|| "missing \"t_us\"".to_string())? as u64;
    if kind == "span" && j.get("dur_us").and_then(Json::as_i64).is_none() {
        return Err("span line missing \"dur_us\"".to_string());
    }
    Ok(TraceRecord {
        kind,
        name,
        level: j.get("level").and_then(Json::as_str).unwrap_or_default().to_string(),
        id: j.get("id").and_then(Json::as_i64).unwrap_or(0) as u64,
        parent: j.get("parent").and_then(Json::as_i64).map(|p| p as u64),
        thread: j.get("thread").and_then(Json::as_i64).unwrap_or(0) as u64,
        t_us,
        dur_us: j.get("dur_us").and_then(Json::as_i64).map(|d| d as u64),
        fields: j.get("fields").cloned().unwrap_or(Json::Obj(Vec::new())),
    })
}

/// Read a whole trace file; fails on the first malformed line, reporting
/// its 1-based line number.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, String> {
    let path = path.as_ref();
    let text = vfs::read_to_string(&*vfs::global(), path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_line(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// A tolerant read of a possibly live (still-being-written) trace file.
#[derive(Clone, Debug, Default)]
pub struct LossyTrace {
    /// Every line that parsed cleanly, in file order.
    pub records: Vec<TraceRecord>,
    /// Lines that failed to parse (torn tails, interleaved writers) — skipped
    /// and counted instead of aborting the read.
    pub skipped: usize,
}

/// Read a trace file that may end mid-line or contain foreign lines (a live
/// writer's torn tail, an interleaved process). Unparseable lines are
/// skipped and counted, never fatal; only a missing/unreadable file errors.
/// Use [`read_trace`] when the file is known complete and must be strict.
pub fn read_trace_lossy(path: impl AsRef<Path>) -> Result<LossyTrace, String> {
    let path = path.as_ref();
    let text = vfs::read_to_string(&*vfs::global(), path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = LossyTrace::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(rec) => out.records.push(rec),
            Err(_) => out.skipped += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("tpgnn-obs-reader-{}-{name}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn parses_span_event_and_meta_lines() {
        let meta = parse_line(r#"{"type":"meta","run":"demo","t_us":0,"unix_ms":5}"#).unwrap();
        assert_eq!(meta.kind, "meta");
        assert_eq!(meta.name, "demo");

        let span = parse_line(
            r#"{"type":"span","name":"train.epoch","id":3,"parent":1,"thread":0,"t_us":10,"dur_us":7,"fields":{"loss":0.5}}"#,
        )
        .unwrap();
        assert_eq!(span.kind, "span");
        assert_eq!(span.id, 3);
        assert_eq!(span.parent, Some(1));
        assert_eq!(span.dur_us, Some(7));
        assert_eq!(span.field("loss").and_then(Json::as_f64), Some(0.5));

        let ev = parse_line(
            r#"{"type":"event","name":"guard.rollback","level":"warn","parent":null,"thread":1,"t_us":20,"fields":{}}"#,
        )
        .unwrap();
        assert_eq!(ev.kind, "event");
        assert_eq!(ev.level, "warn");
        assert_eq!(ev.parent, None);
        assert_eq!(ev.dur_us, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"name":"x"}"#).is_err());
        assert!(parse_line(r#"{"type":"span","name":"x","t_us":1}"#).is_err());
    }

    #[test]
    fn lossy_read_skips_torn_tail() {
        let good = r#"{"type":"meta","run":"demo","t_us":0,"unix_ms":5}"#;
        let p = write_tmp("torn", &format!("{good}\n{good}\n{{\"type\":\"ev"));
        let t = read_trace_lossy(&p).unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.skipped, 1);
        // The strict reader must still refuse the same file.
        assert!(read_trace(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn lossy_read_of_empty_file() {
        let p = write_tmp("empty", "");
        let t = read_trace_lossy(&p).unwrap();
        assert!(t.records.is_empty());
        assert_eq!(t.skipped, 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn lossy_read_skips_interleaved_writer_lines() {
        let good = r#"{"type":"event","name":"x","level":"info","t_us":3,"fields":{}}"#;
        let foreign = "2026-08-08T00:00:00 some-other-logger INFO hello";
        let p = write_tmp("mixed", &format!("{good}\n{foreign}\n{good}\nnot json either\n"));
        let t = read_trace_lossy(&p).unwrap();
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.skipped, 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn lossy_read_missing_file_errors() {
        assert!(read_trace_lossy("/nonexistent/tpgnn-no-such-trace.jsonl").is_err());
    }
}
