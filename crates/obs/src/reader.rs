//! Snapshot reader for JSONL traces written by [`crate::trace`].
//!
//! Used by tests and the CI smoke check to assert that a trace round-trips:
//! every line must parse and carry the fields the schema promises.

use std::path::Path;

use crate::json::{self, Json};

/// One parsed trace line (meta, span, or event).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// `"meta"`, `"span"`, or `"event"`.
    pub kind: String,
    /// Span/event name, or the run name for meta lines.
    pub name: String,
    /// Event level (`"info"`/`"warn"`); empty for spans and meta.
    pub level: String,
    /// Span id (0 for events and meta, which have none).
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Writer thread's trace-local id.
    pub thread: u64,
    /// Microseconds since trace start.
    pub t_us: u64,
    /// Span wall time; `None` for events and meta.
    pub dur_us: Option<u64>,
    /// Attached fields (an empty object when absent).
    pub fields: Json,
}

impl TraceRecord {
    /// Look up a field value by key.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.get(key)
    }
}

/// Parse one JSONL trace line into a [`TraceRecord`].
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let j = json::parse(line)?;
    let kind = j
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"type\"".to_string())?
        .to_string();
    let name_key = if kind == "meta" { "run" } else { "name" };
    let name = j
        .get(name_key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing {name_key:?}"))?
        .to_string();
    let t_us = j
        .get("t_us")
        .and_then(Json::as_i64)
        .ok_or_else(|| "missing \"t_us\"".to_string())? as u64;
    if kind == "span" && j.get("dur_us").and_then(Json::as_i64).is_none() {
        return Err("span line missing \"dur_us\"".to_string());
    }
    Ok(TraceRecord {
        kind,
        name,
        level: j.get("level").and_then(Json::as_str).unwrap_or_default().to_string(),
        id: j.get("id").and_then(Json::as_i64).unwrap_or(0) as u64,
        parent: j.get("parent").and_then(Json::as_i64).map(|p| p as u64),
        thread: j.get("thread").and_then(Json::as_i64).unwrap_or(0) as u64,
        t_us,
        dur_us: j.get("dur_us").and_then(Json::as_i64).map(|d| d as u64),
        fields: j.get("fields").cloned().unwrap_or(Json::Obj(Vec::new())),
    })
}

/// Read a whole trace file; fails on the first malformed line, reporting
/// its 1-based line number.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_line(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_span_event_and_meta_lines() {
        let meta = parse_line(r#"{"type":"meta","run":"demo","t_us":0,"unix_ms":5}"#).unwrap();
        assert_eq!(meta.kind, "meta");
        assert_eq!(meta.name, "demo");

        let span = parse_line(
            r#"{"type":"span","name":"train.epoch","id":3,"parent":1,"thread":0,"t_us":10,"dur_us":7,"fields":{"loss":0.5}}"#,
        )
        .unwrap();
        assert_eq!(span.kind, "span");
        assert_eq!(span.id, 3);
        assert_eq!(span.parent, Some(1));
        assert_eq!(span.dur_us, Some(7));
        assert_eq!(span.field("loss").and_then(Json::as_f64), Some(0.5));

        let ev = parse_line(
            r#"{"type":"event","name":"guard.rollback","level":"warn","parent":null,"thread":1,"t_us":20,"fields":{}}"#,
        )
        .unwrap();
        assert_eq!(ev.kind, "event");
        assert_eq!(ev.level, "warn");
        assert_eq!(ev.parent, None);
        assert_eq!(ev.dur_us, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"name":"x"}"#).is_err());
        assert!(parse_line(r#"{"type":"span","name":"x","t_us":1}"#).is_err());
    }
}
