//! Live telemetry: windowed metrics snapshots written while the process
//! runs, not only at exit.
//!
//! A [`SnapshotWriter`] turns each [`metrics::DeltaCursor`] take into two
//! artifacts under one directory:
//!
//! * `live-<run>.jsonl` — an append-only JSONL time series, one
//!   [`WindowSnapshot`](metrics::WindowSnapshot) per tick (counter deltas +
//!   totals, gauge last-values, histogram window quantiles), plus `t_us`
//!   (microseconds since the writer was created) and `unix_ms`;
//! * `metrics-<run>.prom` — a Prometheus-style text exposition of the
//!   cumulative registry, atomically replaced each tick (write to a `.tmp`
//!   sibling, then rename), so a concurrent reader never sees a torn file.
//!
//! Each tick also flushes the trace sink and rewrites the trace metrics
//! sidecar ([`trace::write_metrics_sidecar`]) so a hard abort between ticks
//! loses at most one window. A [`Ticker`] owns a background thread that
//! ticks a writer at a fixed interval; dropping it performs one final tick,
//! so clean shutdown (and panic unwinding through the owner's drop) never
//! loses the last window. `std::process::abort` skips destructors by
//! design — there the artifacts are simply as fresh as the last tick.
//!
//! Everything here is std-only and costs nothing unless a writer is
//! constructed; the serving layer only does that when telemetry is
//! explicitly configured.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::{self, WindowSnapshot};
use crate::trace;
use crate::vfs::{self, Vfs};

/// Appends one windowed metrics snapshot per [`tick`](SnapshotWriter::tick)
/// to a JSONL time series and atomically refreshes a text exposition file.
/// Ticking is explicit so tests can drive it deterministically; production
/// code wraps a writer in a [`Ticker`].
#[derive(Debug)]
pub struct SnapshotWriter {
    live_path: PathBuf,
    expo_path: PathBuf,
    cursor: metrics::DeltaCursor,
    t0: Instant,
    vfs: Arc<dyn Vfs>,
}

impl SnapshotWriter {
    /// A writer for `run`, placing `live-<run>.jsonl` and
    /// `metrics-<run>.prom` under `dir` (created if missing). A pre-existing
    /// live file from an earlier run is truncated. Uses the process-global
    /// [`vfs`] stack; see [`with_vfs`](Self::with_vfs) for an explicit one.
    pub fn new(run: &str, dir: impl AsRef<Path>) -> SnapshotWriter {
        Self::with_vfs(run, dir, vfs::global())
    }

    /// A writer backed by an explicit [`Vfs`] (fault-injection tests, the
    /// chaos harness).
    pub fn with_vfs(run: &str, dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> SnapshotWriter {
        let dir = dir.as_ref();
        let _ = vfs.create_dir_all(dir);
        let live_path = dir.join(format!("live-{run}.jsonl"));
        let _ = vfs.write(&live_path, b""); // truncate stale series
        SnapshotWriter {
            live_path,
            expo_path: dir.join(format!("metrics-{run}.prom")),
            cursor: metrics::DeltaCursor::new(),
            t0: Instant::now(),
            vfs,
        }
    }

    /// Path of the JSONL time series.
    pub fn live_path(&self) -> &Path {
        &self.live_path
    }

    /// Path of the text exposition file.
    pub fn expo_path(&self) -> &Path {
        &self.expo_path
    }

    /// Take one window, append it to the live series, atomically replace the
    /// exposition file, and refresh the trace sink + sidecar. Returns the
    /// window so callers (the SLO evaluator, tests) can inspect it without a
    /// second registry pass. I/O failures are swallowed — telemetry must
    /// never take the server down.
    pub fn tick(&mut self) -> WindowSnapshot {
        let window = self.cursor.take();

        let mut line = window.to_json();
        if let Json::Obj(fields) = &mut line {
            let t_us = self.t0.elapsed().as_micros() as u64;
            let unix_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            fields.insert(1, ("t_us".to_string(), Json::from(t_us)));
            fields.insert(2, ("unix_ms".to_string(), Json::from(unix_ms)));
        }
        if let Ok(mut f) = self.vfs.open_append(&self.live_path) {
            let _ = f.append(format!("{}\n", line.render()).as_bytes());
        }

        // Atomic replace: a reader of the .prom file sees either the old or
        // the new rendering, never a prefix. A failed write or rename leaves
        // the previous exposition in place (stale but whole) and is retried
        // on the next tick; `snapshot.expo_stale` counts how often that
        // happened (the vfs retry layer counts the fault kind itself).
        let tmp = self.expo_path.with_extension("prom.tmp");
        let expo = metrics::render_exposition();
        let replaced = self
            .vfs
            .write(&tmp, expo.as_bytes())
            .and_then(|()| self.vfs.rename(&tmp, &self.expo_path));
        if replaced.is_err() {
            metrics::counter("snapshot.expo_stale").inc();
        }

        trace::flush();
        trace::write_metrics_sidecar();
        window
    }
}

struct TickerShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Owns a background thread that ticks a [`SnapshotWriter`] every
/// `interval`, invoking a hook with each window (the serving layer's SLO
/// evaluator plugs in here). Dropping the ticker signals the thread, joins
/// it, and performs one final tick so the last window always lands.
pub struct Ticker {
    shared: Arc<TickerShared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Ticker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticker").finish_non_exhaustive()
    }
}

impl Ticker {
    /// Spawn the ticker thread. `hook` runs on that thread after every tick
    /// (including the final one at drop). If the OS refuses a new thread the
    /// ticker degrades to a no-op — telemetry must never take the owner
    /// down.
    pub fn spawn(
        mut writer: SnapshotWriter,
        interval: Duration,
        mut hook: impl FnMut(&WindowSnapshot) + Send + 'static,
    ) -> Ticker {
        let shared = Arc::new(TickerShared { stop: Mutex::new(false), cv: Condvar::new() });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("tpgnn-telemetry".to_string())
            .spawn(move || {
                let mut stopped =
                    thread_shared.stop.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, _timeout) = thread_shared
                        .cv
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    drop(stopped); // tick without holding the stop lock
                    let w = writer.tick();
                    hook(&w);
                    stopped = thread_shared.stop.lock().unwrap_or_else(|e| e.into_inner());
                }
                drop(stopped);
                // Final tick on the way out: flush whatever accumulated
                // since the last interval boundary.
                let w = writer.tick();
                hook(&w);
            });
        let handle = match handle {
            Ok(h) => Some(h),
            Err(e) => {
                metrics::counter("snapshot.ticker_spawn_failed").inc();
                eprintln!("tpgnn-obs: telemetry ticker thread failed to spawn: {e}");
                None
            }
        };
        Ticker { shared, handle }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::vfs::{FaultPlan, FaultVfs, IoFaultKind, StdVfs};
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpgnn-obs-snap-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn tick_appends_jsonl_and_replaces_exposition() {
        let dir = tmp_dir("tick");
        let c = metrics::counter("test.snapshot.ticks");
        let mut w = SnapshotWriter::new("unit", &dir);
        c.add(3);
        w.tick();
        c.add(2);
        w.tick();

        let text = fs::read_to_string(w.live_path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let last = json::parse(lines[1]).unwrap();
        let cnt = last.get("counters").and_then(|c| c.get("test.snapshot.ticks")).unwrap();
        assert_eq!(cnt.get("delta").and_then(Json::as_i64), Some(2));
        assert!(cnt.get("total").and_then(Json::as_i64).unwrap() >= 5);
        assert!(last.get("t_us").and_then(Json::as_i64).is_some());

        let expo = fs::read_to_string(w.expo_path()).unwrap();
        assert!(expo.contains("test_snapshot_ticks"));
        assert!(!w.expo_path().with_extension("prom.tmp").exists(), "tmp renamed away");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expo_rename_failure_keeps_previous_file_and_recovers_next_tick() {
        let dir = tmp_dir("stale");
        // Fault every rename of the .prom exposition, capped at 1 fault, so
        // tick 2 writes a good file, tick 3 replaces it again.
        let plan = FaultPlan::new(17)
            .with(IoFaultKind::RenameFailed, 1.0)
            .only_files(&["metrics-stale"])
            .cap(1);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let mut w = SnapshotWriter::with_vfs("stale", &dir, Arc::new(fault.clone()));
        let stale_before = metrics::counter("snapshot.expo_stale").get();

        w.tick(); // rename injected: no .prom lands, writer keeps going
        assert!(!w.expo_path().exists(), "failed replace must not leave a torn file");
        assert_eq!(metrics::counter("snapshot.expo_stale").get(), stale_before + 1);
        assert_eq!(fault.ledger().count(IoFaultKind::RenameFailed), 1);

        let c = metrics::counter("test.snapshot.stale");
        c.inc();
        w.tick(); // cap reached: replace succeeds this tick
        let first = fs::read_to_string(w.expo_path()).unwrap();
        assert!(first.contains("test_snapshot_stale"));

        c.inc();
        w.tick();
        let second = fs::read_to_string(w.expo_path()).unwrap();
        assert_ne!(first, second, "exposition keeps refreshing after a faulted tick");
        // The live series never skipped a beat.
        assert_eq!(fs::read_to_string(w.live_path()).unwrap().lines().count(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ticker_drop_performs_final_tick() {
        let dir = tmp_dir("drop");
        let w = SnapshotWriter::new("drop", &dir);
        let live = w.live_path().to_path_buf();
        static HOOKS: AtomicU64 = AtomicU64::new(0);
        {
            // Interval far beyond the test's lifetime: only the final tick
            // at drop can fire, proving the drop path flushes.
            let _t = Ticker::spawn(w, Duration::from_secs(3600), |_w| {
                HOOKS.fetch_add(1, Ordering::Relaxed);
            });
        }
        let text = fs::read_to_string(&live).unwrap();
        assert_eq!(text.lines().count(), 1, "exactly the final tick");
        assert!(HOOKS.load(Ordering::Relaxed) >= 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ticker_interval_produces_multiple_ticks() {
        let dir = tmp_dir("interval");
        let w = SnapshotWriter::new("interval", &dir);
        let live = w.live_path().to_path_buf();
        let t = Ticker::spawn(w, Duration::from_millis(5), |_w| {});
        // Live file must grow while the ticker is still running.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let n = fs::read_to_string(&live).map(|s| s.lines().count()).unwrap_or(0);
            if n >= 2 {
                break;
            }
            assert!(Instant::now() < deadline, "no live ticks after 10s");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(t);
        fs::remove_dir_all(&dir).ok();
    }
}
