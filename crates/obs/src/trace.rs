//! Structured tracing: spans, events, a JSONL sink, and the end-of-run
//! summary.
//!
//! Tracing is off unless the process calls [`init`] with `TPGNN_TRACE` set
//! to a truthy value (anything other than empty, `0`, `false`, or `off`).
//! When off, [`span`] returns an inert guard and [`event`]/[`warn`] return
//! immediately after one relaxed atomic load — hot paths stay near
//! zero-cost.
//!
//! When on, every span and event becomes one JSON line in
//! `results/trace-<name>.jsonl` (or the explicit path given in
//! `TPGNN_TRACE` when its value contains `/` or ends in `.jsonl`):
//!
//! ```text
//! {"type":"meta","run":"smoke","t_us":0,"unix_ms":1738000000000}
//! {"type":"span","name":"train.epoch","id":3,"parent":1,"thread":0,"t_us":1520,"dur_us":880,"fields":{"epoch":0,"loss":0.693}}
//! {"type":"event","name":"guard.rollback","level":"warn","parent":3,"thread":0,"t_us":2400,"fields":{"epoch":1}}
//! ```
//!
//! Span lines are written when the span *closes* (on `Drop`, so panics
//! unwind the stack correctly); `t_us` is the span's start, `dur_us` its
//! wall time, both measured from the process-monotonic clock anchored at
//! [`init`]. [`finish`] flushes the sink, writes a companion
//! `metrics-<name>.json` with the metrics-registry snapshot, prints a
//! human-readable summary, and disables tracing again.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{obj, Json};
use crate::{metrics, opprof, vfs};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Open span ids for this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

struct TraceState {
    run: String,
    path: PathBuf,
    start: Instant,
    writer: BufWriter<fs::File>,
    /// Aggregate span durations for the end-of-run summary: name ->
    /// (count, total_us, max_us).
    span_agg: BTreeMap<String, (u64, u64, u64)>,
    events: u64,
}

fn sink() -> &'static Mutex<Option<TraceState>> {
    static SINK: OnceLock<Mutex<Option<TraceState>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<TraceState>> {
    sink().lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether tracing is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn truthy(value: &str) -> bool {
    !matches!(value, "" | "0" | "false" | "off")
}

fn trace_path(run_name: &str, env_value: &str) -> PathBuf {
    if env_value.contains('/') || env_value.ends_with(".jsonl") {
        return PathBuf::from(env_value);
    }
    // results/ next to the workspace root, matching tpgnn_bench's layout.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("results").join(format!("trace-{run_name}.jsonl"))
}

/// Read `TPGNN_TRACE` and, if truthy, open the JSONL sink for `run_name`
/// and enable tracing (plus the tape op profiler). Returns whether tracing
/// is on. Idempotent: if a sink is already open, it stays.
pub fn init(run_name: &str) -> bool {
    let value = std::env::var("TPGNN_TRACE").unwrap_or_default();
    if !truthy(&value) {
        return false;
    }
    init_at(run_name, trace_path(run_name, &value))
}

/// Force tracing on with an explicit sink path, ignoring `TPGNN_TRACE`.
/// Used by tests; replaces any open sink.
pub fn init_to(run_name: &str, path: impl Into<PathBuf>) -> bool {
    let mut guard = lock_sink();
    *guard = None;
    drop(guard);
    init_at(run_name, path.into())
}

fn init_at(run_name: &str, path: PathBuf) -> bool {
    let mut guard = lock_sink();
    if guard.is_some() {
        return true;
    }
    if let Some(dir) = path.parent() {
        let _ = vfs::global().create_dir_all(dir);
    }
    // The streaming span/event sink deliberately stays on a std BufWriter
    // rather than the vfs: it is a high-frequency lossy-by-design stream
    // whose reader tolerates torn tails, and per-line vfs dispatch would
    // put an Arc clone + counter bump on every span drop. Only the
    // durable artifacts (sidecar, exposition) go through the vfs.
    let file = match fs::File::create(&path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("tpgnn-obs: cannot open trace sink {}: {err}", path.display());
            return false;
        }
    };
    let mut state = TraceState {
        run: run_name.to_string(),
        path,
        start: Instant::now(),
        writer: BufWriter::new(file),
        span_agg: BTreeMap::new(),
        events: 0,
    };
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let meta = obj(vec![
        ("type", Json::from("meta")),
        ("run", Json::from(run_name)),
        ("t_us", Json::from(0u64)),
        ("unix_ms", Json::from(unix_ms)),
    ]);
    let _ = writeln!(state.writer, "{}", meta.render());
    *guard = Some(state);
    ENABLED.store(true, Ordering::Relaxed);
    opprof::set_enabled(true);
    true
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// RAII guard for one span. Inert (all methods no-ops) when tracing is
/// disabled; otherwise the span line is written when the guard drops, which
/// also happens during panic unwinding so the thread-local stack cannot
/// leak entries.
pub struct Span {
    /// `None` when tracing was disabled at open time.
    live: Option<SpanLive>,
}

struct SpanLive {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    opened: Instant,
    fields: Vec<(String, Json)>,
}

/// Open a span named `name` under the innermost open span of this thread.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        live: Some(SpanLive { name, id, parent, opened: Instant::now(), fields: Vec::new() }),
    }
}

impl Span {
    /// Attach a field to this span (shows up in its JSONL line).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.to_string(), value.into()));
        }
    }

    /// This span's id, for correlating events; `None` when tracing is off.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span. Out-of-order drops only
            // happen during unwinding, where inner guards drop first anyway.
            while let Some(top) = stack.pop() {
                if top == live.id {
                    break;
                }
            }
        });
        let dur_us = live.opened.elapsed().as_micros() as u64;
        let mut guard = lock_sink();
        let Some(state) = guard.as_mut() else { return };
        let t_us = live.opened.duration_since(state.start).as_micros() as u64;
        let agg = state.span_agg.entry(live.name.to_string()).or_insert((0, 0, 0));
        agg.0 += 1;
        agg.1 += dur_us;
        agg.2 = agg.2.max(dur_us);
        let line = obj(vec![
            ("type", Json::from("span")),
            ("name", Json::from(live.name)),
            ("id", Json::from(live.id)),
            (
                "parent",
                live.parent.map(Json::from).unwrap_or(Json::Null),
            ),
            ("thread", Json::from(thread_id())),
            ("t_us", Json::from(t_us)),
            ("dur_us", Json::from(dur_us)),
            ("fields", Json::Obj(live.fields)),
        ]);
        let _ = writeln!(state.writer, "{}", line.render());
    }
}

fn emit_event(name: &str, level: &str, fields: &[(&str, Json)]) {
    if !enabled() {
        return;
    }
    let parent = current_parent();
    let thread = thread_id();
    let mut guard = lock_sink();
    let Some(state) = guard.as_mut() else { return };
    let t_us = state.start.elapsed().as_micros() as u64;
    state.events += 1;
    let line = obj(vec![
        ("type", Json::from("event")),
        ("name", Json::from(name)),
        ("level", Json::from(level)),
        ("parent", parent.map(Json::from).unwrap_or(Json::Null)),
        ("thread", Json::from(thread)),
        ("t_us", Json::from(t_us)),
        (
            "fields",
            Json::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()),
        ),
    ]);
    let _ = writeln!(state.writer, "{}", line.render());
}

/// Emit an info-level event under the current span.
pub fn event(name: &str, fields: &[(&str, Json)]) {
    emit_event(name, "info", fields);
}

/// Emit a warning-level event under the current span.
pub fn warn(name: &str, fields: &[(&str, Json)]) {
    emit_event(name, "warn", fields);
}

/// Flush the JSONL sink so lines written so far are readable by a
/// concurrent tail/reader. No-op when tracing is off. The snapshot ticker
/// calls this each tick; without it, buffered span lines only reach disk at
/// [`finish`].
pub fn flush() {
    if !enabled() {
        return;
    }
    if let Some(state) = lock_sink().as_mut() {
        let _ = state.writer.flush();
    }
}

fn sidecar_path(state: &TraceState) -> PathBuf {
    state
        .path
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."))
        .join(format!("metrics-{}.json", state.run))
}

fn sidecar_json() -> Json {
    let mut doc = metrics::snapshot_json();
    let ops = opprof::snapshot();
    if let Json::Obj(fields) = &mut doc {
        fields.push(("ops".to_string(), Json::Arr(ops.iter().map(|o| o.to_json()).collect())));
    }
    doc
}

/// Rewrite the `metrics-<run>.json` sidecar next to the open trace file
/// with the current metrics-registry snapshot plus the tape op profile
/// (`"ops"`). Returns the sidecar path, or `None` when tracing is off.
/// Called by the snapshot ticker so the sidecar survives a hard abort
/// mid-run instead of existing only after a clean [`finish`].
pub fn write_metrics_sidecar() -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let guard = lock_sink();
    let state = guard.as_ref()?;
    let metrics_path = sidecar_path(state);
    let sidecar = sidecar_json().render() + "\n";
    let _ = vfs::global().write(&metrics_path, sidecar.as_bytes());
    Some(metrics_path)
}

/// Flush and close the trace: write the metrics snapshot next to the trace
/// file, print a human-readable summary to stderr, disable tracing, and
/// return the trace path. `None` if tracing was never enabled.
pub fn finish() -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    ENABLED.store(false, Ordering::Relaxed);
    opprof::set_enabled(false);
    let mut guard = lock_sink();
    let mut state = guard.take()?;
    let _ = state.writer.flush();

    let metrics_path = sidecar_path(&state);
    let sidecar = sidecar_json().render() + "\n";
    let _ = vfs::global().write(&metrics_path, sidecar.as_bytes());

    let mut summary = String::new();
    summary.push_str(&format!(
        "== trace summary: {} ({} events) ==\n",
        state.run, state.events
    ));
    summary.push_str(&format!("  trace    {}\n", state.path.display()));
    summary.push_str(&format!("  metrics  {}\n", metrics_path.display()));
    if !state.span_agg.is_empty() {
        summary.push_str(&format!(
            "  {:<28} {:>8} {:>12} {:>12}\n",
            "span", "count", "total_ms", "max_ms"
        ));
        for (name, (count, total_us, max_us)) in &state.span_agg {
            summary.push_str(&format!(
                "  {:<28} {:>8} {:>12.3} {:>12.3}\n",
                name,
                count,
                *total_us as f64 / 1e3,
                *max_us as f64 / 1e3
            ));
        }
    }
    let metric_lines = metrics::render_summary();
    if !metric_lines.is_empty() {
        summary.push_str(&metric_lines);
    }
    let ops = opprof::snapshot();
    if !ops.is_empty() {
        summary.push_str("  top tape ops:\n");
        summary.push_str(&opprof::render_top_ops(&ops, 8));
    }
    eprint!("{summary}");
    Some(state.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // Tracing defaults off in unit tests; a span must cost nothing and
        // leave no state behind.
        assert!(!enabled());
        let mut s = span("test.inert");
        s.set("k", 1i64);
        assert!(s.id().is_none());
        drop(s);
        SPAN_STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn truthy_values() {
        assert!(!truthy(""));
        assert!(!truthy("0"));
        assert!(!truthy("false"));
        assert!(!truthy("off"));
        assert!(truthy("1"));
        assert!(truthy("results/custom.jsonl"));
    }

    #[test]
    fn trace_path_respects_explicit_values() {
        assert_eq!(trace_path("x", "tmp/my.jsonl"), PathBuf::from("tmp/my.jsonl"));
        assert_eq!(trace_path("x", "my.jsonl"), PathBuf::from("my.jsonl"));
        assert!(trace_path("run", "1").ends_with("results/trace-run.jsonl"));
    }
}
