//! Fault-injectable virtual filesystem: the storage substrate every
//! durability path in the workspace goes through.
//!
//! The serving stack stakes correctness on disk durability — journals
//! promise "delivered ⇒ committed", checkpoints promise "previous file or
//! complete new one, never torn" — yet `std::fs` reports failure modes
//! (ENOSPC, short writes, failed fsync, rename errors, EINTR) that direct
//! call sites historically assumed away. This module turns those
//! assumptions into a tested contract:
//!
//! * [`Vfs`] / [`VfsFile`] — the narrow storage interface (atomic create,
//!   append + sync, read, rename, remove, list) with typed [`VfsError`]s
//!   classified transient vs fatal;
//! * [`StdVfs`] — the real filesystem, byte-for-byte the previous behavior;
//! * [`FaultVfs`] — a seeded injector wrapping any [`Vfs`] that produces
//!   short writes, ENOSPC, fsync failure, rename failure, EINTR-style
//!   transient errors, and read-back bit corruption on a deterministic
//!   per-op schedule, with an exact [`IoFaultLedger`] of what it did;
//! * [`RetryVfs`] — bounded-exponential-backoff retry for transient
//!   failures, typed fatal surfacing for the rest, and the `io.*` obs
//!   counters (`io.ops`, `io.retry`, `io.fatal`, `io.fault.<kind>`).
//!
//! The canonical stack is `RetryVfs(FaultVfs(StdVfs))` under chaos and
//! `RetryVfs(StdVfs)` in production (the process-global default, see
//! [`global`]/[`install`]). With that stack, every fault the injector
//! records in its ledger is observed exactly once by the retry layer (or,
//! for silent read corruption, counted by the injector itself at flip
//! time), so `IoFaultLedger` ↔ `io.fault.*` reconciliation is exact — the
//! `storage_chaos` smoke bin's core assertion.
//!
//! Determinism: the injection schedule is a pure function of the plan seed
//! and the per-op counter. Ops whose file name does not match the plan's
//! [`only`](FaultPlan::only) filter bypass injection *without consuming a
//! schedule slot*, so a plan scoped to (say) journal files produces an
//! identical fault sequence at any worker-pool width — journal appends
//! happen on the coordinator thread in committed order.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

use crate::metrics::{self, Counter};

// ---------------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------------

/// Every fault kind the injector can produce (and the retry layer counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IoFaultKind {
    /// A write persisted only a prefix of the buffer before failing — the
    /// torn-tail producer. Fatal: the prefix is on disk, so blind retry
    /// would duplicate bytes; recovery's checksum discipline handles it.
    ShortWrite,
    /// ENOSPC: the device is full. Fatal.
    NoSpace,
    /// `fsync`/`sync_data` reported failure: durability of everything
    /// written since the last successful sync is unknown. Fatal.
    SyncFailed,
    /// Atomic-replace rename failed; the destination still holds its
    /// previous content, the staged temp file is intact. Fatal (callers
    /// keep serving the previous file and retry at their own cadence).
    RenameFailed,
    /// EINTR-style transient failure: nothing was written/read. The only
    /// class [`RetryVfs`] retries.
    Transient,
    /// Read-back bit corruption: the read *succeeds* but one byte is
    /// flipped. Never surfaces as an error here — detection is the
    /// caller's checksum discipline (trailers, frame checksums, parsers).
    Corrupt,
}

impl IoFaultKind {
    /// All kinds, in ledger/counter index order.
    pub const ALL: [IoFaultKind; 6] = [
        IoFaultKind::ShortWrite,
        IoFaultKind::NoSpace,
        IoFaultKind::SyncFailed,
        IoFaultKind::RenameFailed,
        IoFaultKind::Transient,
        IoFaultKind::Corrupt,
    ];

    /// Stable snake_case label (ledger rendering, metric names).
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "short_write",
            IoFaultKind::NoSpace => "no_space",
            IoFaultKind::SyncFailed => "sync",
            IoFaultKind::RenameFailed => "rename",
            IoFaultKind::Transient => "transient",
            IoFaultKind::Corrupt => "corrupt",
        }
    }

    /// Registered `io.fault.<label>` counter name.
    pub fn counter_name(self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "io.fault.short_write",
            IoFaultKind::NoSpace => "io.fault.no_space",
            IoFaultKind::SyncFailed => "io.fault.sync",
            IoFaultKind::RenameFailed => "io.fault.rename",
            IoFaultKind::Transient => "io.fault.transient",
            IoFaultKind::Corrupt => "io.fault.corrupt",
        }
    }

    /// Whether [`RetryVfs`] retries this class (only [`Transient`]
    /// injections and real EINTR qualify — everything else either left
    /// partial state behind or reports a condition retry cannot fix).
    ///
    /// [`Transient`]: IoFaultKind::Transient
    pub fn is_transient(self) -> bool {
        matches!(self, IoFaultKind::Transient)
    }

    fn index(self) -> usize {
        match self {
            IoFaultKind::ShortWrite => 0,
            IoFaultKind::NoSpace => 1,
            IoFaultKind::SyncFailed => 2,
            IoFaultKind::RenameFailed => 3,
            IoFaultKind::Transient => 4,
            IoFaultKind::Corrupt => 5,
        }
    }
}

impl std::fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a [`VfsError`] happened: a real OS error or an injected fault.
#[derive(Debug)]
pub enum VfsCause {
    /// A genuine operating-system error (kind plus rendered message).
    Os(std::io::ErrorKind, String),
    /// A fault injected by [`FaultVfs`].
    Injected(IoFaultKind),
}

/// Typed failure of one [`Vfs`] operation: which op, on which path, why.
#[derive(Debug)]
pub struct VfsError {
    /// The operation that failed (`"append"`, `"rename"`, …).
    pub op: &'static str,
    /// The path the operation targeted.
    pub path: PathBuf,
    /// OS error vs injected fault.
    pub cause: VfsCause,
}

impl VfsError {
    fn os(op: &'static str, path: &Path, e: std::io::Error) -> Self {
        Self { op, path: path.to_path_buf(), cause: VfsCause::Os(e.kind(), e.to_string()) }
    }

    fn injected(op: &'static str, path: &Path, kind: IoFaultKind) -> Self {
        Self { op, path: path.to_path_buf(), cause: VfsCause::Injected(kind) }
    }

    /// The injected fault kind, if this error came from [`FaultVfs`].
    pub fn fault(&self) -> Option<IoFaultKind> {
        match self.cause {
            VfsCause::Injected(k) => Some(k),
            VfsCause::Os(..) => None,
        }
    }

    /// Whether [`RetryVfs`] may retry this error (injected transient or
    /// real EINTR).
    pub fn is_transient(&self) -> bool {
        match self.cause {
            VfsCause::Injected(k) => k.is_transient(),
            VfsCause::Os(kind, _) => kind == std::io::ErrorKind::Interrupted,
        }
    }

    /// Whether the underlying condition is "file does not exist" (callers
    /// like the journal loader treat a missing log as empty).
    pub fn is_not_found(&self) -> bool {
        matches!(self.cause, VfsCause::Os(std::io::ErrorKind::NotFound, _))
    }
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cause {
            VfsCause::Os(_, msg) => {
                write!(f, "{} {}: {msg}", self.op, self.path.display())
            }
            VfsCause::Injected(k) => {
                write!(f, "{} {}: injected {k} fault", self.op, self.path.display())
            }
        }
    }
}

impl std::error::Error for VfsError {}

impl From<VfsError> for std::io::Error {
    fn from(e: VfsError) -> Self {
        let kind = match &e.cause {
            VfsCause::Os(kind, _) => *kind,
            VfsCause::Injected(IoFaultKind::NoSpace) => std::io::ErrorKind::StorageFull,
            VfsCause::Injected(IoFaultKind::Transient) => std::io::ErrorKind::Interrupted,
            VfsCause::Injected(_) => std::io::ErrorKind::Other,
        };
        std::io::Error::new(kind, e)
    }
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// An open append-only file handle (journal logs, telemetry series).
pub trait VfsFile: Send {
    /// Append the whole buffer (or fail, possibly after a short write —
    /// see [`IoFaultKind::ShortWrite`]).
    fn append(&mut self, buf: &[u8]) -> Result<(), VfsError>;

    /// Flush file data to stable storage (`sync_data` semantics).
    fn sync(&mut self) -> Result<(), VfsError>;
}

/// The storage interface every durability path goes through. Implementors
/// must be shareable across threads; `Debug` is required so configs that
/// carry a vfs handle stay debuggable.
pub trait Vfs: std::fmt::Debug + Send + Sync {
    /// Open `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError>;

    /// Create/truncate `path` with `bytes` (no fsync, no atomicity — use
    /// [`create_atomic`](Self::create_atomic) for crash-safe replacement).
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Crash-safe replace: write `bytes` to a `.tmp` sibling, fsync it,
    /// and rename over `path`. On failure the final path still holds its
    /// previous content (or still does not exist); only the temp file may
    /// be damaged.
    fn create_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError>;

    /// Read the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError>;

    /// Rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError>;

    /// Remove a file.
    fn remove(&self, path: &Path) -> Result<(), VfsError>;

    /// File names (not full paths) of directory entries under `dir`.
    fn list(&self, dir: &Path) -> Result<Vec<String>, VfsError>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError>;
}

/// Read a whole file as UTF-8 text (lossless requirement: non-UTF-8 bytes
/// are an error, mirroring `fs::read_to_string`).
pub fn read_to_string(vfs: &dyn Vfs, path: &Path) -> Result<String, VfsError> {
    let bytes = vfs.read(path)?;
    String::from_utf8(bytes).map_err(|e| VfsError {
        op: "read",
        path: path.to_path_buf(),
        cause: VfsCause::Os(std::io::ErrorKind::InvalidData, e.to_string()),
    })
}

// ---------------------------------------------------------------------------
// StdVfs: the real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem — byte-for-byte the behavior durability paths had
/// when they called `std::fs` directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

struct StdFile {
    file: std::fs::File,
    path: PathBuf,
}

impl VfsFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), VfsError> {
        use std::io::Write as _;
        self.file.write_all(buf).map_err(|e| VfsError::os("append", &self.path, e))
    }

    fn sync(&mut self) -> Result<(), VfsError> {
        self.file.sync_data().map_err(|e| VfsError::os("sync", &self.path, e))
    }
}

impl Vfs for StdVfs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| VfsError::os("open_append", path, e))?;
        Ok(Box::new(StdFile { file, path: path.to_path_buf() }))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        std::fs::write(path, bytes).map_err(|e| VfsError::os("write", path, e))
    }

    fn create_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| VfsError::os("create_atomic", &tmp, e))?;
            f.write_all(bytes).map_err(|e| VfsError::os("create_atomic", &tmp, e))?;
            f.sync_all().map_err(|e| VfsError::os("create_atomic", &tmp, e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| VfsError::os("create_atomic", path, e))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        std::fs::read(path).map_err(|e| VfsError::os("read", path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        std::fs::rename(from, to).map_err(|e| VfsError::os("rename", from, e))
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        std::fs::remove_file(path).map_err(|e| VfsError::os("remove", path, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>, VfsError> {
        let rd = std::fs::read_dir(dir).map_err(|e| VfsError::os("list", dir, e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| VfsError::os("list", dir, e))?;
            out.push(entry.file_name().to_string_lossy().into_owned());
        }
        out.sort_unstable();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        std::fs::create_dir_all(dir).map_err(|e| VfsError::os("create_dir_all", dir, e))
    }
}

// ---------------------------------------------------------------------------
// FaultVfs: the seeded injector
// ---------------------------------------------------------------------------

/// What to inject and how often. Rates are per-op probabilities in
/// `[0, 1]`; the decision at schedule slot `i` is a pure function of
/// `(seed, i)`, so a plan replays identically.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Schedule seed.
    pub seed: u64,
    /// Per-kind injection probability, indexed like [`IoFaultKind::ALL`].
    pub rates: [f64; 6],
    /// File-name substring filter: only ops whose final path component
    /// contains one of these substrings are subject to injection (and
    /// consume schedule slots). Empty = every op is subject.
    pub only: Vec<String>,
    /// Stop injecting after this many faults (`0` = unlimited). Slots keep
    /// advancing, so the schedule prefix is unchanged by the cap.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan with every rate zero (inject nothing) under `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, rates: [0.0; 6], only: Vec::new(), max_faults: 0 }
    }

    /// Every kind at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self { seed, rates: [rate; 6], only: Vec::new(), max_faults: 0 }
    }

    /// Set one kind's rate (builder style).
    pub fn with(mut self, kind: IoFaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate;
        self
    }

    /// Restrict injection to paths whose file name contains any of
    /// `needles` (builder style).
    pub fn only_files(mut self, needles: &[&str]) -> Self {
        self.only = needles.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Cap the total number of injected faults (builder style).
    pub fn cap(mut self, max_faults: u64) -> Self {
        self.max_faults = max_faults;
        self
    }

    fn matches(&self, path: &Path) -> bool {
        if self.only.is_empty() {
            return true;
        }
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        self.only.iter().any(|needle| name.contains(needle))
    }
}

/// Exact record of what a [`FaultVfs`] did: how many ops consulted the
/// schedule and how many faults of each kind were injected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoFaultLedger {
    /// Ops that consumed a schedule slot (i.e. matched the path filter).
    pub ops: u64,
    /// Injected fault counts, indexed like [`IoFaultKind::ALL`].
    pub injected: [u64; 6],
}

impl IoFaultLedger {
    /// Injected count for one kind.
    pub fn count(&self, kind: IoFaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// One-line human rendering (`ops=N short_write=a no_space=b …`).
    pub fn render(&self) -> String {
        let mut out = format!("ops={}", self.ops);
        for kind in IoFaultKind::ALL {
            out.push_str(&format!(" {}={}", kind.label(), self.count(kind)));
        }
        out
    }
}

/// SplitMix64: the schedule's per-slot hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct FaultState {
    next_slot: u64,
    ledger: IoFaultLedger,
}

struct FaultCore {
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultCore {
    /// Consult the schedule for one op on `path`, restricted to the kinds
    /// that op can physically exhibit. Returns the injected kind plus the
    /// slot hash (for deterministic secondary choices like short-write
    /// prefix length).
    fn decide(&self, path: &Path, kinds: &[IoFaultKind]) -> (Option<IoFaultKind>, u64) {
        if !self.plan.matches(path) {
            return (None, 0);
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let slot = st.next_slot;
        st.next_slot += 1;
        st.ledger.ops += 1;
        let h = splitmix64(self.plan.seed ^ slot.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if self.plan.max_faults > 0 && st.ledger.total() >= self.plan.max_faults {
            return (None, h);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut cum = 0.0;
        for &kind in kinds {
            cum += self.plan.rates[kind.index()];
            if u < cum {
                st.ledger.injected[kind.index()] += 1;
                if kind == IoFaultKind::Corrupt {
                    // Corruption never surfaces as an error, so the retry
                    // layer cannot observe it; the injector counts it at
                    // flip time to keep reconciliation exact.
                    io_cells().fault[kind.index()].inc();
                }
                return (Some(kind), h);
            }
        }
        (None, h)
    }

    fn ledger(&self) -> IoFaultLedger {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).ledger.clone()
    }
}

impl std::fmt::Debug for FaultCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCore").field("plan", &self.plan).finish_non_exhaustive()
    }
}

/// The seeded fault injector. Wraps any [`Vfs`]; cloning shares the
/// schedule and ledger, so keep a clone to read the [`ledger`] after
/// handing the injector into a stack.
///
/// [`ledger`]: FaultVfs::ledger
#[derive(Clone, Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    core: Arc<FaultCore>,
}

const APPEND_KINDS: &[IoFaultKind] =
    &[IoFaultKind::ShortWrite, IoFaultKind::NoSpace, IoFaultKind::Transient];
const SYNC_KINDS: &[IoFaultKind] = &[IoFaultKind::SyncFailed, IoFaultKind::Transient];
const RENAME_KINDS: &[IoFaultKind] = &[IoFaultKind::RenameFailed, IoFaultKind::Transient];
const READ_KINDS: &[IoFaultKind] = &[IoFaultKind::Corrupt, IoFaultKind::Transient];
const TRANSIENT_ONLY: &[IoFaultKind] = &[IoFaultKind::Transient];

impl FaultVfs {
    /// Wrap `inner` with the injection `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        Self { inner, core: Arc::new(FaultCore { plan, state: Mutex::new(FaultState { next_slot: 0, ledger: IoFaultLedger::default() }) }) }
    }

    /// Snapshot the exact injection ledger.
    pub fn ledger(&self) -> IoFaultLedger {
        self.core.ledger()
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    core: Arc<FaultCore>,
}

impl VfsFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), VfsError> {
        match self.core.decide(&self.path, APPEND_KINDS) {
            (Some(IoFaultKind::ShortWrite), h) if !buf.is_empty() => {
                // Land a deterministic prefix, then fail — exactly what a
                // crash mid-append leaves behind.
                let k = ((h >> 17) % buf.len() as u64) as usize;
                let _ = self.inner.append(&buf[..k]);
                Err(VfsError::injected("append", &self.path, IoFaultKind::ShortWrite))
            }
            (Some(kind), _) => Err(VfsError::injected("append", &self.path, kind)),
            (None, _) => self.inner.append(buf),
        }
    }

    fn sync(&mut self) -> Result<(), VfsError> {
        match self.core.decide(&self.path, SYNC_KINDS) {
            (Some(kind), _) => Err(VfsError::injected("sync", &self.path, kind)),
            (None, _) => self.inner.sync(),
        }
    }
}

impl Vfs for FaultVfs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        if let (Some(kind), _) = self.core.decide(path, TRANSIENT_ONLY) {
            return Err(VfsError::injected("open_append", path, kind));
        }
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultFile { inner, path: path.to_path_buf(), core: Arc::clone(&self.core) }))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        match self.core.decide(path, APPEND_KINDS) {
            (Some(IoFaultKind::ShortWrite), h) if !bytes.is_empty() => {
                let k = ((h >> 17) % bytes.len() as u64) as usize;
                let _ = self.inner.write(path, &bytes[..k]);
                Err(VfsError::injected("write", path, IoFaultKind::ShortWrite))
            }
            (Some(kind), _) => Err(VfsError::injected("write", path, kind)),
            (None, _) => self.inner.write(path, bytes),
        }
    }

    fn create_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        // Three staged decisions mirror the protocol's phases. Every fault
        // confines damage to the temp sibling: the final path never holds
        // a prefix.
        let tmp = path.with_extension("tmp");
        match self.core.decide(path, APPEND_KINDS) {
            (Some(IoFaultKind::ShortWrite), h) if !bytes.is_empty() => {
                let k = ((h >> 17) % bytes.len() as u64) as usize;
                let _ = self.inner.write(&tmp, &bytes[..k]);
                return Err(VfsError::injected("create_atomic", path, IoFaultKind::ShortWrite));
            }
            (Some(kind), _) => {
                return Err(VfsError::injected("create_atomic", path, kind));
            }
            (None, _) => {}
        }
        if let (Some(kind), _) = self.core.decide(path, SYNC_KINDS) {
            let _ = self.inner.write(&tmp, bytes);
            return Err(VfsError::injected("create_atomic", path, kind));
        }
        if let (Some(kind), _) = self.core.decide(path, RENAME_KINDS) {
            let _ = self.inner.write(&tmp, bytes);
            return Err(VfsError::injected("create_atomic", path, kind));
        }
        self.inner.create_atomic(path, bytes)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        match self.core.decide(path, READ_KINDS) {
            (Some(IoFaultKind::Corrupt), h) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let at = ((h >> 17) % bytes.len() as u64) as usize;
                    let bit = 1u8 << ((h >> 13) % 8);
                    bytes[at] ^= bit;
                }
                Ok(bytes)
            }
            (Some(kind), _) => Err(VfsError::injected("read", path, kind)),
            (None, _) => self.inner.read(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        match self.core.decide(from, RENAME_KINDS) {
            (Some(kind), _) => Err(VfsError::injected("rename", from, kind)),
            (None, _) => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        match self.core.decide(path, TRANSIENT_ONLY) {
            (Some(kind), _) => Err(VfsError::injected("remove", path, kind)),
            (None, _) => self.inner.remove(path),
        }
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>, VfsError> {
        match self.core.decide(dir, TRANSIENT_ONLY) {
            (Some(kind), _) => Err(VfsError::injected("list", dir, kind)),
            (None, _) => self.inner.list(dir),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        match self.core.decide(dir, TRANSIENT_ONLY) {
            (Some(kind), _) => Err(VfsError::injected("create_dir_all", dir, kind)),
            (None, _) => self.inner.create_dir_all(dir),
        }
    }
}

// ---------------------------------------------------------------------------
// RetryVfs: bounded backoff for transient classes, counters for all
// ---------------------------------------------------------------------------

/// How [`RetryVfs`] retries transient failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per op (first try included). Minimum 1.
    pub attempts: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Multiplier applied to the sleep after each retry.
    pub factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 3 retries sleeping 200µs, 1ms, 5ms: transient blips clear, a
        // persistently failing device surfaces within ~7ms.
        Self { attempts: 4, base: Duration::from_micros(200), factor: 5 }
    }
}

struct IoCells {
    ops: &'static Counter,
    retry: &'static Counter,
    fatal: &'static Counter,
    os: &'static Counter,
    fault: [&'static Counter; 6],
}

fn io_cells() -> &'static IoCells {
    static CELLS: OnceLock<IoCells> = OnceLock::new();
    CELLS.get_or_init(|| IoCells {
        ops: metrics::counter("io.ops"),
        retry: metrics::counter("io.retry"),
        fatal: metrics::counter("io.fatal"),
        os: metrics::counter("io.fault.os"),
        fault: [
            metrics::counter(IoFaultKind::ShortWrite.counter_name()),
            metrics::counter(IoFaultKind::NoSpace.counter_name()),
            metrics::counter(IoFaultKind::SyncFailed.counter_name()),
            metrics::counter(IoFaultKind::RenameFailed.counter_name()),
            metrics::counter(IoFaultKind::Transient.counter_name()),
            metrics::counter(IoFaultKind::Corrupt.counter_name()),
        ],
    })
}

/// Cumulative `io.fault.<kind>` counter value (reconciliation helper for
/// tests and the chaos bin — take a before/after delta per schedule).
pub fn fault_counter(kind: IoFaultKind) -> u64 {
    io_cells().fault[kind.index()].get()
}

fn observe_error(e: &VfsError) {
    match e.fault() {
        Some(kind) => io_cells().fault[kind.index()].inc(),
        None => io_cells().os.inc(),
    }
}

fn with_retry<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut() -> Result<T, VfsError>,
) -> Result<T, VfsError> {
    let cells = io_cells();
    cells.ops.inc();
    let attempts = policy.attempts.max(1);
    let mut delay = policy.base;
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => {
                observe_error(&e);
                attempt += 1;
                if e.is_transient() && attempt < attempts {
                    cells.retry.inc();
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(policy.factor);
                } else {
                    cells.fatal.inc();
                    return Err(e);
                }
            }
        }
    }
}

/// Retry layer: transient failures back off and retry (bounded), fatal
/// classes surface typed, every surfaced inner error bumps its
/// `io.fault.<kind>` counter (`io.fault.os` for real OS errors) and every
/// op bumps `io.ops`. Short writes are *not* retried — the prefix already
/// landed, so a blind retry would duplicate bytes; the checksum discipline
/// downstream owns that case.
#[derive(Clone, Debug)]
pub struct RetryVfs {
    inner: Arc<dyn Vfs>,
    policy: RetryPolicy,
}

impl RetryVfs {
    /// Wrap `inner` with the default policy.
    pub fn new(inner: Arc<dyn Vfs>) -> Self {
        Self { inner, policy: RetryPolicy::default() }
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: Arc<dyn Vfs>, policy: RetryPolicy) -> Self {
        Self { inner, policy }
    }
}

struct RetryFile {
    inner: Box<dyn VfsFile>,
    policy: RetryPolicy,
}

impl VfsFile for RetryFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.append(buf))
    }

    fn sync(&mut self) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.sync())
    }
}

impl Vfs for RetryVfs {
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, VfsError> {
        let inner = with_retry(&self.policy, || self.inner.open_append(path))?;
        Ok(Box::new(RetryFile { inner, policy: self.policy }))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.write(path, bytes))
    }

    fn create_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.create_atomic(path, bytes))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, VfsError> {
        with_retry(&self.policy, || self.inner.read(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.rename(from, to))
    }

    fn remove(&self, path: &Path) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.remove(path))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>, VfsError> {
        with_retry(&self.policy, || self.inner.list(dir))
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), VfsError> {
        with_retry(&self.policy, || self.inner.create_dir_all(dir))
    }
}

// ---------------------------------------------------------------------------
// The process-global default stack
// ---------------------------------------------------------------------------

fn default_stack() -> Arc<dyn Vfs> {
    Arc::new(RetryVfs::new(Arc::new(StdVfs)))
}

fn slot() -> &'static RwLock<Arc<dyn Vfs>> {
    static SLOT: OnceLock<RwLock<Arc<dyn Vfs>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(default_stack()))
}

/// The process-global vfs every durability path uses unless handed an
/// explicit handle. Defaults to `RetryVfs(StdVfs)`.
pub fn global() -> Arc<dyn Vfs> {
    slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Replace the process-global vfs (the chaos harness installs
/// `RetryVfs(FaultVfs(StdVfs))` here). Returns the previous stack so
/// callers can restore it. Not for concurrent use from tests — prefer
/// explicit handles (`ServeConfig::vfs`, `*_with` function variants) there.
pub fn install(vfs: Arc<dyn Vfs>) -> Arc<dyn Vfs> {
    let mut guard = slot().write().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut *guard, vfs)
}

/// Reset the process-global vfs to the default `RetryVfs(StdVfs)` stack.
pub fn reset() {
    install(default_stack());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpgnn-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn std_vfs_roundtrips_every_op() {
        let dir = tmpdir("std");
        let v = StdVfs;
        let p = dir.join("a.txt");
        v.write(&p, b"hello").unwrap();
        assert_eq!(v.read(&p).unwrap(), b"hello");
        let mut f = v.open_append(&p).unwrap();
        f.append(b" world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(v.read(&p).unwrap(), b"hello world");
        let q = dir.join("b.txt");
        v.rename(&p, &q).unwrap();
        assert!(v.read(&p).is_err());
        v.create_atomic(&p, b"atomic").unwrap();
        assert!(!p.with_extension("tmp").exists());
        let mut names = v.list(&dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["a.txt".to_string(), "b.txt".to_string()]);
        v.remove(&q).unwrap();
        assert_eq!(v.list(&dir).unwrap(), vec!["a.txt".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let dir = tmpdir("det");
        let run = |seed: u64| -> (IoFaultLedger, Vec<bool>) {
            let fault = FaultVfs::new(Arc::new(StdVfs), FaultPlan::uniform(seed, 0.1));
            let mut oks = Vec::new();
            for i in 0..50 {
                let p = dir.join(format!("f{i}.txt"));
                oks.push(fault.write(&p, b"payload-bytes-here").is_ok());
            }
            (fault.ledger(), oks)
        };
        let (l1, o1) = run(7);
        let (l2, o2) = run(7);
        let (l3, _) = run(8);
        assert_eq!(l1, l2);
        assert_eq!(o1, o2);
        assert_ne!(l1, l3, "different seeds must produce different schedules");
        assert_eq!(l1.ops, 50);
        assert!(l1.total() > 0, "rate 0.1 over 50 ops should inject something: {}", l1.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn path_filter_skips_non_matching_ops_without_consuming_slots() {
        let dir = tmpdir("filter");
        let plan = FaultPlan::uniform(3, 1.0).only_files(&["target-"]);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        // Non-matching ops succeed and advance nothing.
        for i in 0..10 {
            fault.write(&dir.join(format!("other-{i}.txt")), b"x").unwrap();
        }
        assert_eq!(fault.ledger().ops, 0);
        // Matching op consumes slot 0 and faults (rate 1.0).
        assert!(fault.write(&dir.join("target-1.txt"), b"x").is_err());
        assert_eq!(fault.ledger().ops, 1);
        assert_eq!(fault.ledger().total(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_lands_a_prefix_and_fails() {
        let dir = tmpdir("short");
        let plan = FaultPlan::new(11).with(IoFaultKind::ShortWrite, 1.0);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let p = dir.join("log.txt");
        let mut f = fault.open_append(&p).unwrap(); // open is transient-only, rate 0
        let err = f.append(b"0123456789abcdef").unwrap_err();
        assert_eq!(err.fault(), Some(IoFaultKind::ShortWrite));
        let on_disk = std::fs::read(&p).unwrap();
        assert!(on_disk.len() < 16, "short write must not land the full buffer");
        assert_eq!(&b"0123456789abcdef"[..on_disk.len()], &on_disk[..]);
        assert_eq!(fault.ledger().count(IoFaultKind::ShortWrite), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_read_flips_exactly_one_bit() {
        let dir = tmpdir("corrupt");
        let p = dir.join("blob.bin");
        StdVfs.write(&p, b"immaculate-bytes").unwrap();
        let plan = FaultPlan::new(5).with(IoFaultKind::Corrupt, 1.0);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let got = fault.read(&p).unwrap();
        assert_ne!(got, b"immaculate-bytes");
        let diff: u32 = got
            .iter()
            .zip(b"immaculate-bytes")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(fault.ledger().count(IoFaultKind::Corrupt), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_atomic_faults_never_touch_the_final_path() {
        let dir = tmpdir("atomic");
        let p = dir.join("state.ckpt");
        StdVfs.write(&p, b"previous-generation").unwrap();
        for seed in 0..64u64 {
            let plan = FaultPlan::uniform(seed, 0.25);
            let fault = FaultVfs::new(Arc::new(StdVfs), plan);
            let res = fault.create_atomic(&p, b"next-generation");
            let now = std::fs::read(&p).unwrap();
            match res {
                Ok(()) => assert_eq!(now, b"next-generation"),
                Err(_) => assert_eq!(
                    now, b"previous-generation",
                    "seed {seed}: fault left a partial file at the final path"
                ),
            }
            // Restore for the next seed.
            StdVfs.write(&p, b"previous-generation").unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_clears_transient_faults_and_surfaces_fatal_ones() {
        let dir = tmpdir("retry");
        // Transient at 100% for the first fault only: attempt 1 faults,
        // attempt 2 passes (cap reached) — the caller never sees an error.
        let plan = FaultPlan::new(2).with(IoFaultKind::Transient, 1.0).cap(1);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let retry_before = io_cells().retry.get();
        let stack = RetryVfs::with_policy(
            Arc::new(fault.clone()),
            RetryPolicy { attempts: 4, base: Duration::from_micros(10), factor: 2 },
        );
        let p = dir.join("x.txt");
        stack.write(&p, b"made it").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"made it");
        assert_eq!(fault.ledger().count(IoFaultKind::Transient), 1);
        assert!(io_cells().retry.get() > retry_before);

        // ENOSPC is fatal: no retry, typed surfacing.
        let plan = FaultPlan::new(3).with(IoFaultKind::NoSpace, 1.0);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let stack = RetryVfs::with_policy(
            Arc::new(fault.clone()),
            RetryPolicy { attempts: 4, base: Duration::from_micros(10), factor: 2 },
        );
        let err = stack.write(&dir.join("y.txt"), b"nope").unwrap_err();
        assert_eq!(err.fault(), Some(IoFaultKind::NoSpace));
        assert!(!err.is_transient());
        assert_eq!(fault.ledger().count(IoFaultKind::NoSpace), 1, "fatal = exactly one attempt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_reconciles_with_fault_counters() {
        let dir = tmpdir("reconcile");
        let before: Vec<u64> = IoFaultKind::ALL.iter().map(|&k| fault_counter(k)).collect();
        let plan = FaultPlan::uniform(41, 0.15);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let stack = RetryVfs::with_policy(
            Arc::new(fault.clone()),
            RetryPolicy { attempts: 3, base: Duration::from_micros(10), factor: 2 },
        );
        for i in 0..40 {
            let p = dir.join(format!("r{i}.txt"));
            let _ = stack.create_atomic(&p, b"some checkpoint body");
            let _ = stack.read(&p);
        }
        let ledger = fault.ledger();
        assert!(ledger.total() > 0, "{}", ledger.render());
        for (i, &kind) in IoFaultKind::ALL.iter().enumerate() {
            let delta = fault_counter(kind) - before[i];
            assert_eq!(
                delta,
                ledger.count(kind),
                "kind {kind}: counter delta {delta} vs ledger {} ({})",
                ledger.count(kind),
                ledger.render()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn not_found_is_detectable_and_error_converts_to_io() {
        let e = StdVfs.read(Path::new("/definitely/not/here.txt")).unwrap_err();
        assert!(e.is_not_found());
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::NotFound);
        let inj = VfsError::injected("write", Path::new("x"), IoFaultKind::NoSpace);
        let io: std::io::Error = inj.into();
        assert_eq!(io.kind(), std::io::ErrorKind::StorageFull);
    }

    #[test]
    fn global_slot_installs_and_resets() {
        // Serialize against other tests by doing the whole dance quickly;
        // the slot is process-global.
        let prev = install(Arc::new(StdVfs));
        let g = global();
        assert!(format!("{g:?}").contains("StdVfs"));
        install(prev);
        let g = global();
        assert!(format!("{g:?}").contains("RetryVfs") || format!("{g:?}").contains("StdVfs"));
    }
}
