//! Integration tests for `tpgnn-obs`: histogram bucket boundaries, span
//! nesting and panic unwinding, JSONL round-trips through the snapshot
//! reader, and zero emission in disabled mode.
//!
//! Trace state is process-global, so every test touching the sink holds
//! `TRACE_LOCK` for its duration.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tpgnn_obs::json::Json;
use tpgnn_obs::{metrics, reader, trace};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn temp_trace(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tpgnn-obs-test-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

#[test]
fn histogram_bucket_boundaries_and_overflow() {
    let h = metrics::histogram("test.obs.boundaries", &[1.0, 10.0, 100.0]);
    // Exactly on a bound lands in that bound's bucket (inclusive upper).
    h.record(1.0);
    h.record(10.0);
    h.record(100.0);
    // Just past a bound lands in the next bucket.
    h.record(1.0001);
    // Past the last bound lands in the overflow bucket.
    h.record(100.5);
    h.record(1e9);

    let s = h.snapshot();
    assert_eq!(s.count, 6);
    let counts: Vec<u64> = s.buckets.iter().map(|&(_, c)| c).collect();
    assert_eq!(counts, vec![1, 2, 1, 2], "buckets (≤1, ≤10, ≤100, overflow)");
    assert_eq!(s.buckets[3].0, f64::INFINITY, "last bucket is the overflow bucket");
    assert_eq!(s.max, 1e9);
    // Quantiles falling in the overflow bucket report the observed max.
    assert_eq!(s.p95, 1e9);
}

#[test]
fn span_nesting_records_parent_ids() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = temp_trace("nesting");
    assert!(trace::init_to("nesting", &path));

    {
        let mut outer = trace::span("test.outer");
        outer.set("depth", 0i64);
        let outer_id = outer.id().expect("tracing enabled");
        {
            let mut inner = trace::span("test.inner");
            inner.set("depth", 1i64);
            trace::event("test.note", &[("at", Json::from("inner"))]);
            drop(inner);
        }
        let _ = outer_id;
    }
    trace::finish().expect("trace was enabled");

    let records = reader::read_trace(&path).expect("trace parses");
    let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
    let inner = records.iter().find(|r| r.name == "test.inner").unwrap();
    let note = records.iter().find(|r| r.name == "test.note").unwrap();
    assert_eq!(inner.parent, Some(outer.id), "inner span nests under outer");
    assert_eq!(note.parent, Some(inner.id), "event attaches to innermost span");
    assert_eq!(note.level, "info");
    assert!(inner.dur_us.is_some() && outer.dur_us.is_some());
    assert!(outer.dur_us >= inner.dur_us, "outer span encloses inner");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn span_stack_unwinds_on_panic() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = temp_trace("unwind");
    assert!(trace::init_to("unwind", &path));

    let result = std::panic::catch_unwind(|| {
        let _outer = trace::span("test.unwind.outer");
        let _inner = trace::span("test.unwind.inner");
        panic!("boom");
    });
    assert!(result.is_err(), "panic propagates");

    // After unwinding, no span is left open: a fresh span gets no parent.
    {
        let fresh = trace::span("test.unwind.fresh");
        assert!(fresh.id().is_some());
    }
    trace::finish().expect("trace was enabled");

    let records = reader::read_trace(&path).expect("trace parses after panic");
    let fresh = records.iter().find(|r| r.name == "test.unwind.fresh").unwrap();
    assert_eq!(fresh.parent, None, "stack fully unwound by panic");
    // Both panicked spans still flushed their lines on Drop.
    assert!(records.iter().any(|r| r.name == "test.unwind.outer"));
    assert!(records.iter().any(|r| r.name == "test.unwind.inner"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn jsonl_lines_round_trip_through_reader() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = temp_trace("roundtrip");
    assert!(trace::init_to("roundtrip", &path));

    {
        let mut s = trace::span("test.roundtrip");
        s.set("loss", 0.693_f64);
        s.set("epoch", 3i64);
        s.set("model", "tp-gnn");
        s.set("nan", f64::NAN); // must serialize as null, not break parsing
    }
    trace::warn("test.warned", &[("reason", Json::from("synthetic"))]);
    trace::finish().expect("trace was enabled");

    let records = reader::read_trace(&path).expect("every line parses");
    assert_eq!(records[0].kind, "meta");
    assert_eq!(records[0].name, "roundtrip");
    let s = records.iter().find(|r| r.name == "test.roundtrip").unwrap();
    assert_eq!(s.field("loss").and_then(Json::as_f64), Some(0.693));
    assert_eq!(s.field("epoch").and_then(Json::as_i64), Some(3));
    assert_eq!(s.field("model").and_then(Json::as_str), Some("tp-gnn"));
    assert_eq!(s.field("nan"), Some(&Json::Null));
    let w = records.iter().find(|r| r.name == "test.warned").unwrap();
    assert_eq!(w.level, "warn");
    assert_eq!(w.field("reason").and_then(Json::as_str), Some("synthetic"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_snapshot_written_next_to_trace() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = temp_trace("metrics");
    assert!(trace::init_to("metrics-sidecar", &path));
    metrics::counter("test.obs.sidecar").add(2);
    trace::finish().expect("trace was enabled");

    let metrics_path = path.parent().unwrap().join("metrics-metrics-sidecar.json");
    let text = std::fs::read_to_string(&metrics_path).expect("metrics sidecar written");
    let j = tpgnn_obs::json::parse(&text).expect("metrics JSON parses");
    let v = j
        .get("counters")
        .and_then(|c| c.get("test.obs.sidecar"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(v >= 2);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&metrics_path);
}

#[test]
fn disabled_mode_emits_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // No init: tracing is disabled (TPGNN_TRACE is not consulted here at
    // all — only `init` reads it, and we never call it).
    assert!(!trace::enabled());
    let path = temp_trace("disabled");

    {
        let mut s = trace::span("test.disabled");
        s.set("ignored", 1i64);
        assert!(s.id().is_none(), "disabled spans have no identity");
        trace::event("test.disabled.event", &[]);
        trace::warn("test.disabled.warn", &[]);
    }
    assert!(trace::finish().is_none(), "finish is a no-op when disabled");
    assert!(!path.exists(), "no sink file is ever created");
}
