//! # tpgnn-par
//!
//! Deterministic scoped worker pool for the TP-GNN reproduction.
//!
//! The whole workspace is built around bitwise reproducibility (same seed ⇒
//! same bits, see `tests/determinism.rs`), so this pool makes determinism a
//! structural property rather than a hope:
//!
//! * **Input-order reduction** — [`map_indexed`] / [`map_with`] /
//!   [`map_mut`] always return results in input order, regardless of which
//!   worker finished first. Scheduling order can never leak into output
//!   order.
//! * **Task-index identity** — closures receive the *item index*, never a
//!   worker id, so any per-task seeding ([`task_seed`]) depends only on the
//!   task's position in the input.
//! * **No nested fan-out** — a `map_*` call issued from inside a worker task
//!   runs sequentially inline, so parallelizing an outer loop cannot change
//!   how inner loops reduce (and thread counts stay bounded).
//!
//! Together these make every `map_*` result bitwise-identical at any thread
//! count: the same closures run on the same items with the same per-item
//! state, and the reduction order is the input order.
//!
//! Thread count: `TPGNN_THREADS` (a value of `1` forces the sequential
//! no-thread path), defaulting to [`std::thread::available_parallelism`].
//! Tests pin the width with [`with_thread_override`] instead of mutating the
//! environment.
//!
//! Workers are scoped ([`std::thread::scope`]): they borrow the caller's
//! stack, and a panicking task propagates to the caller when the scope
//! closes — no poisoned global pool, no deadlock.
//!
//! Pool utilization is exported through `tpgnn-obs`: `pool.tasks`,
//! `pool.workers`, `pool.queue_depth`, and a `pool.task_ms` histogram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::Instant;

use tpgnn_obs::metrics::{self, Counter, Gauge, Histogram};

fn pool_tasks() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("pool.tasks"))
}

fn pool_workers() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| metrics::gauge("pool.workers"))
}

fn pool_queue_depth() -> &'static Gauge {
    static G: OnceLock<&'static Gauge> = OnceLock::new();
    G.get_or_init(|| metrics::gauge("pool.queue_depth"))
}

fn pool_task_ms() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        metrics::histogram("pool.task_ms", &metrics::exponential_buckets(0.25, 4.0, 12))
    })
}

thread_local! {
    /// Set while the current thread is executing a pool task; nested maps
    /// take the sequential path.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Test hook: overrides the configured thread count on this thread.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Whether the current thread is executing inside a pool worker task.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Restores the previous override even on unwind.
struct OverrideScope {
    prev: Option<usize>,
}

impl Drop for OverrideScope {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Run `f` with the pool width pinned to `n` on this thread (and any
/// top-level `map_*` it issues). Intended for tests that prove bitwise
/// identity across thread counts without mutating `TPGNN_THREADS`.
pub fn with_thread_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _scope = OverrideScope { prev };
    f()
}

/// The configured pool width: the per-thread test override, else
/// `TPGNN_THREADS`, else [`std::thread::available_parallelism`].
///
/// A width of `1` means "never spawn": every `map_*` call runs inline on the
/// calling thread.
pub fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Ok(v) = std::env::var("TPGNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Width actually used for a job of `n` tasks: 1 when sequential execution
/// is forced (single task, width 1, or already inside a worker).
fn effective_width(n: usize) -> usize {
    if n <= 1 || in_worker() {
        return 1;
    }
    configured_threads().min(n)
}

/// Mix `base` and a task index into a decorrelated 64-bit seed
/// (SplitMix64 finalizer). Depends only on the inputs — never on
/// scheduling — so seeded per-task RNG streams are reproducible at any
/// thread count.
pub fn task_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel map collecting results **in input order**: `f(i, &items[i])`
/// for every `i`, with tasks distributed over [`configured_threads`]
/// workers. Bitwise-equivalent to the sequential loop at any thread count.
///
/// A panic in any task propagates to the caller after the remaining workers
/// drain (no deadlock, no partial result).
pub fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(items, || (), |(), i, t| f(i, t))
}

/// [`map_indexed`] with worker-local scratch state: each worker builds one
/// `S` via `mk_state` and threads it through every task it executes (e.g. a
/// reusable [`Tape`](../tpgnn_tensor/struct.Tape.html)).
///
/// Determinism contract: `S` is *scratch* — `f` must produce the same `R`
/// for a given `(i, item)` regardless of which tasks previously used the
/// state (reset it, or only reuse allocations).
pub fn map_with<S, T, R, MS, F>(items: &[T], mk_state: MS, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let width = effective_width(n);
    pool_tasks().add(n as u64);
    if width <= 1 {
        let mut state = mk_state();
        return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
    }
    pool_workers().set(width as f64);

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = std::thread::scope(|scope| {
        for _ in 0..width {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let mk_state = &mk_state;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut state = mk_state();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    pool_queue_depth().set(n.saturating_sub(i + 1) as f64);
                    let t0 = Instant::now();
                    let r = f(&mut state, i, &items[i]);
                    pool_task_ms().record(t0.elapsed().as_secs_f64() * 1e3);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
                // Scoped: IN_WORKER dies with the thread; no reset needed.
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // Ends when every worker has dropped its sender — including by
        // panic unwinding, so a failed task cannot deadlock the collector.
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out
        // `scope` joins here and re-raises any worker panic.
    });
    pool_queue_depth().set(0.0);
    if out.iter().any(Option::is_none) {
        // Only reachable if a worker died without panicking the scope,
        // which std::thread::scope does not allow — defensive.
        panic!("pool: worker exited without completing its tasks");
    }
    out.iter_mut().map(|slot| slot.take().expect("checked above")).collect()
}

/// Parallel map over **mutable** items, collecting results in input order.
///
/// Items are split into one contiguous chunk per worker (deterministic
/// partition: a function of `len` and width only), so each task owns
/// disjoint `&mut` slices without any locking. Like [`map_with`], each
/// worker gets one `mk_state` scratch value.
pub fn map_mut<S, T, R, MS, F>(items: &mut [T], mk_state: MS, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let width = effective_width(n);
    pool_tasks().add(n as u64);
    if width <= 1 {
        let mut state = mk_state();
        return items.iter_mut().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
    }
    pool_workers().set(width as f64);

    let chunk_len = n.div_ceil(width);
    let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
    let mut gathered: Vec<Option<Vec<R>>> = std::thread::scope(|scope| {
        let mut num_chunks = 0;
        for (chunk_idx, chunk) in items.chunks_mut(chunk_len).enumerate() {
            num_chunks += 1;
            let tx = tx.clone();
            let f = &f;
            let mk_state = &mk_state;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut state = mk_state();
                let base = chunk_idx * chunk_len;
                let mut results = Vec::with_capacity(chunk.len());
                for (off, item) in chunk.iter_mut().enumerate() {
                    let t0 = Instant::now();
                    results.push(f(&mut state, base + off, item));
                    pool_task_ms().record(t0.elapsed().as_secs_f64() * 1e3);
                }
                let _ = tx.send((chunk_idx, results));
            });
        }
        drop(tx);
        let mut gathered: Vec<Option<Vec<R>>> = (0..num_chunks).map(|_| None).collect();
        for (idx, rs) in rx {
            gathered[idx] = Some(rs);
        }
        gathered
    });
    let mut out = Vec::with_capacity(n);
    for slot in gathered.iter_mut() {
        out.extend(slot.take().expect("scope propagates worker panics"));
    }
    out
}

/// Run `f(chunk_idx, chunk)` over contiguous `chunk_len`-sized pieces of
/// `data`, one scoped worker per chunk (callers size `chunk_len` so the
/// chunk count ≈ pool width). The row-parallel matmul kernels use this to
/// hand disjoint output-row ranges to workers — the per-element arithmetic
/// inside each chunk is the sequential kernel, so results are
/// bitwise-identical to a single-threaded pass.
///
/// Falls back to an inline loop when sequential execution is forced.
pub fn scoped_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "scoped_chunks requires a positive chunk length");
    let num_chunks = data.len().div_ceil(chunk_len.max(1));
    if effective_width(num_chunks) <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    pool_tasks().add(num_chunks as u64);
    std::thread::scope(|scope| {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(idx, chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_seed_is_pure_and_spread() {
        assert_eq!(task_seed(42, 3), task_seed(42, 3));
        assert_ne!(task_seed(42, 3), task_seed(42, 4));
        assert_ne!(task_seed(42, 3), task_seed(43, 3));
    }

    #[test]
    fn effective_width_respects_override() {
        with_thread_override(7, || {
            assert_eq!(configured_threads(), 7);
            assert_eq!(effective_width(100), 7);
            assert_eq!(effective_width(3), 3);
            assert_eq!(effective_width(1), 1);
        });
        with_thread_override(1, || {
            assert_eq!(effective_width(100), 1);
        });
    }

    #[test]
    fn override_restores_on_unwind() {
        let before = configured_threads();
        let _ = std::panic::catch_unwind(|| {
            with_thread_override(5, || panic!("boom"));
        });
        assert_eq!(configured_threads(), before);
    }
}
