//! Contract tests for the deterministic pool: input-order results under
//! adversarial task durations, panic propagation without deadlock, and the
//! forced-sequential (`TPGNN_THREADS=1`) path.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Duration;

use tpgnn_par as par;

/// Results come back in input order even when early tasks are the slowest.
#[test]
fn map_indexed_preserves_input_order_under_adversarial_durations() {
    let items: Vec<usize> = (0..64).collect();
    let out = par::with_thread_override(4, || {
        par::map_indexed(&items, |i, &x| {
            // Earlier tasks sleep longer, so completion order is roughly the
            // reverse of input order on a real multi-core box.
            if i < 8 {
                std::thread::sleep(Duration::from_millis((8 - i as u64) * 3));
            }
            x * 10 + 1
        })
    });
    let expect: Vec<usize> = items.iter().map(|&x| x * 10 + 1).collect();
    assert_eq!(out, expect);
}

/// Parallel output is element-for-element identical to the sequential path.
#[test]
fn parallel_matches_sequential_bitwise() {
    let items: Vec<f32> = (0..200).map(|i| i as f32 * 0.37 - 5.0).collect();
    let f = |i: usize, x: &f32| (x.sin() * (i as f32 + 1.0).sqrt()).to_bits();
    let seq = par::with_thread_override(1, || par::map_indexed(&items, f));
    let par4 = par::with_thread_override(4, || par::map_indexed(&items, f));
    let par9 = par::with_thread_override(9, || par::map_indexed(&items, f));
    assert_eq!(seq, par4);
    assert_eq!(seq, par9);
}

/// A panicking task propagates to the caller instead of deadlocking the
/// collector, and the remaining workers wind down cleanly.
#[test]
fn worker_panic_propagates_without_deadlock() {
    let items: Vec<usize> = (0..32).collect();
    let result = std::panic::catch_unwind(|| {
        par::with_thread_override(4, || {
            par::map_indexed(&items, |i, _| {
                if i == 13 {
                    panic!("task 13 failed");
                }
                std::thread::sleep(Duration::from_millis(1));
                i
            })
        })
    });
    assert!(result.is_err(), "worker panic must reach the caller");
}

/// Width 1 never spawns: every task runs on the calling thread.
#[test]
fn width_one_takes_the_no_thread_path() {
    let caller = std::thread::current().id();
    let items: Vec<usize> = (0..16).collect();
    let ids: Vec<ThreadId> = par::with_thread_override(1, || {
        par::map_indexed(&items, |_, _| std::thread::current().id())
    });
    assert!(ids.iter().all(|&id| id == caller), "TPGNN_THREADS=1 must not spawn");
    // And the inline path is not flagged as a worker context.
    par::with_thread_override(1, || {
        par::map_indexed(&[0usize], |_, _| assert!(!par::in_worker()));
    });
}

/// With width > 1, tasks do run on spawned worker threads.
#[test]
fn wide_pool_uses_worker_threads() {
    let caller = std::thread::current().id();
    let items: Vec<usize> = (0..16).collect();
    let ids: Vec<ThreadId> = par::with_thread_override(4, || {
        par::map_indexed(&items, |_, _| {
            std::thread::sleep(Duration::from_millis(1));
            assert!(par::in_worker());
            std::thread::current().id()
        })
    });
    assert!(ids.iter().all(|&id| id != caller), "tasks must run on pool workers");
}

/// A map issued from inside a worker task runs sequentially inline — no
/// nested fan-out, so thread count stays bounded by the outer pool.
#[test]
fn nested_map_runs_inline_on_the_worker() {
    let outer: Vec<usize> = (0..4).collect();
    let nested_ids = par::with_thread_override(4, || {
        par::map_indexed(&outer, |_, _| {
            let me = std::thread::current().id();
            let inner: Vec<usize> = (0..8).collect();
            let ids = par::map_indexed(&inner, |_, _| std::thread::current().id());
            ids.into_iter().all(|id| id == me)
        })
    });
    assert!(nested_ids.into_iter().all(|ok| ok), "nested maps must stay on their worker");
}

/// `map_with` builds one state per worker and reuses it across that
/// worker's tasks.
#[test]
fn map_with_reuses_worker_local_state() {
    static STATES_BUILT: AtomicUsize = AtomicUsize::new(0);
    let items: Vec<usize> = (0..64).collect();
    STATES_BUILT.store(0, Ordering::SeqCst);
    let out = par::with_thread_override(4, || {
        par::map_with(
            &items,
            || {
                STATES_BUILT.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, i, &x| {
                scratch.push(i);
                x + scratch.len()
            },
        )
    });
    assert_eq!(out.len(), 64);
    let built = STATES_BUILT.load(Ordering::SeqCst);
    assert!(built <= 4, "at most one state per worker, got {built}");
    assert!(built >= 1);
}

/// `map_mut` mutates every item exactly once and returns input-order results.
#[test]
fn map_mut_covers_all_items_in_order() {
    let mut items: Vec<u64> = (0..37).collect();
    let out = par::with_thread_override(4, || {
        par::map_mut(
            &mut items,
            || (),
            |(), i, x| {
                *x += 100;
                (i as u64, *x)
            },
        )
    });
    assert_eq!(items, (100u64..137).collect::<Vec<_>>());
    assert_eq!(out, (0u64..37).map(|i| (i, i + 100)).collect::<Vec<_>>());
}

/// `scoped_chunks` hands out disjoint chunks exactly once, in any order.
#[test]
fn scoped_chunks_partitions_exactly() {
    let mut data: Vec<usize> = vec![0; 23];
    let seen = Mutex::new(HashSet::new());
    par::with_thread_override(4, || {
        par::scoped_chunks(&mut data, 5, |idx, chunk| {
            assert!(seen.lock().unwrap().insert(idx), "chunk {idx} visited twice");
            for v in chunk.iter_mut() {
                *v += idx + 1;
            }
        });
    });
    assert_eq!(seen.lock().unwrap().len(), 5);
    assert!(data.iter().all(|&v| v > 0), "every element touched exactly once");
}

/// Task seeds depend on (base, index) only — never on scheduling — so the
/// seed stream is identical at any width.
#[test]
fn task_seeds_are_schedule_independent() {
    let items: Vec<u64> = (0..50).collect();
    let f = |i: usize, _: &u64| par::task_seed(42, i as u64);
    let seq = par::with_thread_override(1, || par::map_indexed(&items, f));
    let wide = par::with_thread_override(8, || par::map_indexed(&items, f));
    assert_eq!(seq, wide);
    let distinct: HashSet<u64> = seq.iter().copied().collect();
    assert_eq!(distinct.len(), items.len(), "seeds must be decorrelated");
}
