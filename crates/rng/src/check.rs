//! Seeded property-testing harness replacing `proptest`.
//!
//! Design: each test runs `N` cases. Case `i` gets an independent seed
//! derived from a SplitMix64 stream keyed by the test name, a fresh
//! [`StdRng`] is seeded with it, the test's generator builds an input from
//! that rng, and the property closure runs. On a panic inside the property,
//! the harness re-panics with the **failing case seed** and a one-line
//! reproduction command — there is no shrinking; the seed *is* the
//! reproducer.
//!
//! Environment knobs:
//!
//! * `TPGNN_PROP_SEED=<u64 or 0x-hex>` — run exactly one case with that
//!   seed (what the failure message tells you to do),
//! * `TPGNN_PROP_CASES=<n>` — override the per-test case count (e.g. crank
//!   to 10 000 locally, or set 1 for a smoke pass).
//!
//! ```
//! use tpgnn_rng::{check, Rng};
//!
//! check::cases("doubling_is_even", 64, |rng| rng.random_range(0i64..1000), |&n| {
//!     assert_eq!((n * 2) % 2, 0);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::{splitmix64, SeedableRng, StdRng};

/// FNV-1a hash of the test name: keys the per-test seed stream so distinct
/// tests explore distinct inputs even with identical generators.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var}={raw} is not a u64 (decimal or 0x-hex)"),
    }
}

/// Extract a printable message from a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `property` against `default_cases` generated inputs.
///
/// `name` should be the `#[test]` function name — it keys the seed stream
/// and appears in the reproduction command on failure. The generator
/// receives a case-seeded [`StdRng`]; the property receives the generated
/// input by reference and signals failure by panicking (plain `assert!`
/// works).
pub fn cases<T, G, P>(name: &str, default_cases: u32, mut generate: G, mut property: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    P: FnMut(&T),
{
    let (case_seeds, pinned) = match env_u64("TPGNN_PROP_SEED") {
        Some(seed) => (vec![seed], true),
        None => {
            let n = env_u64("TPGNN_PROP_CASES")
                .map_or(default_cases, |v| u32::try_from(v).unwrap_or(u32::MAX));
            let mut stream = fnv1a(name);
            ((0..n).map(|_| splitmix64(&mut stream)).collect(), false)
        }
    };
    let total = case_seeds.len();
    for (i, &case_seed) in case_seeds.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let input = generate(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&input)));
        if let Err(payload) = outcome {
            let mut shown = format!("{input:?}");
            if shown.len() > 800 {
                shown.truncate(800);
                shown.push_str("… (truncated)");
            }
            panic!(
                "property '{name}' failed on case {idx}/{total} (case seed {case_seed:#018x}{pin})\n\
                 input: {shown}\n\
                 reproduce with: TPGNN_PROP_SEED={case_seed:#x} cargo test -q {name}\n\
                 cause: {cause}",
                idx = i + 1,
                pin = if pinned { ", pinned via TPGNN_PROP_SEED" } else { "" },
                cause = payload_message(&*payload),
            );
        }
    }
}

/// Like [`cases`], but the property also receives the case rng (already
/// advanced past generation) for tests that need extra randomness — e.g.
/// random probe directions — without plumbing a second generator.
pub fn cases_with_rng<T, G, P>(name: &str, default_cases: u32, mut generate: G, mut property: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    P: FnMut(&T, &mut StdRng),
{
    cases(
        name,
        default_cases,
        |rng| {
            let input = generate(rng);
            (input, rng.clone())
        },
        |(input, rng)| property(input, &mut rng.clone()),
    );
}

/// Generator helper: a `Vec<f32>` of length `len` uniform on `[lo, hi)`.
/// The common input shape for tensor-valued properties.
pub fn vec_f32(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    use crate::Rng;
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        cases(
            "passing_property_runs_all_cases",
            17,
            |rng| rng.random_range(0u64..100),
            |_| count += 1,
        );
        // One generate+property pair per case, no TPGNN_PROP_SEED set in CI.
        if std::env::var("TPGNN_PROP_SEED").is_err() {
            assert_eq!(count, 17);
        }
    }

    #[test]
    fn failing_property_reports_seed_and_repro() {
        let result = catch_unwind(|| {
            cases(
                "failing_property_reports_seed",
                8,
                |rng| rng.random_range(0u64..100),
                |_| panic!("intentional failure"),
            );
        });
        let msg = payload_message(&*result.expect_err("property must fail"));
        assert!(msg.contains("failing_property_reports_seed"), "{msg}");
        assert!(msg.contains("TPGNN_PROP_SEED="), "{msg}");
        assert!(msg.contains("intentional failure"), "{msg}");
        assert!(msg.contains("case 1/"), "{msg}");
    }

    #[test]
    fn case_inputs_are_deterministic_per_test_name() {
        let collect = || {
            let mut v = Vec::new();
            cases(
                "case_inputs_are_deterministic",
                5,
                |rng| rng.next_u64(),
                |&x| v.push(x),
            );
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_test_names_get_distinct_streams() {
        let first_input = |name: &str| {
            let mut first = None;
            cases(name, 1, |rng| rng.next_u64(), |&x| first = Some(x));
            first.unwrap()
        };
        if std::env::var("TPGNN_PROP_SEED").is_err() {
            assert_ne!(first_input("stream_a"), first_input("stream_b"));
        }
    }
}
