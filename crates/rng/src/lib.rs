//! # tpgnn-rng
//!
//! Hermetic, dependency-free random number generation for the TP-GNN
//! reproduction. The workspace builds fully offline, so instead of the
//! `rand` crate this module provides:
//!
//! * [`StdRng`] — a seedable **xoshiro256++** generator whose 256-bit state
//!   is expanded from a `u64` seed with **SplitMix64** (the initialization
//!   recommended by the xoshiro authors),
//! * [`SeedableRng`] / [`Rng`] / [`SliceRandom`] — traits mirroring the
//!   exact `rand` 0.9 API surface the codebase uses (`seed_from_u64`,
//!   `random`, `random_range`, `random_bool`, `shuffle`) plus Gaussian
//!   sampling ([`Rng::normal_f32`] / [`Rng::normal_f64`]) for initializers,
//! * [`rngs`] / [`seq`] — module aliases so a former `use rand::rngs::StdRng`
//!   ports as `use tpgnn_rng::rngs::StdRng` without touching call sites,
//! * [`check`] — a small seeded property-testing harness replacing
//!   `proptest` (deterministic case generation, failing-seed reporting).
//!
//! The stream is platform-independent: only wrapping integer arithmetic,
//! shifts, and IEEE-754 multiplications by powers of two are used, so the
//! same seed produces bitwise-identical samples on every target. This is
//! load-bearing for the determinism tests guarding reproducibility.

#![warn(missing_docs)]

pub mod check;

/// One step of SplitMix64: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state and by the
/// [`check`] harness to derive independent per-case seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generator trait (mirror of `rand::SeedableRng`'s
/// `seed_from_u64`, the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: **xoshiro256++**.
///
/// Chosen over a cryptographic generator (rand's `StdRng` is ChaCha12)
/// because every use here is simulation/initialization, where speed and
/// reproducibility matter and adversarial prediction does not. Passes
/// BigCrush; period `2^256 - 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // SplitMix64 never emits four zeros in a row, so `s` is a valid
        // (non-degenerate) xoshiro state for every seed, including 0.
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Sampling methods available on any generator, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator; everything else derives
    /// from it.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of type `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`), matching the
    /// semantics of `rand::Rng::random_range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} not in [0, 1]");
        f64::standard_sample(self) < p
    }

    /// A standard-normal `f32` sample (Box–Muller transform).
    fn normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        self.normal_f64() as f32
    }

    /// A standard-normal `f64` sample (Box–Muller transform).
    fn normal_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // Guard u1 away from 0 so ln() stays finite.
        let u1 = f64::standard_sample(self).max(f64::MIN_POSITIVE);
        let u2 = f64::standard_sample(self);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Types with a canonical "whole domain" distribution for [`Rng::random`].
pub trait StandardSample {
    /// Draw one sample from `rng`'s output stream.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Debiased bounded sample in `[0, span)` via Lemire's multiply-shift
/// rejection method. `span` must be nonzero.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types uniformly sampleable from a range (mirror of
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/usize domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = StandardSample::standard_sample(rng);
                // u ∈ [0, 1) keeps the result in [lo, hi) for finite spans.
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = StandardSample::standard_sample(rng);
                let v = lo + u * (hi - lo);
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "random_range: empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + std::fmt::Debug> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range {lo:?}..={hi:?}");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Slice shuffling (mirror of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Path-compatibility alias so `use tpgnn_rng::rngs::StdRng` ports verbatim.
pub mod rngs {
    pub use super::StdRng;
}

/// Path-compatibility alias so `use rand::seq::SliceRandom` ports verbatim.
pub mod seq {
    pub use super::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned reference vector (SplitMix64(1) state expansion, then
    /// xoshiro256++): guards the stream against accidental drift, which
    /// would silently change every simulator and initializer downstream
    /// and break the cross-session determinism tests.
    #[test]
    fn matches_reference_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let expect: [u64; 6] = [
            0xCFC5_D07F_6F03_C29B,
            0xBF42_4132_963F_E08D,
            0x19A3_7D57_57AA_F520,
            0xBF08_119F_05CD_56D6,
            0x2F47_184B_8618_6FA4,
            0x9729_9FCA_E720_2345,
        ];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "stream drift at output {i}");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3usize..3);
    }

    #[test]
    fn negative_float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x = rng.random_range(-0.06f32..0.06);
            assert!((-0.06..0.06).contains(&x));
        }
    }

    #[test]
    fn signed_integer_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
