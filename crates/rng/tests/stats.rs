//! Statistical sanity tests for `tpgnn-rng`: the generator feeding every
//! simulator and initializer in the workspace must actually be uniform /
//! normal to the tolerances the downstream tests assume.
//!
//! Tolerances are sized for n = 100 000 samples: the standard error of the
//! mean of U(0,1) is ~0.0009, of N(0,1) ~0.0032; bounds are ~6σ so a
//! correct generator fails with negligible probability, while a broken
//! bit-twiddle (wrong shift, biased modulo) fails immediately.

use tpgnn_rng::{check, Rng, SeedableRng, SliceRandom, StdRng};

const N: usize = 100_000;

#[test]
fn uniform_f64_mean_and_variance() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let samples: Vec<f64> = (0..N).map(|_| rng.random::<f64>()).collect();
    let mean = samples.iter().sum::<f64>() / N as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
    assert!((mean - 0.5).abs() < 0.006, "uniform mean drifted: {mean}");
    // U(0,1) variance is 1/12 ≈ 0.0833.
    assert!((var - 1.0 / 12.0).abs() < 0.004, "uniform variance drifted: {var}");
}

#[test]
fn uniform_f32_histogram_is_flat() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let mut bins = [0usize; 16];
    for _ in 0..N {
        let x: f32 = rng.random();
        bins[(x * 16.0) as usize] += 1;
    }
    let expect = N / 16;
    for (i, &count) in bins.iter().enumerate() {
        let rel = (count as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.06, "bin {i}: {count} vs expected {expect}");
    }
}

#[test]
fn normal_mean_variance_and_tails() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let samples: Vec<f64> = (0..N).map(|_| rng.normal_f64()).collect();
    let mean = samples.iter().sum::<f64>() / N as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
    assert!(mean.abs() < 0.02, "normal mean drifted: {mean}");
    assert!((var - 1.0).abs() < 0.03, "normal variance drifted: {var}");
    // P(|Z| > 1.96) ≈ 0.05; a uniform masquerading as a normal has no tail.
    let tail = samples.iter().filter(|x| x.abs() > 1.96).count() as f64 / N as f64;
    assert!((tail - 0.05).abs() < 0.006, "two-sided 5% tail mass was {tail}");
}

#[test]
fn gen_range_bounds_respected_for_all_numeric_kinds() {
    check::cases(
        "gen_range_bounds_respected_for_all_numeric_kinds",
        64,
        |rng| rng.next_u64(),
        |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                let u = rng.random_range(3usize..17);
                assert!((3..17).contains(&u), "usize half-open violated: {u}");
                let v = rng.random_range(3usize..=17);
                assert!((3..=17).contains(&v), "usize inclusive violated: {v}");
                let i = rng.random_range(-40i64..-7);
                assert!((-40..-7).contains(&i), "i64 half-open violated: {i}");
                let f = rng.random_range(-0.25f32..0.25);
                assert!((-0.25..0.25).contains(&f), "f32 half-open violated: {f}");
                let d = rng.random_range(0.1f64..=0.5);
                assert!((0.1..=0.5).contains(&d), "f64 inclusive violated: {d}");
            }
        },
    );
}

#[test]
fn gen_range_single_value_inclusive_is_constant() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..50 {
        assert_eq!(rng.random_range(4usize..=4), 4);
    }
}

#[test]
fn gen_range_small_span_is_unbiased() {
    // A modulo-biased bounded sampler over span 3 from 64 bits would show
    // ~1e-19 relative bias — undetectable — but a *truncation* bug (e.g.
    // using the low 32 bits twice) shows up as visible skew. 6σ for a
    // trinomial cell with p=1/3, n=90000 is ~0.9%.
    let mut rng = StdRng::seed_from_u64(77);
    let mut counts = [0usize; 3];
    let n = 90_000;
    for _ in 0..n {
        counts[rng.random_range(0usize..3)] += 1;
    }
    for (i, &count) in counts.iter().enumerate() {
        let rel = (count as f64 - n as f64 / 3.0).abs() / (n as f64 / 3.0);
        assert!(rel < 0.02, "value {i} frequency off: {count}/{n}");
    }
}

#[test]
fn shuffle_is_a_permutation() {
    check::cases(
        "shuffle_is_a_permutation",
        64,
        |rng| {
            let len = rng.random_range(0usize..40);
            (rng.next_u64(), len)
        },
        |&(seed, len)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..len).collect();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..len).collect::<Vec<_>>(), "shuffle lost or duplicated elements");
        },
    );
}

#[test]
fn shuffle_positions_are_uniform() {
    // Track where element 0 of a 4-element slice lands over many shuffles:
    // each position must be hit ~25% of the time (Fisher–Yates uniformity).
    let mut rng = StdRng::seed_from_u64(123);
    let trials = 40_000;
    let mut landed = [0usize; 4];
    for _ in 0..trials {
        let mut v = [0usize, 1, 2, 3];
        v.shuffle(&mut rng);
        let pos = v.iter().position(|&x| x == 0).unwrap();
        landed[pos] += 1;
    }
    for (pos, &count) in landed.iter().enumerate() {
        let rel = (count as f64 - trials as f64 / 4.0).abs() / (trials as f64 / 4.0);
        assert!(rel < 0.05, "position {pos} hit {count}/{trials} times");
    }
}

#[test]
fn random_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(31);
    for p in [0.0, 0.05, 0.5, 0.95, 1.0] {
        let hits = (0..N).filter(|_| rng.random_bool(p)).count() as f64 / N as f64;
        assert!((hits - p).abs() < 0.005, "random_bool({p}) frequency {hits}");
    }
}
