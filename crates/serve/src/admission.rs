//! Admission control: the deterministic load-shedding ladder.
//!
//! All shedding decisions are taken by the coordinator at batch
//! boundaries, as a pure function of configuration and committed traffic —
//! never inside the parallel shard fan-out and never from wall-clock
//! state. That makes overload behaviour reproducible: the same batches
//! shed the same sessions at any pool width, which is what lets crash
//! recovery re-derive evictions instead of journaling them.
//!
//! The ladder degrades in order of harm:
//! 1. **suspend Early scoring** — mid-session scores are skipped (and
//!    counted) while pressure is above [`Budget::shed_early_at`];
//! 2. **evict idle sessions** — LRU by `(last_active_batch, session)`,
//!    spilled to disk and transparently restored on their next edge;
//! 3. **refuse new admissions** — only when eviction cannot free enough,
//!    excess *new* sessions are refused in batch arrival order (earliest
//!    arrivals keep their slot); every refused event is counted and
//!    attributed in the fault ledger, never silently dropped.

/// Admission budgets. `0` means unbounded (that rung never triggers).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Budget {
    /// Maximum sessions resident in memory.
    pub max_resident: usize,
    /// Maximum total buffered edges (released edge logs + reorder buffers).
    pub max_buffered_edges: usize,
    /// Pressure fraction at which Early scoring suspends (rung 1).
    pub shed_early_at: f64,
    /// Whether a spill directory is configured (rung 2 needs one).
    pub can_spill: bool,
}

impl Budget {
    /// Whether any budget is configured at all.
    pub fn bounded(&self) -> bool {
        self.max_resident > 0 || self.max_buffered_edges > 0
    }
}

/// What the coordinator sees at a batch boundary.
#[derive(Clone, Debug, Default)]
pub(crate) struct LoadView {
    /// Sessions currently resident in memory.
    pub resident: usize,
    /// Buffered edges across resident sessions.
    pub buffered_edges: usize,
    /// Events in this batch.
    pub batch_events: usize,
    /// Spilled sessions this batch will restore.
    pub restores: usize,
    /// Sessions this batch would newly open: `(session, events-in-batch)`,
    /// in first-arrival order.
    pub new_sessions: Vec<(u64, usize)>,
    /// Resident sessions with no events this batch: eviction candidates.
    pub idle: Vec<IdleSession>,
}

/// One eviction candidate.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IdleSession {
    pub session: u64,
    pub shard: usize,
    /// Last batch in which this session received events (LRU key).
    pub last_active_batch: usize,
    /// Buffered edges this eviction would free.
    pub cost_edges: usize,
}

/// The ladder's verdict for one batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct ShedPlan {
    /// Rung 1: skip Early scores this batch.
    pub suspend_early: bool,
    /// Rung 2: sessions to spill, as `(shard, session)`, in eviction order.
    pub evict: Vec<(usize, u64)>,
    /// Rung 3: new sessions to refuse, in arrival order.
    pub refuse: Vec<u64>,
    /// Peak pressure fraction observed (for metrics; 0 when unbounded).
    pub pressure: f64,
}

fn over(budget: &Budget, resident: usize, buffered: usize) -> bool {
    (budget.max_resident > 0 && resident > budget.max_resident)
        || (budget.max_buffered_edges > 0 && buffered > budget.max_buffered_edges)
}

fn pressure(budget: &Budget, resident: usize, buffered: usize) -> f64 {
    let mut p: f64 = 0.0;
    if budget.max_resident > 0 {
        p = p.max(resident as f64 / budget.max_resident as f64);
    }
    if budget.max_buffered_edges > 0 {
        p = p.max(buffered as f64 / budget.max_buffered_edges as f64);
    }
    p
}

/// Compute the shedding plan for one batch.
pub(crate) fn plan(budget: &Budget, view: &LoadView) -> ShedPlan {
    if !budget.bounded() {
        return ShedPlan::default();
    }
    // Prospective post-batch load if everything were admitted.
    let mut resident = view.resident + view.restores + view.new_sessions.len();
    let mut buffered = view.buffered_edges + view.batch_events;
    let p = pressure(budget, resident, buffered);

    let mut plan = ShedPlan {
        suspend_early: budget.shed_early_at > 0.0 && p >= budget.shed_early_at,
        pressure: p,
        ..ShedPlan::default()
    };

    // Rung 2: evict idle sessions, least-recently-active first, session id
    // as the deterministic tie-break.
    if budget.can_spill && over(budget, resident, buffered) {
        let mut idle = view.idle.clone();
        idle.sort_by_key(|s| (s.last_active_batch, s.session));
        for s in idle {
            if !over(budget, resident, buffered) {
                break;
            }
            plan.evict.push((s.shard, s.session));
            resident -= 1;
            buffered = buffered.saturating_sub(s.cost_edges);
        }
    }

    // Rung 3: refuse the newest new sessions until under budget (or none
    // left to refuse — restores and already-resident sessions are never
    // shed, since that would drop mid-session state).
    let mut keep = view.new_sessions.len();
    while over(budget, resident, buffered) && keep > 0 {
        keep -= 1;
        let (sid, events) = view.new_sessions[keep];
        plan.refuse.push(sid);
        resident -= 1;
        buffered = buffered.saturating_sub(events);
    }
    plan.refuse.reverse(); // report in arrival order
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(max_resident: usize, max_buffered: usize) -> Budget {
        Budget {
            max_resident,
            max_buffered_edges: max_buffered,
            shed_early_at: 0.9,
            can_spill: true,
        }
    }

    fn idle(session: u64, last: usize, cost: usize) -> IdleSession {
        IdleSession { session, shard: (session % 2) as usize, last_active_batch: last, cost_edges: cost }
    }

    #[test]
    fn unbounded_budget_never_sheds() {
        let view = LoadView {
            resident: 1_000_000,
            buffered_edges: 1_000_000,
            batch_events: 1_000_000,
            new_sessions: vec![(1, 10)],
            ..LoadView::default()
        };
        let b = Budget { max_resident: 0, max_buffered_edges: 0, shed_early_at: 0.9, can_spill: true };
        assert_eq!(plan(&b, &view), ShedPlan::default());
    }

    #[test]
    fn early_suspends_before_any_eviction() {
        // 9/10 resident: at the 0.9 rung but not over budget.
        let view = LoadView { resident: 9, ..LoadView::default() };
        let p = plan(&budget(10, 0), &view);
        assert!(p.suspend_early);
        assert!(p.evict.is_empty() && p.refuse.is_empty());
    }

    #[test]
    fn eviction_is_lru_with_session_tiebreak() {
        let view = LoadView {
            resident: 4,
            new_sessions: vec![(50, 1), (51, 1)],
            idle: vec![idle(7, 3, 5), idle(2, 1, 5), idle(9, 1, 5), idle(4, 2, 5)],
            ..LoadView::default()
        };
        // Budget 4, prospective 6: evict two, oldest first, id breaks the tie.
        let p = plan(&budget(4, 0), &view);
        assert_eq!(p.evict, vec![(0, 2), (1, 9)]);
        assert!(p.refuse.is_empty());
    }

    #[test]
    fn refusal_keeps_earliest_arrivals() {
        let view = LoadView {
            resident: 4,
            new_sessions: vec![(10, 2), (11, 3), (12, 4)],
            idle: vec![idle(1, 0, 0)], // only one evictable
            ..LoadView::default()
        };
        // Budget 4, prospective 7: one eviction frees one slot; refuse the
        // two newest arrivals, keep session 10.
        let p = plan(&budget(4, 0), &view);
        assert_eq!(p.evict.len(), 1);
        assert_eq!(p.refuse, vec![11, 12]);
    }

    #[test]
    fn without_spill_dir_the_ladder_skips_to_refusal() {
        let view = LoadView {
            resident: 4,
            new_sessions: vec![(10, 1)],
            idle: vec![idle(1, 0, 0), idle(2, 0, 0)],
            ..LoadView::default()
        };
        let mut b = budget(4, 0);
        b.can_spill = false;
        let p = plan(&b, &view);
        assert!(p.evict.is_empty());
        assert_eq!(p.refuse, vec![10]);
    }

    #[test]
    fn edge_budget_triggers_on_buffered_volume() {
        let view = LoadView {
            resident: 2,
            buffered_edges: 90,
            batch_events: 20,
            idle: vec![idle(1, 0, 60)],
            ..LoadView::default()
        };
        let p = plan(&budget(0, 100), &view);
        assert!(p.suspend_early, "110/100 is over the 0.9 rung");
        assert_eq!(p.evict, vec![(1, 1)], "evicting frees 60 edges");
        assert!(p.refuse.is_empty());
    }
}
