//! Typed serving-layer failures and the per-session fault ledger.
//!
//! Two distinct severities live here. [`ServeError`] is a *call* failure:
//! the server could not do what was asked (bad configuration, journal I/O,
//! a broken invariant) and the caller must handle it. [`SessionFault`] is a
//! *session* failure: one session was refused, shed, or quarantined while
//! the rest of the batch proceeded — faults accumulate in a deterministic
//! ledger the caller drains via `SessionServer::take_faults`, so overload
//! and poisoning are observable without ever panicking or silently
//! dropping an edge.

use std::fmt;

use tpgnn_obs::vfs::VfsError;
use tpgnn_tensor::CheckpointError;

/// Typed failure modes of the serving layer's fallible entry points.
#[derive(Debug)]
pub enum ServeError {
    /// The server is over its admission budget and cannot take more load.
    Overloaded {
        /// What budget was exceeded and by how much.
        detail: String,
    },
    /// Offered features do not match what the model or a stored state
    /// expects.
    FeatureMismatch {
        /// The mismatch, with both sides' dimensions.
        detail: String,
    },
    /// The configuration is unusable (e.g. a model with no incremental
    /// form, or recovery pointed at a directory that is not a journal).
    BadConfig {
        /// What is wrong with the configuration.
        detail: String,
    },
    /// Filesystem failure in the journal, snapshot, or spill path.
    Io(std::io::Error),
    /// A serving invariant broke: corrupted journal frames mid-file, a
    /// replay that diverged from the journaled scores, or an internal
    /// lookup that should have been infallible.
    Invariant {
        /// The broken invariant, with evidence.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { detail } => write!(f, "server overloaded: {detail}"),
            ServeError::FeatureMismatch { detail } => write!(f, "feature mismatch: {detail}"),
            ServeError::BadConfig { detail } => write!(f, "bad serving config: {detail}"),
            ServeError::Io(e) => write!(f, "serving I/O failure: {e}"),
            ServeError::Invariant { detail } => write!(f, "serving invariant broken: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<VfsError> for ServeError {
    fn from(e: VfsError) -> Self {
        ServeError::Io(e.into())
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(io) => ServeError::Io(io),
            other => ServeError::Invariant { detail: other.to_string() },
        }
    }
}

/// Classification of a per-session fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The session could not open (feature-dim mismatch, or a model
    /// without an incremental form).
    Refused,
    /// The session (or its events) was shed under admission pressure.
    Overloaded,
    /// The shard watchdog quarantined the session for blowing its
    /// per-batch deadline.
    Poisoned,
    /// Spill/restore or journal I/O failed for this session.
    Io,
    /// An internal invariant broke while handling this session; its state
    /// was quarantined rather than trusted.
    Invariant,
}

impl FaultKind {
    /// Stable snake_case label (metrics names, wire format, rendering).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Refused => "refused",
            FaultKind::Overloaded => "overloaded",
            FaultKind::Poisoned => "poisoned",
            FaultKind::Io => "io",
            FaultKind::Invariant => "invariant",
        }
    }

    /// Decode [`label`](Self::label) output.
    pub fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "refused" => Ok(FaultKind::Refused),
            "overloaded" => Ok(FaultKind::Overloaded),
            "poisoned" => Ok(FaultKind::Poisoned),
            "io" => Ok(FaultKind::Io),
            "invariant" => Ok(FaultKind::Invariant),
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the fault ledger: which session, what happened, and the
/// evidence. The ledger order is deterministic (per shard: admission
/// faults in arrival order, then processing faults in event order; shards
/// concatenated in index order), so two runs over the same committed
/// traffic produce identical ledgers — the recovery suite's contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionFault {
    /// The affected session.
    pub session: u64,
    /// Deterministic trace id of the (session, batch) that produced this
    /// fault ([`crate::trace_id`]), joining it to the `serve.request` span,
    /// journal frames, and spill files of the same causal history.
    pub trace: u64,
    /// Fault classification.
    pub kind: FaultKind,
    /// Human-readable evidence (deterministic content only — counts,
    /// budgets, dims; never wall-clock values except in `Poisoned`
    /// entries, which recovery replays from the journal verbatim).
    pub detail: String,
}

impl fmt::Display for SessionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}: {}: {}", self.session, self.kind, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_labels_roundtrip() {
        for k in [
            FaultKind::Refused,
            FaultKind::Overloaded,
            FaultKind::Poisoned,
            FaultKind::Io,
            FaultKind::Invariant,
        ] {
            assert_eq!(FaultKind::from_label(k.label()).unwrap(), k);
        }
        assert!(FaultKind::from_label("nope").is_err());
    }

    #[test]
    fn errors_render_their_evidence() {
        let e = ServeError::Overloaded { detail: "7 resident > budget 4".into() };
        assert!(e.to_string().contains("7 resident > budget 4"));
        let f = SessionFault {
            session: 9,
            trace: 0xdead_beef,
            kind: FaultKind::Poisoned,
            detail: "batch 3: 12000us > 5ms deadline".into(),
        };
        assert_eq!(f.to_string(), "session 9: poisoned: batch 3: 12000us > 5ms deadline");
    }
}
