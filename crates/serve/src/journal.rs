//! Per-shard append-only session journal with group commit.
//!
//! Durability protocol (write-ahead of *delivery*, not of processing): a
//! batch is processed in memory first, then every frame it produced —
//! events, scores, faults, watchdog verdicts — is appended to the owning
//! shard's log and fsynced, and only then is a commit frame appended to
//! `commit.log` and fsynced. `ingest` returns after the commit, so a batch
//! the caller has seen results for is always on disk, and a batch that is
//! on disk without a commit frame is one the caller never saw — the driver
//! re-feeds it after recovery. Crash at any point therefore loses no
//! delivered result and double-reports none.
//!
//! Frames are single lines `<fnv1a-hex16> <payload>`; a torn tail (partial
//! final write after `kill -9`) fails its checksum and is dropped and
//! counted, while a *valid* frame after an invalid one means real mid-file
//! corruption and is a hard [`ServeError::Invariant`].
//!
//! Every frame carries the deterministic trace id of its (session, batch)
//! — explicitly on `R`/`E`/`W` frames, embedded in the score/fault payload
//! on `S`/`F` — and [`load`] verifies each id against
//! [`crate::trace_id`], so a frame that drifted to the wrong batch or
//! session is caught as corruption, and the `obs_report` tool can join
//! journal history to trace spans on the id alone. The read side
//! ([`load`], [`Frame`], [`Commit`]) is public for such tools; the staged
//! write path stays inside the crate.

use std::path::{Path, PathBuf};

use tpgnn_graph::NodeFeatures;
use tpgnn_obs::vfs::{self, Vfs, VfsFile};
use tpgnn_tensor::ckpt::fnv1a;

use crate::error::{ServeError, SessionFault};
use crate::wire;
use crate::{ScoreRecord, SessionEvent};

/// What kind of batch a commit frame closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// A normal `ingest` batch.
    Ingest,
    /// A `close_all` sweep (no events; watermark forced to +inf).
    CloseAll,
}

impl BatchKind {
    fn tag(self) -> &'static str {
        match self {
            BatchKind::Ingest => "i",
            BatchKind::CloseAll => "z",
        }
    }

    fn from_tag(s: &str) -> Result<Self, String> {
        match s {
            "i" => Ok(BatchKind::Ingest),
            "z" => Ok(BatchKind::CloseAll),
            other => Err(format!("unknown batch kind `{other}`")),
        }
    }
}

/// One parsed shard-log frame.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Features registered ahead of `batch`.
    Register {
        /// 1-based batch the registration rides with.
        batch: usize,
        /// Registering session.
        session: u64,
        /// Trace id of the (session, batch), verified on load.
        trace: u64,
        /// The declared node features.
        features: NodeFeatures,
    },
    /// One event of `batch`, with its global arrival index within the batch.
    Event {
        /// 1-based batch the event was offered in.
        batch: usize,
        /// Arrival index within the batch (replay restores offer order).
        arrival: usize,
        /// Trace id of the (session, batch), verified on load.
        trace: u64,
        /// The offered event.
        event: SessionEvent,
    },
    /// One score this shard emitted for `batch`, in emission order.
    Score {
        /// 1-based batch the score was delivered in.
        batch: usize,
        /// The delivered record (carries its own trace id).
        record: ScoreRecord,
    },
    /// One fault this shard recorded for `batch`, in ledger order.
    Fault {
        /// 1-based batch the fault was recorded in.
        batch: usize,
        /// The ledger entry (carries its own trace id).
        fault: SessionFault,
    },
    /// A watchdog poisoning verdict (the one wall-clock decision; replay
    /// applies it verbatim instead of re-measuring).
    Watchdog {
        /// 1-based batch the verdict was taken in.
        batch: usize,
        /// The quarantined session.
        session: u64,
        /// Trace id of the (session, batch), verified on load.
        trace: u64,
        /// The measured per-batch wall time that blew the deadline.
        elapsed_us: u64,
    },
}

impl Frame {
    /// The batch this frame belongs to.
    pub fn batch(&self) -> usize {
        match self {
            Frame::Register { batch, .. }
            | Frame::Event { batch, .. }
            | Frame::Score { batch, .. }
            | Frame::Fault { batch, .. }
            | Frame::Watchdog { batch, .. } => *batch,
        }
    }

    /// The deterministic trace id this frame carries.
    pub fn trace(&self) -> u64 {
        match self {
            Frame::Register { trace, .. }
            | Frame::Event { trace, .. }
            | Frame::Watchdog { trace, .. } => *trace,
            Frame::Score { record, .. } => record.trace,
            Frame::Fault { fault, .. } => fault.trace,
        }
    }

    /// The session this frame concerns.
    pub fn session(&self) -> u64 {
        match self {
            Frame::Register { session, .. } | Frame::Watchdog { session, .. } => *session,
            Frame::Event { event, .. } => event.session,
            Frame::Score { record, .. } => record.session,
            Frame::Fault { fault, .. } => fault.session,
        }
    }
}

/// One parsed commit frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commit {
    /// 1-based batch index this commit seals.
    pub batch: usize,
    /// Ingest vs close-all.
    pub kind: BatchKind,
    /// Events offered in the batch (replay cross-checks the count).
    pub events: usize,
}

/// Everything read back from a journal directory.
pub struct JournalData {
    /// Per-shard frames, in append order, committed batches only.
    pub shards: Vec<Vec<Frame>>,
    /// Commit frames in order; the last one is the recovery horizon.
    pub commits: Vec<Commit>,
    /// Torn tail lines dropped across all files (counted, not silent).
    pub torn_frames: usize,
}

/// The write side: per-shard append handles plus the commit log. All I/O
/// goes through the server's [`Vfs`] handle, so injected faults and
/// retries cover the entire durability protocol.
pub(crate) struct Journal {
    dir: PathBuf,
    shard_files: Vec<Box<dyn VfsFile>>,
    commit_file: Box<dyn VfsFile>,
    /// Frames staged for the in-flight batch, per shard.
    pending: Vec<Vec<String>>,
}

/// Path of one shard's append-only log under `dir`.
pub fn shard_log_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.log"))
}

/// Path of the commit log under `dir`.
pub fn commit_log_path(dir: &Path) -> PathBuf {
    dir.join("commit.log")
}

/// Path of the full-server snapshot taken at `batch` under `dir`.
pub fn snapshot_path(dir: &Path, batch: usize) -> PathBuf {
    dir.join(format!("snap-{batch}.ckpt"))
}

fn frame_line(payload: &str) -> String {
    format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()))
}

impl Journal {
    /// Open (creating if needed) the journal under `dir` for `num_shards`
    /// shards through `vfs`. Existing logs are appended to, which is what
    /// recovery wants.
    pub(crate) fn open(vfs: &dyn Vfs, dir: &Path, num_shards: usize) -> Result<Self, ServeError> {
        vfs.create_dir_all(dir)?;
        let mut shard_files = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            shard_files.push(vfs.open_append(&shard_log_path(dir, i))?);
        }
        let commit_file = vfs.open_append(&commit_log_path(dir))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            shard_files,
            commit_file,
            pending: (0..num_shards).map(|_| Vec::new()).collect(),
        })
    }

    /// The journal directory (snapshots and spill files live beside logs).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn stage_register(
        &mut self,
        shard: usize,
        batch: usize,
        session: u64,
        features: &NodeFeatures,
    ) {
        let trace = crate::trace_hex(crate::trace_id(session, batch));
        self.pending[shard]
            .push(format!("R {batch} {trace} {}", wire::fmt_features(session, features)));
    }

    pub(crate) fn stage_event(
        &mut self,
        shard: usize,
        batch: usize,
        arrival: usize,
        se: &SessionEvent,
    ) {
        let trace = crate::trace_hex(crate::trace_id(se.session, batch));
        self.pending[shard]
            .push(format!("E {batch} {arrival} {trace} {}", wire::fmt_event(se)));
    }

    pub(crate) fn stage_score(&mut self, shard: usize, batch: usize, record: &ScoreRecord) {
        self.pending[shard].push(format!("S {batch} {}", wire::fmt_record(record)));
    }

    pub(crate) fn stage_fault(&mut self, shard: usize, batch: usize, fault: &SessionFault) {
        self.pending[shard].push(format!("F {batch} {}", wire::fmt_fault(fault)));
    }

    pub(crate) fn stage_watchdog(
        &mut self,
        shard: usize,
        batch: usize,
        session: u64,
        elapsed_us: u64,
    ) {
        let trace = crate::trace_hex(crate::trace_id(session, batch));
        self.pending[shard].push(format!("W {batch} {trace} {session} {elapsed_us}"));
    }

    /// Flush every staged frame to its shard log (fsync each touched file),
    /// then append and fsync the commit frame. Only after this returns may
    /// the batch's results be handed to the caller. On failure every staged
    /// frame of the batch is discarded — the batch is uncommitted and must
    /// not leak frames into a later commit's block (recovery would see a
    /// commit-log gap).
    pub(crate) fn commit(
        &mut self,
        batch: usize,
        kind: BatchKind,
        events: usize,
    ) -> Result<(), ServeError> {
        let result = self.commit_inner(batch, kind, events);
        if result.is_err() {
            self.abort_batch();
        }
        result
    }

    fn commit_inner(
        &mut self,
        batch: usize,
        kind: BatchKind,
        events: usize,
    ) -> Result<(), ServeError> {
        for (i, frames) in self.pending.iter_mut().enumerate() {
            if frames.is_empty() {
                continue;
            }
            let mut block = String::new();
            for payload in frames.iter() {
                block.push_str(&frame_line(payload));
            }
            self.shard_files[i].append(block.as_bytes())?;
            self.shard_files[i].sync()?;
            frames.clear();
        }
        let commit = frame_line(&format!("C {batch} {} {events}", kind.tag()));
        self.commit_file.append(commit.as_bytes())?;
        self.commit_file.sync()?;
        Ok(())
    }

    /// Drop every staged frame of the in-flight batch. Called when the
    /// batch fails before (or during) commit so stale frames cannot ride
    /// into the next batch.
    pub(crate) fn abort_batch(&mut self) {
        for frames in &mut self.pending {
            frames.clear();
        }
    }
}

/// Read one log file into verified payload lines. Invalid lines are only
/// tolerated as a contiguous tail (the torn final write of a crash); a
/// valid frame *after* an invalid one is mid-file corruption.
fn read_payloads(vfs: &dyn Vfs, path: &Path) -> Result<(Vec<String>, usize), ServeError> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.is_not_found() => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e.into()),
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut payloads = Vec::new();
    let mut torn = 0usize;
    for line in text.lines() {
        let valid = line
            .split_once(' ')
            .and_then(|(hex, payload)| {
                let sum = u64::from_str_radix(hex, 16).ok()?;
                (sum == fnv1a(payload.as_bytes())).then(|| payload.to_string())
            });
        match valid {
            Some(payload) if torn == 0 => payloads.push(payload),
            Some(_) => {
                return Err(ServeError::Invariant {
                    detail: format!(
                        "{}: valid frame after {torn} invalid line(s) — mid-file corruption",
                        path.display()
                    ),
                });
            }
            None => torn += 1,
        }
    }
    Ok((payloads, torn))
}

fn parse_frame(payload: &str) -> Result<Frame, String> {
    let toks: Vec<&str> = payload.split_whitespace().collect();
    let batch = |i: usize| -> Result<usize, String> {
        wire::parse_num(toks.get(i).ok_or("truncated frame")?)
    };
    let trace_tok = |i: usize| -> Result<u64, String> {
        wire::parse_trace(toks.get(i).ok_or("truncated frame")?)
    };
    let frame = match toks.first().copied() {
        Some("R") => {
            let (session, features) = wire::parse_features(&toks[3..])?;
            Frame::Register { batch: batch(1)?, trace: trace_tok(2)?, session, features }
        }
        Some("E") => Frame::Event {
            batch: batch(1)?,
            arrival: batch(2)?,
            trace: trace_tok(3)?,
            event: wire::parse_event(&toks[4..])?,
        },
        Some("S") => Frame::Score { batch: batch(1)?, record: wire::parse_record(&toks[2..])? },
        Some("F") => Frame::Fault { batch: batch(1)?, fault: wire::parse_fault(&toks[2..])? },
        Some("W") => {
            if toks.len() != 5 {
                return Err("watchdog frame wants 5 tokens".to_string());
            }
            Frame::Watchdog {
                batch: batch(1)?,
                trace: trace_tok(2)?,
                session: wire::parse_num(toks[3])?,
                elapsed_us: wire::parse_num(toks[4])?,
            }
        }
        other => return Err(format!("unknown frame tag {other:?}")),
    };
    // Trace ids are pure functions of (session, batch): a mismatch means
    // the frame drifted (wrong batch, wrong session, or a codec bug) —
    // treated as corruption rather than silently joined to the wrong
    // history.
    let expect = crate::trace_id(frame.session(), frame.batch());
    if frame.trace() != expect {
        return Err(format!(
            "trace id {} does not match trace_id(session {}, batch {}) = {}",
            crate::trace_hex(frame.trace()),
            frame.session(),
            frame.batch(),
            crate::trace_hex(expect)
        ));
    }
    Ok(frame)
}

/// Load a journal directory: verified commit horizon plus per-shard frames
/// of committed batches. Frames beyond the last commit are the in-flight
/// batch of the crash — dropped and counted alongside torn tail lines.
/// Reads through the process-global [`vfs`] stack; see [`load_with`].
pub fn load(dir: &Path, num_shards: usize) -> Result<JournalData, ServeError> {
    load_with(&*vfs::global(), dir, num_shards)
}

/// [`load`] through an explicit [`Vfs`] (recovery uses the server's
/// handle; fault-injection tests use an injector stack).
pub fn load_with(vfs: &dyn Vfs, dir: &Path, num_shards: usize) -> Result<JournalData, ServeError> {
    let (commit_payloads, mut torn) = read_payloads(vfs, &commit_log_path(dir))?;
    let mut commits = Vec::with_capacity(commit_payloads.len());
    for p in &commit_payloads {
        let toks: Vec<&str> = p.split_whitespace().collect();
        if toks.len() != 4 || toks[0] != "C" {
            return Err(ServeError::Invariant { detail: format!("bad commit frame `{p}`") });
        }
        let c = Commit {
            batch: wire::parse_num(toks[1])
                .map_err(|e| ServeError::Invariant { detail: e })?,
            kind: BatchKind::from_tag(toks[2])
                .map_err(|e| ServeError::Invariant { detail: e })?,
            events: wire::parse_num(toks[3])
                .map_err(|e| ServeError::Invariant { detail: e })?,
        };
        if c.batch != commits.len() + 1 {
            return Err(ServeError::Invariant {
                detail: format!("commit log gap: frame {} after {} commits", c.batch, commits.len()),
            });
        }
        commits.push(c);
    }
    let horizon = commits.len();

    let mut shards = Vec::with_capacity(num_shards);
    for i in 0..num_shards {
        let (payloads, t) = read_payloads(vfs, &shard_log_path(dir, i))?;
        torn += t;
        let mut frames = Vec::with_capacity(payloads.len());
        for p in &payloads {
            let frame = parse_frame(p).map_err(|e| ServeError::Invariant {
                detail: format!("shard {i}: bad frame `{p}`: {e}"),
            })?;
            // Frames of the batch that was mid-write at the crash (no
            // commit) are uncommitted work the caller never saw.
            if frame.batch() <= horizon {
                frames.push(frame);
            } else {
                torn += 1;
            }
        }
        shards.push(frames);
    }
    Ok(JournalData { shards, commits, torn_frames: torn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use tpgnn_graph::stream::StreamEvent;
    use tpgnn_obs::vfs::StdVfs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpgnn-journal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn se(session: u64, t: f64) -> SessionEvent {
        SessionEvent::new(session, StreamEvent::new(0, 1, t))
    }

    #[test]
    fn staged_frames_survive_commit_and_reload() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::open(&StdVfs, &dir, 2).unwrap();
        j.stage_event(0, 1, 0, &se(2, 1.0));
        j.stage_event(1, 1, 1, &se(3, 2.0));
        j.stage_watchdog(1, 1, 3, 777);
        j.commit(1, BatchKind::Ingest, 2).unwrap();
        j.stage_event(0, 2, 0, &se(2, 3.0));
        j.commit(2, BatchKind::CloseAll, 1).unwrap();

        let data = load(&dir, 2).unwrap();
        assert_eq!(data.torn_frames, 0);
        assert_eq!(data.commits.len(), 2);
        assert_eq!(data.commits[1].kind, BatchKind::CloseAll);
        assert_eq!(data.shards[0].len(), 2);
        assert_eq!(data.shards[1].len(), 2);
        assert!(matches!(data.shards[1][1], Frame::Watchdog { session: 3, elapsed_us: 777, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_counted() {
        let dir = tmpdir("torn");
        let mut j = Journal::open(&StdVfs, &dir, 1).unwrap();
        j.stage_event(0, 1, 0, &se(1, 1.0));
        j.commit(1, BatchKind::Ingest, 1).unwrap();
        // Simulate a crash mid-append: garbage half-line at the shard tail
        // and a torn half-frame at the commit tail.
        let mut f = OpenOptions::new().append(true).open(shard_log_path(&dir, 0)).unwrap();
        f.write_all(b"deadbeef partial").unwrap();
        drop(f);
        let mut c = OpenOptions::new().append(true).open(commit_log_path(&dir)).unwrap();
        c.write_all(b"0123").unwrap();
        drop(c);

        let data = load(&dir, 1).unwrap();
        assert_eq!(data.commits.len(), 1);
        assert_eq!(data.shards[0].len(), 1);
        assert_eq!(data.torn_frames, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_batch_frames_are_dropped() {
        let dir = tmpdir("uncommitted");
        let mut j = Journal::open(&StdVfs, &dir, 1).unwrap();
        j.stage_event(0, 1, 0, &se(1, 1.0));
        j.commit(1, BatchKind::Ingest, 1).unwrap();
        // Batch 2 frames hit the shard log but the crash lands before the
        // commit frame: recovery must not replay them.
        j.stage_event(0, 2, 0, &se(1, 2.0));
        for (i, frames) in j.pending.iter_mut().enumerate() {
            let mut block = String::new();
            for p in frames.iter() {
                block.push_str(&frame_line(p));
            }
            j.shard_files[i].append(block.as_bytes()).unwrap();
            frames.clear();
        }

        let data = load(&dir, 1).unwrap();
        assert_eq!(data.commits.len(), 1);
        assert_eq!(data.shards[0].len(), 1);
        assert_eq!(data.torn_frames, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmpdir("midfile");
        let mut j = Journal::open(&StdVfs, &dir, 1).unwrap();
        j.stage_event(0, 1, 0, &se(1, 1.0));
        j.stage_event(0, 1, 1, &se(2, 2.0));
        j.commit(1, BatchKind::Ingest, 2).unwrap();
        let path = shard_log_path(&dir, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = "0000000000000000 E 1 0 corrupted".to_string();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert!(matches!(load(&dir, 1), Err(ServeError::Invariant { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
