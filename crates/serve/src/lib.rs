//! # tpgnn-serve
//!
//! Online serving for TP-GNN: a resident, sharded store of per-session
//! incremental model states fed by the streaming ingestion path.
//!
//! Each arriving [`SessionEvent`] is routed to its session's
//! [`CtdnBuilder`], which reorders, dedups, and quarantines exactly as the
//! offline pipeline does; every event the builder *releases* advances the
//! session's [`SessionState`] one TP-GNN step (Algorithm 1 loop body — no
//! replay of the prefix). A global watermark (max event time seen minus
//! [`ServeConfig::session_gap`]) decides when a session is over: the
//! reorder-buffer tail is flushed, the state advanced through it, and the
//! session classified and evicted. Mid-session **early-warning** scores can
//! be emitted every [`ServeConfig::early_warning_every`] released edges.
//!
//! Every score — early or final — is **bitwise identical** to batch
//! [`predict_proba`](tpgnn_core::GraphClassifier::predict_proba) on the
//! graph of released edges, and the whole request loop is bitwise
//! deterministic at any worker-pool width: sessions shard by
//! `session_id % num_shards` (independent of thread count), shards fan out
//! on the `tpgnn-par` pool with one tape per worker, and results are
//! collected in shard order. `tests/replay_props.rs` and the workspace
//! determinism suite pin both properties.
//!
//! ## Overload, bounded memory, and crash recovery
//!
//! The server never panics and never silently drops an edge under load.
//! Configurable budgets ([`ServeConfig::max_resident_sessions`],
//! [`ServeConfig::max_buffered_edges`]) drive a deterministic shedding
//! ladder decided at batch boundaries: first Early scoring suspends, then
//! idle sessions are **evicted** — spilled to disk through the checksummed
//! atomic checkpoint machinery and transparently restored on their next
//! edge, bitwise-identically — and only then are *new* admissions refused,
//! each refusal attributed in the [`SessionFault`] ledger. A per-shard
//! append-only journal (fsync'd, checksummed, torn-tail tolerant) plus
//! periodic snapshots make the whole serving state recoverable after
//! `kill -9`: [`SessionServer::recover`] rebuilds in-flight sessions and
//! replays committed batches, self-checking every regenerated score
//! against the journaled one. A wall-clock shard watchdog
//! ([`ServeConfig::watchdog_ms`]) quarantines sessions that blow their
//! per-batch deadline; its verdicts are journaled so replay applies them
//! verbatim instead of re-measuring.
//!
//! The [`loadgen`] module turns the seeded chaos injectors into an
//! open-loop traffic model for benchmarks and smoke tests.
//!
//! ## Live telemetry, trace correlation, and SLOs
//!
//! Every unit of work carries a deterministic [`trace_id`] — a pure
//! function of (session, batch) — threaded through `serve.request` span
//! events, journal frames, fault-ledger entries, and spill-file headers,
//! so the `obs_report` tool can reconstruct a session's full lifecycle by
//! joining on the id alone, and crash-recovery replay reproduces the ids
//! bitwise. With [`ServeConfig::telemetry`] set, a server-owned ticker
//! thread publishes windowed metrics snapshots (JSONL time series plus a
//! Prometheus-style exposition file) while the server runs, and
//! [`ServeConfig::slo`] objectives are evaluated per window with
//! multi-window burn rates ([`slo`] module). All of it is gated on the
//! trace/metrics enable flags: a server without telemetry configured
//! spawns no thread and pays one relaxed atomic load per gate.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use tpgnn_core::{IncrementalScorer, SessionState};
use tpgnn_graph::stream::{CtdnBuilder, QuarantineLog, StreamConfig, StreamEvent, StreamStats};
use tpgnn_graph::{NodeFeatures, TemporalEdge};
use tpgnn_obs::metrics::{self, Counter, Gauge, Histogram};
use tpgnn_obs::trace;
use tpgnn_obs::vfs::{self, Vfs};
use tpgnn_tensor::Tape;

mod admission;
mod error;
mod recover;
mod spill;

pub mod journal;
pub mod loadgen;
pub mod slo;
pub mod wire;

pub use error::{FaultKind, ServeError, SessionFault};
pub use recover::{BatchOutput, RecoverReport};

/// Deterministic trace id for the work done on `session` during `batch`.
///
/// A pure function of committed traffic — no wall clock, no randomness —
/// so crash-recovery replay mints bitwise-identical ids, and every surface
/// that logs one (`serve.request` span events, journal R/E/S/F/W frames,
/// fault-ledger entries, spill-file headers) can be joined after the fact
/// on the id alone. Rendered everywhere as fixed-width hex via
/// [`trace_hex`].
pub fn trace_id(session: u64, batch: usize) -> u64 {
    tpgnn_tensor::ckpt::fnv1a(format!("tpgnn-trace v1 {session} {batch}").as_bytes())
}

/// Canonical rendering of a [`trace_id`]: 16 lowercase hex digits.
pub fn trace_hex(trace: u64) -> String {
    format!("{trace:016x}")
}

/// One raw record offered to the server: which session it belongs to, plus
/// the stream event itself (the unit the chaos injectors mutate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionEvent {
    /// The session this event belongs to.
    pub session: u64,
    /// The edge record as it arrived off the wire.
    pub event: StreamEvent,
}

impl SessionEvent {
    /// Convenience constructor.
    pub fn new(session: u64, event: StreamEvent) -> Self {
        Self { session, event }
    }
}

/// Whether a score was emitted mid-session or at session close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreKind {
    /// Mid-session early warning (the session is still open).
    Early,
    /// Final classification at watermark-driven (or forced) close.
    Final,
}

/// One emitted score. `Final` records additionally carry the session's
/// ingestion accounting and quarantine log, so fault reconciliation works
/// from the outside.
#[derive(Clone, Debug)]
pub struct ScoreRecord {
    /// The scored session.
    pub session: u64,
    /// Early warning vs final classification.
    pub kind: ScoreKind,
    /// Probability the session is a positive graph — bitwise equal to the
    /// batch `predict_proba` on the released-edge graph.
    pub proba: f32,
    /// Released edges advanced into the state when the score was taken.
    pub edges: usize,
    /// Deterministic trace id of the (session, batch) that emitted this
    /// score ([`trace_id`]) — the join key back to the `serve.request`
    /// span, journal frames, and spill files of the same causal history.
    pub trace: u64,
    /// Ingestion accounting (`Final` only).
    pub stats: Option<StreamStats>,
    /// Quarantine log (`Final` only).
    pub quarantine: Option<QuarantineLog>,
}

/// Serving-layer configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-session streaming ingestion config (reorder window, lateness,
    /// dedup, skew offsets). `track_releases` is forced on by the server.
    pub stream: StreamConfig,
    /// A session closes when the global watermark (max event time seen
    /// across all sessions minus this gap) passes its last activity.
    /// `f64::INFINITY` disables watermark closes — only
    /// [`SessionServer::close_all`] then closes sessions.
    pub session_gap: f64,
    /// Number of session shards. Sessions route by `id % num_shards`;
    /// fixed by config (NOT by thread count) so results are identical at
    /// any pool width.
    pub num_shards: usize,
    /// Emit an early-warning score every N released edges; `0` disables.
    pub early_warning_every: usize,
    /// Node count for sessions that were never
    /// [`register`](SessionServer::register)ed.
    pub default_nodes: usize,
    /// Feature dimension for unregistered sessions; must match the model's
    /// input dimension.
    pub default_feature_dim: usize,
    /// Admission budget: maximum sessions resident in memory; `0` means
    /// unbounded. Over budget, the shedding ladder engages (suspend Early,
    /// evict idle, refuse new).
    pub max_resident_sessions: usize,
    /// Admission budget: maximum buffered edges across resident sessions
    /// (released edge logs plus reorder buffers); `0` means unbounded.
    pub max_buffered_edges: usize,
    /// Pressure fraction (of either budget) at which Early scoring
    /// suspends — the ladder's first, cheapest rung.
    pub shed_early_at: f64,
    /// Directory for evicted-session spill files. `None` disables the
    /// eviction rung (the ladder skips from Early suspension to refusal).
    pub spill_dir: Option<PathBuf>,
    /// Directory for the per-shard session journal and snapshots. `None`
    /// disables journaling (and with it [`SessionServer::recover`]).
    pub journal_dir: Option<PathBuf>,
    /// Write a full server snapshot every N committed batches; `0` means
    /// never (recovery then replays the journal from the beginning).
    pub snapshot_every: usize,
    /// Shard watchdog: a session whose advance+score work exceeds this
    /// many wall-clock milliseconds within one batch is quarantined as
    /// [`FaultKind::Poisoned`], with the measurement attributed in the
    /// fault ledger and journaled for replay. `0` disables (the default:
    /// the watchdog is the one wall-clock-dependent decision, so
    /// deterministic test suites leave it off).
    pub watchdog_ms: u64,
    /// Service-level objectives evaluated per telemetry window (burn-rate
    /// gauges, `slo.breach` events). `None` disables SLO tracking. Without
    /// [`telemetry`](Self::telemetry) no windows tick, so objectives are
    /// only evaluated when live telemetry is on.
    pub slo: Option<slo::SloConfig>,
    /// Live telemetry: a server-owned ticker thread appending windowed
    /// metrics snapshots as a JSONL time series plus a Prometheus-style
    /// exposition file, both readable while the server runs. `None` (the
    /// default) spawns nothing and costs nothing.
    pub telemetry: Option<TelemetryConfig>,
    /// Storage stack for every durability path the server owns (journal,
    /// spill files, snapshots, telemetry files). `None` (the default) uses
    /// the process-global [`tpgnn_obs::vfs::global`] stack; the chaos
    /// harness and fault-injection tests pass an injector stack here.
    pub vfs: Option<Arc<dyn Vfs>>,
}

/// Where and how often the server's telemetry ticker publishes windowed
/// metrics snapshots (see [`tpgnn_obs::snapshot`]).
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Directory for `live-<run>.jsonl` and `metrics-<run>.prom`.
    pub dir: PathBuf,
    /// Run name embedded in both file names.
    pub run: String,
    /// Tick interval in milliseconds (clamped to ≥ 1).
    pub tick_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            stream: StreamConfig::default(),
            session_gap: f64::INFINITY,
            num_shards: 8,
            early_warning_every: 0,
            default_nodes: 16,
            default_feature_dim: 3,
            max_resident_sessions: 0,
            max_buffered_edges: 0,
            shed_early_at: 0.9,
            spill_dir: None,
            journal_dir: None,
            snapshot_every: 0,
            watchdog_ms: 0,
            slo: None,
            telemetry: None,
            vfs: None,
        }
    }
}

/// Cumulative serving counters (deterministic — no wall-clock content).
///
/// Accounting invariants, preserved across spill/restore and recovery:
/// `opened == closed + resident + spilled + poisoned` and every dropped or
/// shed event is counted in exactly one `dropped_*`/`shed_*` counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Ingest batches processed.
    pub batches: usize,
    /// Events offered across all batches.
    pub events: usize,
    /// Sessions opened.
    pub opened: usize,
    /// Early-warning scores emitted.
    pub early_scores: usize,
    /// Final scores emitted.
    pub final_scores: usize,
    /// Sessions closed (watermark or forced).
    pub closed: usize,
    /// Events dropped because their session was already closed.
    pub dropped_closed: usize,
    /// Events dropped because their session was poisoned by the watchdog.
    pub dropped_poisoned: usize,
    /// Events dropped because their session was refused at open.
    pub dropped_refused: usize,
    /// Sessions refused at open (feature-dim mismatch or a model without
    /// an incremental form).
    pub refused: usize,
    /// Idle sessions evicted to disk under memory pressure.
    pub evicted: usize,
    /// Spilled sessions transparently restored on their next edge.
    pub restored: usize,
    /// New sessions refused admission by the shedding ladder.
    pub shed_refused_sessions: usize,
    /// Events shed with those refusals (attributed in the fault ledger).
    pub shed_refused_events: usize,
    /// Batches processed with Early scoring suspended.
    pub early_suspensions: usize,
    /// Early-warning scores skipped while suspended.
    pub early_skipped: usize,
    /// Sessions quarantined by the shard watchdog.
    pub poisoned: usize,
}

/// Why a session id is tombstoned (further traffic counted per cause).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tomb {
    Closed,
    Poisoned,
    Refused,
}

/// One resident session: its streaming builder, incremental model state,
/// and close bookkeeping.
pub(crate) struct SessionEntry {
    pub(crate) builder: CtdnBuilder,
    pub(crate) state: SessionState,
    /// Max raw event time offered to this session (watermark comparisons).
    pub(crate) last_seen: f64,
    /// Released-edge count at which the next early warning fires.
    pub(crate) next_warn: usize,
    /// Last batch index in which this session received events (LRU key).
    pub(crate) last_active_batch: usize,
}

impl SessionEntry {
    /// Buffered-edge cost of this session against
    /// [`ServeConfig::max_buffered_edges`].
    fn cost_edges(&self) -> usize {
        self.state.num_edges() + self.builder.buffer_depth()
    }
}

/// Per-batch counter deltas a shard hands back to the coordinator (the
/// coordinator owns the cumulative [`ServeStats`], so snapshots capture
/// exact counts).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardDelta {
    opened: usize,
    refused: usize,
    dropped_closed: usize,
    dropped_poisoned: usize,
    dropped_refused: usize,
    early_skipped: usize,
    restored: usize,
    poisoned: usize,
}

/// One shard of the session store plus its per-batch scratch queues.
pub(crate) struct Shard {
    pub(crate) sessions: BTreeMap<u64, SessionEntry>,
    /// Features declared ahead of first arrival via `register`.
    pub(crate) registered: BTreeMap<u64, NodeFeatures>,
    /// Tombstoned session ids: further traffic is counted and dropped.
    pub(crate) tombstones: BTreeMap<u64, Tomb>,
    /// Evicted sessions: id → batch whose spill file holds the state.
    pub(crate) spilled: BTreeMap<u64, usize>,
    /// This batch's events, in arrival order (filled before fan-out).
    pending: Vec<(u64, StreamEvent)>,
    /// Spilled sessions with traffic this batch: restore before processing.
    restore_list: Vec<u64>,
    /// Faults staged this batch (admission first, then processing order).
    faults: Vec<SessionFault>,
    /// Watchdog verdicts performed this batch (session, elapsed µs).
    poisons: Vec<(u64, u64)>,
    /// Counter deltas for this batch.
    delta: ShardDelta,
}

impl Shard {
    fn new() -> Self {
        Self {
            sessions: BTreeMap::new(),
            registered: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            spilled: BTreeMap::new(),
            pending: Vec::new(),
            restore_list: Vec::new(),
            faults: Vec::new(),
            poisons: Vec::new(),
            delta: ShardDelta::default(),
        }
    }

    fn fault(&mut self, session: u64, batch_idx: usize, kind: FaultKind, detail: String) {
        self.faults.push(SessionFault { session, trace: trace_id(session, batch_idx), kind, detail });
    }

    /// Restore, process this batch's pending events, apply watchdog
    /// verdicts, then close every session the watermark has passed. Runs
    /// on a pool worker with a worker-local tape; output order is a pure
    /// function of the input order (the watchdog's wall-clock verdicts are
    /// journaled and replayed, never re-measured), so the flattened result
    /// is identical at any pool width.
    #[allow(clippy::too_many_arguments)]
    fn process<M: IncrementalScorer>(
        &mut self,
        tape: &mut Tape,
        model: &M,
        cfg: &ServeConfig,
        vfs: &dyn Vfs,
        watermark: f64,
        batch_idx: usize,
        early_enabled: bool,
        poison_plan: Option<&[(u64, u64)]>,
    ) -> Vec<ScoreRecord> {
        let mut out = Vec::new();

        // Restore-on-next-edge: spilled sessions with traffic this batch
        // come back from disk before their events are applied. A failed
        // restore quarantines the session (fail closed) and counts every
        // dropped event — never a panic, never a silent drop.
        for sid in std::mem::take(&mut self.restore_list) {
            let Some(spill_batch) = self.spilled.remove(&sid) else {
                self.fault(
                    sid,
                    batch_idx,
                    FaultKind::Invariant,
                    format!("batch {batch_idx}: restore requested but session not spilled"),
                );
                self.tombstones.insert(sid, Tomb::Refused);
                continue;
            };
            let Some(dir) = cfg.spill_dir.as_deref() else {
                // A spilled session without a spill dir means the server
                // was rebuilt with a narrower config — fail the session
                // closed instead of panicking a worker.
                self.fault(
                    sid,
                    batch_idx,
                    FaultKind::Invariant,
                    format!("batch {batch_idx}: session spilled but no spill_dir configured"),
                );
                self.tombstones.insert(sid, Tomb::Refused);
                continue;
            };
            match spill::read(vfs, dir, sid, spill_batch, &cfg.stream) {
                Ok(entry) => {
                    self.sessions.insert(sid, entry);
                    self.delta.restored += 1;
                    cells().shed_restored.inc();
                    if trace::enabled() {
                        trace::event(
                            "serve.restore",
                            &[
                                (
                                    "trace",
                                    tpgnn_obs::Json::Str(trace_hex(trace_id(sid, batch_idx))),
                                ),
                                ("session", tpgnn_obs::Json::from(sid)),
                                ("spill_batch", tpgnn_obs::Json::from(spill_batch as u64)),
                            ],
                        );
                    }
                }
                Err(e) => {
                    self.fault(
                        sid,
                        batch_idx,
                        FaultKind::Io,
                        format!("batch {batch_idx}: restore from spill batch {spill_batch} failed: {e}"),
                    );
                    self.tombstones.insert(sid, Tomb::Refused);
                }
            }
        }

        let measure = cfg.watchdog_ms > 0 && poison_plan.is_none();
        let mut session_us: BTreeMap<u64, u64> = BTreeMap::new();
        let pending = std::mem::take(&mut self.pending);
        for (sid, ev) in pending {
            match self.tombstones.get(&sid) {
                Some(Tomb::Closed) => {
                    self.delta.dropped_closed += 1;
                    continue;
                }
                Some(Tomb::Poisoned) => {
                    self.delta.dropped_poisoned += 1;
                    continue;
                }
                Some(Tomb::Refused) => {
                    self.delta.dropped_refused += 1;
                    continue;
                }
                None => {}
            }
            if !self.sessions.contains_key(&sid) && !self.open(tape, model, cfg, sid, batch_idx) {
                self.delta.dropped_refused += 1;
                continue;
            }
            // Invariant-checked lookup: an open session must be resident.
            // A miss here is a serving defect — quarantine the session and
            // keep the batch going instead of panicking on a worker.
            let Some(entry) = self.sessions.get_mut(&sid) else {
                self.fault(
                    sid,
                    batch_idx,
                    FaultKind::Invariant,
                    format!("batch {batch_idx}: session opened but not resident"),
                );
                self.tombstones.insert(sid, Tomb::Refused);
                self.delta.dropped_refused += 1;
                continue;
            };
            let t0 = measure.then(Instant::now);
            entry.last_active_batch = batch_idx;
            if ev.time.is_finite() {
                entry.last_seen = entry.last_seen.max(ev.time);
            }
            entry.builder.push(ev);
            Self::advance(tape, model, entry);
            if cfg.early_warning_every > 0 {
                while entry.state.num_edges() >= entry.next_warn {
                    if early_enabled {
                        tape.reset();
                        let proba = model.score_session(tape, &entry.state);
                        cells().early.inc();
                        out.push(ScoreRecord {
                            session: sid,
                            kind: ScoreKind::Early,
                            proba,
                            edges: entry.state.num_edges(),
                            trace: trace_id(sid, batch_idx),
                            stats: None,
                            quarantine: None,
                        });
                    } else {
                        // Rung 1 of the shedding ladder: the warning slot
                        // passes unscored (but counted), so resume after
                        // pressure drops does not flood stale warnings.
                        self.delta.early_skipped += 1;
                    }
                    entry.next_warn += cfg.early_warning_every;
                }
            }
            if let Some(t0) = t0 {
                *session_us.entry(sid).or_insert(0) += t0.elapsed().as_micros() as u64;
            }
        }

        // Watchdog: live mode measures, replay applies the journaled
        // verdicts verbatim (wall-clock must not influence a replay).
        let verdicts: Vec<(u64, u64)> = match poison_plan {
            Some(plan) => plan.to_vec(),
            None => session_us
                .into_iter()
                .filter(|(_, us)| *us > cfg.watchdog_ms.saturating_mul(1000))
                .collect(),
        };
        for (sid, elapsed_us) in verdicts {
            if self.sessions.remove(&sid).is_none() {
                self.fault(
                    sid,
                    batch_idx,
                    FaultKind::Invariant,
                    format!("batch {batch_idx}: watchdog verdict for non-resident session"),
                );
                continue;
            }
            self.tombstones.insert(sid, Tomb::Poisoned);
            self.delta.poisoned += 1;
            self.poisons.push((sid, elapsed_us));
            cells().poisoned.inc();
            self.fault(
                sid,
                batch_idx,
                FaultKind::Poisoned,
                format!(
                    "batch {batch_idx}: watchdog: {elapsed_us}us over {}ms deadline",
                    cfg.watchdog_ms
                ),
            );
        }

        // Watermark close pass: ascending session id, deterministically.
        let due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, e)| e.last_seen < watermark)
            .map(|(id, _)| *id)
            .collect();
        for sid in due {
            // Invariant-checked removal (the id was listed just above).
            let Some(entry) = self.sessions.remove(&sid) else {
                self.fault(
                    sid,
                    batch_idx,
                    FaultKind::Invariant,
                    format!("batch {batch_idx}: close-due session vanished mid-pass"),
                );
                continue;
            };
            self.tombstones.insert(sid, Tomb::Closed);
            out.push(Self::close(tape, model, sid, batch_idx, entry));
        }
        out
    }

    /// Open a session: streaming builder plus incremental model state over
    /// its registered (or default zero) features. Returns `false` on
    /// refusal (recorded, never panics).
    fn open<M: IncrementalScorer>(
        &mut self,
        tape: &mut Tape,
        model: &M,
        cfg: &ServeConfig,
        sid: u64,
        batch_idx: usize,
    ) -> bool {
        let features = self
            .registered
            .remove(&sid)
            .unwrap_or_else(|| NodeFeatures::zeros(cfg.default_nodes, cfg.default_feature_dim));
        tape.reset();
        match model.open_session(tape, &features) {
            Ok(state) => {
                let mut stream = cfg.stream.clone();
                stream.track_releases = true;
                self.sessions.insert(
                    sid,
                    SessionEntry {
                        builder: CtdnBuilder::new(features, stream),
                        state,
                        last_seen: f64::NEG_INFINITY,
                        next_warn: cfg.early_warning_every.max(1),
                        last_active_batch: batch_idx,
                    },
                );
                self.delta.opened += 1;
                true
            }
            Err(e) => {
                self.fault(sid, batch_idx, FaultKind::Refused, e);
                self.tombstones.insert(sid, Tomb::Refused);
                self.delta.refused += 1;
                false
            }
        }
    }

    /// Advance the model state through everything the builder released.
    fn advance<M: IncrementalScorer>(tape: &mut Tape, model: &M, entry: &mut SessionEntry) {
        for r in entry.builder.drain_released() {
            tape.reset();
            model.advance_session(tape, &mut entry.state, TemporalEdge::new(r.src, r.dst, r.time));
            cells().advanced.inc();
        }
    }

    /// Close one session: flush the reorder tail, advance through it,
    /// take the final score, and fold in the ingestion outcome.
    fn close<M: IncrementalScorer>(
        tape: &mut Tape,
        model: &M,
        sid: u64,
        batch_idx: usize,
        mut entry: SessionEntry,
    ) -> ScoreRecord {
        entry.builder.flush_buffer();
        Self::advance(tape, model, &mut entry);
        tape.reset();
        let proba = model.score_session(tape, &entry.state);
        let outcome = entry.builder.finish();
        cells().closed.inc();
        ScoreRecord {
            session: sid,
            kind: ScoreKind::Final,
            proba,
            edges: entry.state.num_edges(),
            trace: trace_id(sid, batch_idx),
            stats: Some(outcome.stats),
            quarantine: Some(outcome.quarantine),
        }
    }
}

/// The resident serving loop: a sharded store of live sessions over a
/// shared incremental model.
///
/// The model is borrowed, not owned: serving is read-only on the weights,
/// so the same model instance can train offline and serve from a snapshot
/// elsewhere. All request processing fans out over the `tpgnn-par` pool;
/// every returned record sequence is bitwise-identical at any pool width.
pub struct SessionServer<'m, M: IncrementalScorer + Sync> {
    model: &'m M,
    cfg: ServeConfig,
    pub(crate) shards: Vec<Shard>,
    /// Max finite event time seen across all sessions (watermark anchor).
    pub(crate) global_max: f64,
    pub(crate) stats: ServeStats,
    /// The fault ledger, drained via [`take_faults`](Self::take_faults).
    faults: Vec<SessionFault>,
    journal: Option<journal::Journal>,
    /// The storage stack resolved at construction (explicit config handle
    /// or the process-global default).
    pub(crate) vfs: Arc<dyn Vfs>,
    /// Server-owned telemetry ticker; held only for its Drop (final tick +
    /// join when the server is dropped).
    _telemetry: Option<tpgnn_obs::snapshot::Ticker>,
}

impl<'m, M: IncrementalScorer + Sync> SessionServer<'m, M> {
    /// Build a server over `model`.
    ///
    /// Fails fast with [`ServeError::BadConfig`] (instead of refusing
    /// every session later) when the model has no incremental form for the
    /// configured default feature dimension — e.g. the `rand` ablation —
    /// and with [`ServeError::Io`] when the journal directory cannot be
    /// opened.
    pub fn new(model: &'m M, cfg: ServeConfig) -> Result<Self, ServeError> {
        let mut probe_tape = Tape::new();
        let probe = NodeFeatures::zeros(1, cfg.default_feature_dim);
        model.open_session(&mut probe_tape, &probe).map_err(|e| ServeError::BadConfig {
            detail: format!("model cannot serve incrementally: {e}"),
        })?;
        if !(0.0..=1.0).contains(&cfg.shed_early_at) {
            return Err(ServeError::BadConfig {
                detail: format!("shed_early_at {} outside [0, 1]", cfg.shed_early_at),
            });
        }
        let num_shards = cfg.num_shards.max(1);
        let server_vfs = cfg.vfs.clone().unwrap_or_else(vfs::global);
        let journal = match &cfg.journal_dir {
            Some(dir) => Some(journal::Journal::open(&*server_vfs, dir, num_shards)?),
            None => None,
        };
        let telemetry = cfg.telemetry.as_ref().map(|t| {
            let writer = tpgnn_obs::snapshot::SnapshotWriter::with_vfs(
                &t.run,
                &t.dir,
                Arc::clone(&server_vfs),
            );
            let mut slo = cfg.slo.clone().map(slo::SloTracker::new);
            tpgnn_obs::snapshot::Ticker::spawn(
                writer,
                std::time::Duration::from_millis(t.tick_ms.max(1)),
                move |w| {
                    if let Some(s) = slo.as_mut() {
                        s.observe(w);
                    }
                },
            )
        });
        let shards = (0..num_shards).map(|_| Shard::new()).collect();
        Ok(Self {
            model,
            cfg,
            shards,
            global_max: f64::NEG_INFINITY,
            stats: ServeStats::default(),
            faults: Vec::new(),
            journal,
            vfs: server_vfs,
            _telemetry: telemetry,
        })
    }

    /// Declare a session's node features ahead of its first event.
    /// Unregistered sessions open over
    /// [`ServeConfig::default_nodes`] × [`ServeConfig::default_feature_dim`]
    /// zero features. Journaled (when a journal is configured) with the
    /// upcoming batch, so recovery replays registrations in place; after a
    /// crash, registrations for *uncommitted* batches are lost with those
    /// batches and must be re-issued alongside the re-fed traffic.
    pub fn register(&mut self, session: u64, features: NodeFeatures) {
        let shard = (session % self.shards.len() as u64) as usize;
        if let Some(j) = self.journal.as_mut() {
            j.stage_register(shard, self.stats.batches + 1, session, &features);
        }
        self.shards[shard].registered.insert(session, features);
    }

    /// Offer one batch of events; returns every score emitted (early
    /// warnings in event order per shard, then watermark closes in
    /// session-id order, shards concatenated in index order).
    ///
    /// Never panics and never silently drops an edge: overload refusals,
    /// watchdog quarantines, and restore failures all land in the fault
    /// ledger with their dropped-event counts. An `Err` (journal/spill
    /// I/O) means the batch was **not** committed — re-feed it.
    pub fn ingest(&mut self, batch: &[SessionEvent]) -> Result<Vec<ScoreRecord>, ServeError> {
        self.run_batch(batch, journal::BatchKind::Ingest, None)
    }

    /// Force-close every resident session (end of stream): restore spilled
    /// sessions, flush, final score, evict. Records are in session-id
    /// order within each shard.
    pub fn close_all(&mut self) -> Result<Vec<ScoreRecord>, ServeError> {
        self.run_batch(&[], journal::BatchKind::CloseAll, None)
    }

    pub(crate) fn run_batch(
        &mut self,
        batch: &[SessionEvent],
        kind: journal::BatchKind,
        poison_plan: Option<&BTreeMap<usize, Vec<(u64, u64)>>>,
    ) -> Result<Vec<ScoreRecord>, ServeError> {
        let t0 = Instant::now();
        let mut span = trace::span("serve.request");
        let batch_idx = self.stats.batches + 1;
        span.set("batch", batch_idx as f64);
        let n = self.shards.len() as u64;
        let closing = matches!(kind, journal::BatchKind::CloseAll);

        for (arrival, se) in batch.iter().enumerate() {
            let t = se.event.time;
            if t.is_finite() {
                self.global_max = self.global_max.max(t);
            }
            let shard = (se.session % n) as usize;
            if let Some(j) = self.journal.as_mut() {
                j.stage_event(shard, batch_idx, arrival, se);
            }
            self.shards[shard].pending.push((se.session, se.event));
        }

        // close_all must also drain spilled sessions: every one of them is
        // still open and owed a Final score.
        if closing {
            for shard in &mut self.shards {
                shard.restore_list = shard.spilled.keys().copied().collect();
            }
        }

        let plan = self.plan_shedding(batch, batch_idx);
        if let Err(e) = self.apply_shedding(&plan, batch_idx) {
            // The batch dies before commit: discard its staged journal
            // frames so they cannot ride into a later batch's commit block
            // (recovery would see a commit-log gap). In-memory state may
            // already be partially mutated — the contract on `ingest` is
            // that after an `Err` the caller recovers from the journal.
            if let Some(j) = self.journal.as_mut() {
                j.abort_batch();
            }
            return Err(e);
        }

        let watermark =
            if closing { f64::INFINITY } else { self.global_max - self.cfg.session_gap };
        let model = self.model;
        let cfg = &self.cfg;
        let early_enabled = !plan.suspend_early;
        let shard_vfs = Arc::clone(&self.vfs);
        let per_shard = tpgnn_par::map_mut(&mut self.shards, Tape::new, |tape, i, shard| {
            let poisons = poison_plan.and_then(|p| p.get(&i)).map(Vec::as_slice);
            shard.process(
                tape,
                model,
                cfg,
                &*shard_vfs,
                watermark,
                batch_idx,
                early_enabled,
                poisons,
            )
        });
        let records: Vec<ScoreRecord> = per_shard.into_iter().flatten().collect();

        // Fold shard deltas and ledgers back into coordinator state.
        self.stats.batches += 1;
        self.stats.events += batch.len();
        if plan.suspend_early {
            self.stats.early_suspensions += 1;
            cells().shed_early_suspended.inc();
        }
        for r in &records {
            match r.kind {
                ScoreKind::Early => self.stats.early_scores += 1,
                ScoreKind::Final => {
                    self.stats.final_scores += 1;
                    self.stats.closed += 1;
                }
            }
        }
        for shard in &mut self.shards {
            let d = std::mem::take(&mut shard.delta);
            self.stats.opened += d.opened;
            self.stats.refused += d.refused;
            self.stats.dropped_closed += d.dropped_closed;
            self.stats.dropped_poisoned += d.dropped_poisoned;
            self.stats.dropped_refused += d.dropped_refused;
            self.stats.early_skipped += d.early_skipped;
            self.stats.restored += d.restored;
            self.stats.poisoned += d.poisoned;
        }
        let mut batch_faults = Vec::new();
        for shard in &mut self.shards {
            batch_faults.append(&mut shard.faults);
        }

        // Trace correlation: one event per score and per fault, each
        // carrying its deterministic trace id, so `obs_report` can join the
        // trace stream against journal frames and spill files offline.
        if trace::enabled() {
            use tpgnn_obs::Json;
            for r in &records {
                let kind = match r.kind {
                    ScoreKind::Early => "early",
                    ScoreKind::Final => "final",
                };
                trace::event(
                    "serve.score",
                    &[
                        ("trace", Json::Str(trace_hex(r.trace))),
                        ("session", Json::from(r.session)),
                        ("kind", Json::Str(kind.to_string())),
                        ("edges", Json::from(r.edges as u64)),
                    ],
                );
                if let Some(q) = &r.quarantine {
                    if !q.is_empty() {
                        trace::event(
                            "serve.quarantine",
                            &[
                                ("trace", Json::Str(trace_hex(r.trace))),
                                ("session", Json::from(r.session)),
                                ("entries", Json::from(q.len() as u64)),
                            ],
                        );
                    }
                }
            }
            for f in &batch_faults {
                trace::warn(
                    "serve.fault",
                    &[
                        ("trace", Json::Str(trace_hex(f.trace))),
                        ("session", Json::from(f.session)),
                        ("kind", Json::Str(f.kind.label().to_string())),
                        ("detail", Json::Str(f.detail.clone())),
                    ],
                );
            }
        }

        // Durability point: journal everything this batch produced, then
        // commit. Results reach the caller only after the commit frame is
        // on disk, so a delivered batch is always recoverable.
        if self.journal.is_some() {
            let mut shard_records: Vec<Vec<&ScoreRecord>> = vec![Vec::new(); self.shards.len()];
            for r in &records {
                shard_records[(r.session % n) as usize].push(r);
            }
            let mut shard_faults: Vec<Vec<&SessionFault>> = vec![Vec::new(); self.shards.len()];
            for f in &batch_faults {
                shard_faults[(f.session % n) as usize].push(f);
            }
            let poisons: Vec<(usize, u64, u64)> = self
                .shards
                .iter_mut()
                .enumerate()
                .flat_map(|(i, s)| {
                    std::mem::take(&mut s.poisons).into_iter().map(move |(sid, us)| (i, sid, us))
                })
                .collect();
            if let Some(j) = self.journal.as_mut() {
                for (i, rs) in shard_records.iter().enumerate() {
                    for r in rs {
                        j.stage_score(i, batch_idx, r);
                    }
                }
                for (i, fs) in shard_faults.iter().enumerate() {
                    for f in fs {
                        j.stage_fault(i, batch_idx, f);
                    }
                }
                for (i, sid, us) in poisons {
                    j.stage_watchdog(i, batch_idx, sid, us);
                }
                j.commit(batch_idx, kind, batch.len())?;
            }
            if self.cfg.snapshot_every > 0 && batch_idx.is_multiple_of(self.cfg.snapshot_every) {
                // The journal is truth; a snapshot only accelerates
                // recovery. Failing the batch here — after its commit frame
                // is durable — would make the driver re-feed a committed
                // batch (double delivery), so a failed snapshot degrades to
                // a counter + trace warning and recovery falls back to an
                // older snapshot or full replay.
                if let Err(e) = self.write_snapshot(batch_idx) {
                    cells().snapshot_failed.inc();
                    trace::warn(
                        "serve.snapshot_failed",
                        &[
                            ("batch", tpgnn_obs::Json::from(batch_idx as u64)),
                            ("error", tpgnn_obs::Json::Str(e.to_string())),
                        ],
                    );
                }
            }
        } else {
            for shard in &mut self.shards {
                shard.poisons.clear();
            }
        }
        self.faults.append(&mut batch_faults);

        let c = cells();
        c.requests.inc();
        c.events.add(batch.len() as u64);
        c.resident.set(self.resident() as f64);
        c.shed_pressure.set(plan.pressure);
        c.request_us.record(t0.elapsed().as_secs_f64() * 1e6);
        span.set("events", batch.len() as f64);
        span.set("records", records.len() as f64);
        span.set("resident", self.resident() as f64);
        Ok(records)
    }

    /// Classify this batch's load and run the shedding planner. Pure
    /// function of configuration and committed traffic.
    fn plan_shedding(&self, batch: &[SessionEvent], _batch_idx: usize) -> admission::ShedPlan {
        let budget = admission::Budget {
            max_resident: self.cfg.max_resident_sessions,
            max_buffered_edges: self.cfg.max_buffered_edges,
            shed_early_at: self.cfg.shed_early_at,
            can_spill: self.cfg.spill_dir.is_some(),
        };
        if !budget.bounded() {
            return admission::ShedPlan::default();
        }
        let n = self.shards.len() as u64;
        let mut new_events: BTreeMap<u64, usize> = BTreeMap::new();
        let mut new_order: Vec<u64> = Vec::new();
        let mut active: BTreeSet<u64> = BTreeSet::new();
        let mut restores = 0usize;
        for se in batch {
            let sid = se.session;
            if !active.insert(sid) {
                if let Some(c) = new_events.get_mut(&sid) {
                    *c += 1;
                }
                continue;
            }
            let shard = &self.shards[(sid % n) as usize];
            if shard.sessions.contains_key(&sid) || shard.tombstones.contains_key(&sid) {
                continue;
            }
            if shard.spilled.contains_key(&sid) {
                restores += 1;
            } else {
                new_events.insert(sid, 1);
                new_order.push(sid);
            }
        }
        let mut view = admission::LoadView {
            resident: self.resident(),
            buffered_edges: self.buffered_edges(),
            batch_events: batch.len(),
            restores,
            new_sessions: new_order.iter().map(|sid| (*sid, new_events[sid])).collect(),
            idle: Vec::new(),
        };
        for (i, shard) in self.shards.iter().enumerate() {
            for (sid, entry) in &shard.sessions {
                if !active.contains(sid) {
                    view.idle.push(admission::IdleSession {
                        session: *sid,
                        shard: i,
                        last_active_batch: entry.last_active_batch,
                        cost_edges: entry.cost_edges(),
                    });
                }
            }
        }
        admission::plan(&budget, &view)
    }

    /// Execute the plan: spill evictees, strip refused sessions' events
    /// from the pending queues (attributed, counted), set restore lists.
    fn apply_shedding(
        &mut self,
        plan: &admission::ShedPlan,
        batch_idx: usize,
    ) -> Result<(), ServeError> {
        let spill_dir = self.cfg.spill_dir.clone();
        let spill_vfs = Arc::clone(&self.vfs);
        for &(shard_idx, sid) in &plan.evict {
            let Some(dir) = spill_dir.as_deref() else {
                break; // the planner never evicts without a spill dir
            };
            let shard = &mut self.shards[shard_idx];
            let Some(entry) = shard.sessions.get(&sid) else {
                continue; // planned against a stale view; nothing to spill
            };
            spill::write(&*spill_vfs, dir, sid, batch_idx, entry)?;
            shard.sessions.remove(&sid);
            shard.spilled.insert(sid, batch_idx);
            self.stats.evicted += 1;
            cells().shed_evicted.inc();
            if trace::enabled() {
                trace::event(
                    "serve.evict",
                    &[
                        ("trace", tpgnn_obs::Json::Str(trace_hex(trace_id(sid, batch_idx)))),
                        ("session", tpgnn_obs::Json::from(sid)),
                    ],
                );
            }
        }
        let n = self.shards.len() as u64;
        for &sid in &plan.refuse {
            let shard = &mut self.shards[(sid % n) as usize];
            let before = shard.pending.len();
            shard.pending.retain(|(s, _)| *s != sid);
            let shed = before - shard.pending.len();
            self.stats.shed_refused_sessions += 1;
            self.stats.shed_refused_events += shed;
            cells().shed_refused_sessions.inc();
            cells().shed_refused_events.add(shed as u64);
            shard.fault(
                sid,
                batch_idx,
                FaultKind::Overloaded,
                format!("batch {batch_idx}: admission refused, {shed} event(s) shed"),
            );
        }
        // Restore lists: spilled sessions with surviving pending traffic.
        for shard in &mut self.shards {
            if shard.spilled.is_empty() {
                continue;
            }
            let mut listed: BTreeSet<u64> = shard.restore_list.iter().copied().collect();
            for (sid, _) in &shard.pending {
                if shard.spilled.contains_key(sid) && listed.insert(*sid) {
                    shard.restore_list.push(*sid);
                }
            }
        }
        Ok(())
    }

    /// Number of sessions currently resident (open state in some shard).
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Number of sessions currently spilled to disk (still open).
    pub fn spilled(&self) -> usize {
        self.shards.iter().map(|s| s.spilled.len()).sum()
    }

    /// Total buffered edges across resident sessions (the load measure
    /// behind [`ServeConfig::max_buffered_edges`]).
    pub fn buffered_edges(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.sessions.values())
            .map(SessionEntry::cost_edges)
            .sum()
    }

    /// Cumulative deterministic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Drain the fault ledger: every refusal, shed, quarantine, and
    /// invariant breach since the last drain, in deterministic order (per
    /// shard: admission faults then processing faults; shards concatenated
    /// in index order, batches in commit order).
    pub fn take_faults(&mut self) -> Vec<SessionFault> {
        std::mem::take(&mut self.faults)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub(crate) fn detach_journal(&mut self) -> Option<journal::Journal> {
        self.journal.take()
    }

    pub(crate) fn attach_journal(&mut self, j: journal::Journal) {
        self.journal = Some(j);
    }
}

struct Cells {
    requests: &'static Counter,
    events: &'static Counter,
    advanced: &'static Counter,
    early: &'static Counter,
    closed: &'static Counter,
    poisoned: &'static Counter,
    shed_early_suspended: &'static Counter,
    shed_evicted: &'static Counter,
    shed_restored: &'static Counter,
    shed_refused_sessions: &'static Counter,
    shed_refused_events: &'static Counter,
    resident: &'static Gauge,
    shed_pressure: &'static Gauge,
    request_us: &'static Histogram,
    snapshot_failed: &'static Counter,
}

fn cells() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Cells {
        requests: metrics::counter("serve.requests"),
        events: metrics::counter("serve.events"),
        advanced: metrics::counter("serve.advanced"),
        early: metrics::counter("serve.scores_early"),
        closed: metrics::counter("serve.closed"),
        poisoned: metrics::counter("serve.watchdog.poisoned"),
        shed_early_suspended: metrics::counter("serve.shed.early_suspended"),
        shed_evicted: metrics::counter("serve.shed.evicted"),
        shed_restored: metrics::counter("serve.shed.restored"),
        shed_refused_sessions: metrics::counter("serve.shed.refused_sessions"),
        shed_refused_events: metrics::counter("serve.shed.refused_events"),
        resident: metrics::gauge("serve.sessions_resident"),
        shed_pressure: metrics::gauge("serve.shed.pressure"),
        request_us: metrics::histogram(
            "serve.request_us",
            &metrics::exponential_buckets(10.0, 2.0, 16),
        ),
        snapshot_failed: metrics::counter("serve.snapshot.failed"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpgnn_core::{GraphClassifier, TpGnn, TpGnnConfig};

    fn feats(n: usize) -> NodeFeatures {
        let mut f = NodeFeatures::zeros(n, 3);
        for v in 0..n {
            f.row_mut(v).copy_from_slice(&[v as f32 * 0.1, 0.5, 1.0 - v as f32 * 0.05]);
        }
        f
    }

    fn ev(session: u64, src: usize, dst: usize, t: f64) -> SessionEvent {
        SessionEvent::new(session, StreamEvent::new(src, dst, t))
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpgnn-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sessions_close_at_watermark_and_score_matches_batch() {
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(4));
        let cfg = ServeConfig { session_gap: 5.0, ..ServeConfig::default() };
        let mut server = SessionServer::new(&model, cfg).unwrap();
        server.register(1, feats(4));
        server.register(2, feats(4));

        // Session 1 is active around t=1..3; session 2 keeps the clock
        // advancing until the watermark (t−5) passes session 1.
        let r = server
            .ingest(&[ev(1, 0, 1, 1.0), ev(1, 1, 2, 2.0), ev(2, 0, 1, 2.0), ev(1, 2, 3, 3.0)])
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(server.resident(), 2);
        let r = server.ingest(&[ev(2, 1, 2, 9.5)]).unwrap(); // watermark 4.5 > 3.0
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].session, r[0].kind), (1, ScoreKind::Final));
        assert_eq!(server.resident(), 1);

        // Bitwise: the final score equals batch predict_proba on the
        // session's released-edge graph.
        let mut model2 = TpGnn::new(TpGnnConfig::sum(3).with_seed(4));
        let mut g = tpgnn_graph::Ctdn::new(feats(4));
        for (s, d, t) in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)] {
            g.try_add_edge(s, d, t).unwrap();
        }
        assert_eq!(model2.predict_proba(&mut g).to_bits(), r[0].proba.to_bits());

        // Stragglers to the closed session are dropped, not mis-scored.
        server.ingest(&[ev(1, 0, 3, 9.6)]).unwrap();
        assert_eq!(server.stats().dropped_closed, 1);

        let rest = server.close_all().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].session, 2);
        assert_eq!(server.resident(), 0);
        assert_eq!(server.stats().final_scores, 2);
        assert_eq!(server.stats().opened, 2);
        assert_eq!(server.stats().closed, 2);
    }

    #[test]
    fn early_warnings_fire_every_n_released_edges() {
        let model = TpGnn::new(TpGnnConfig::gru(3).with_seed(7));
        let cfg = ServeConfig {
            // lateness 0 ⇒ an in-order feed releases every event on push.
            stream: StreamConfig { lateness: 0.0, ..StreamConfig::default() },
            early_warning_every: 2,
            ..ServeConfig::default()
        };
        let mut server = SessionServer::new(&model, cfg).unwrap();
        server.register(9, feats(4));
        let batch: Vec<SessionEvent> =
            (0..6).map(|i| ev(9, i % 4, (i + 1) % 4, (i + 1) as f64)).collect();
        let records = server.ingest(&batch).unwrap();
        let early: Vec<usize> = records
            .iter()
            .filter(|r| r.kind == ScoreKind::Early)
            .map(|r| r.edges)
            .collect();
        assert_eq!(early, vec![2, 4, 6]);
        let fin = server.close_all().unwrap();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].edges, 6);
    }

    #[test]
    fn unregistered_sessions_open_with_default_features() {
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(1));
        let mut server = SessionServer::new(&model, ServeConfig::default()).unwrap();
        let r = server.ingest(&[ev(42, 0, 1, 1.0)]).unwrap();
        assert!(r.is_empty());
        assert_eq!(server.resident(), 1);
        let fin = server.close_all().unwrap();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].stats.unwrap().released, 1);
    }

    #[test]
    fn mismatched_features_are_refused_not_panicked() {
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(1));
        let mut server = SessionServer::new(&model, ServeConfig::default()).unwrap();
        server.register(5, NodeFeatures::zeros(4, 7)); // model wants dim 3
        let r = server.ingest(&[ev(5, 0, 1, 1.0), ev(5, 1, 2, 2.0)]).unwrap();
        assert!(r.is_empty());
        assert_eq!(server.resident(), 0);
        assert_eq!(server.stats().refused, 1);
        assert_eq!(server.stats().dropped_refused, 2);
        let faults = server.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Refused);
        assert!(faults[0].detail.contains("feature dim 7"), "{faults:?}");
        assert!(server.take_faults().is_empty(), "drain consumes the ledger");
        assert!(server.close_all().unwrap().is_empty());
    }

    #[test]
    fn rand_ablation_model_is_rejected_at_construction() {
        use tpgnn_core::AblationVariant;
        let model = TpGnn::new(AblationVariant::Rand.apply(TpGnnConfig::sum(3)));
        let err = match SessionServer::new(&model, ServeConfig::default()) {
            Ok(_) => panic!("rand ablation must be refused"),
            Err(e) => e,
        };
        assert!(matches!(err, ServeError::BadConfig { .. }));
        assert!(err.to_string().contains("cannot serve incrementally"), "{err}");
    }

    #[test]
    fn overload_refuses_new_sessions_with_attribution() {
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(2));
        let cfg = ServeConfig {
            max_resident_sessions: 2,
            default_nodes: 4,
            ..ServeConfig::default()
        };
        let mut server = SessionServer::new(&model, cfg).unwrap();
        // Three new sessions against a budget of two, no spill dir: the
        // newest arrival is refused, its events shed and attributed.
        let r = server
            .ingest(&[ev(1, 0, 1, 1.0), ev(2, 0, 1, 1.5), ev(3, 0, 1, 2.0), ev(3, 1, 2, 2.5)])
            .unwrap();
        assert!(r.is_empty());
        assert_eq!(server.resident(), 2);
        assert_eq!(server.stats().shed_refused_sessions, 1);
        assert_eq!(server.stats().shed_refused_events, 2);
        let faults = server.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!((faults[0].session, faults[0].kind), (3, FaultKind::Overloaded));
        assert!(faults[0].detail.contains("2 event(s) shed"), "{faults:?}");
        // Refusal is not a tombstone: after load drops, the session may
        // open fresh.
        server.close_all().unwrap();
        let r = server.ingest(&[ev(3, 0, 1, 3.0)]).unwrap();
        assert!(r.is_empty());
        assert_eq!(server.resident(), 1);
    }

    #[test]
    fn eviction_spills_and_restores_bitwise() {
        let dir = tmpdir("evict");
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(6));
        let base = ServeConfig { default_nodes: 4, ..ServeConfig::default() };
        let bounded = ServeConfig {
            max_resident_sessions: 2,
            spill_dir: Some(dir.clone()),
            ..base.clone()
        };

        // Two servers fed identical traffic; only one sheds.
        let mut plain = SessionServer::new(&model, base).unwrap();
        let mut shedding = SessionServer::new(&model, bounded).unwrap();
        let batches: Vec<Vec<SessionEvent>> = vec![
            vec![ev(1, 0, 1, 1.0), ev(2, 0, 1, 1.5)],
            vec![ev(3, 1, 2, 2.0)], // session 1 or 2 must be evicted
            vec![ev(1, 1, 2, 2.5)], // session 1 restored on its next edge
            vec![ev(2, 2, 3, 3.0)],
        ];
        for b in &batches {
            assert!(plain.ingest(b).unwrap().is_empty());
            assert!(shedding.ingest(b).unwrap().is_empty());
        }
        assert!(shedding.stats().evicted >= 1, "budget must have forced eviction");
        assert_eq!(shedding.stats().restored + shedding.spilled(), shedding.stats().evicted);
        assert!(shedding.resident() <= 2);

        let a = plain.close_all().unwrap();
        let b = shedding.close_all().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.session, y.session);
            assert_eq!(x.proba.to_bits(), y.proba.to_bits(), "spill changed session {}", x.session);
        }
        assert!(shedding.take_faults().is_empty(), "eviction is not a fault");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_stats_accounting_holds_under_eviction() {
        let dir = tmpdir("accounting");
        let model = TpGnn::new(TpGnnConfig::sum(3).with_seed(8));
        let cfg = ServeConfig {
            max_resident_sessions: 2,
            spill_dir: Some(dir.clone()),
            default_nodes: 4,
            ..ServeConfig::default()
        };
        let mut server = SessionServer::new(&model, cfg).unwrap();
        for i in 0..5u64 {
            server.ingest(&[ev(i, 0, 1, 1.0 + i as f64)]).unwrap();
        }
        let s = *server.stats();
        assert_eq!(
            s.opened,
            s.closed + server.resident() + server.spilled() + s.poisoned,
            "{s:?}"
        );
        server.close_all().unwrap();
        let s = *server.stats();
        assert_eq!(s.opened, s.closed, "close_all must close spilled sessions too: {s:?}");
        assert_eq!(s.final_scores, 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
